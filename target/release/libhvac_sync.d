/root/repo/target/release/libhvac_sync.rlib: /root/repo/crates/hvac-sync/src/classes.rs /root/repo/crates/hvac-sync/src/lib.rs
