/root/repo/target/release/deps/hvac_pfs-19237c3ed5dd435b.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/release/deps/libhvac_pfs-19237c3ed5dd435b.rlib: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/release/deps/libhvac_pfs-19237c3ed5dd435b.rmeta: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
