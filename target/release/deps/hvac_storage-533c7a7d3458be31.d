/root/repo/target/release/deps/hvac_storage-533c7a7d3458be31.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/release/deps/libhvac_storage-533c7a7d3458be31.rlib: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/release/deps/libhvac_storage-533c7a7d3458be31.rmeta: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
