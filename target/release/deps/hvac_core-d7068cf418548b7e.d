/root/repo/target/release/deps/hvac_core-d7068cf418548b7e.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/release/deps/libhvac_core-d7068cf418548b7e.rlib: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/release/deps/libhvac_core-d7068cf418548b7e.rmeta: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
