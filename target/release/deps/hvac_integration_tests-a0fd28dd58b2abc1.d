/root/repo/target/release/deps/hvac_integration_tests-a0fd28dd58b2abc1.d: tests/src/lib.rs

/root/repo/target/release/deps/libhvac_integration_tests-a0fd28dd58b2abc1.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libhvac_integration_tests-a0fd28dd58b2abc1.rmeta: tests/src/lib.rs

tests/src/lib.rs:
