/root/repo/target/release/deps/micro-0abc13e8d5755c0c.d: crates/hvac-bench/benches/micro.rs

/root/repo/target/release/deps/micro-0abc13e8d5755c0c: crates/hvac-bench/benches/micro.rs

crates/hvac-bench/benches/micro.rs:
