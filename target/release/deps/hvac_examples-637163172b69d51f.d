/root/repo/target/release/deps/hvac_examples-637163172b69d51f.d: examples/src/lib.rs

/root/repo/target/release/deps/libhvac_examples-637163172b69d51f.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libhvac_examples-637163172b69d51f.rmeta: examples/src/lib.rs

examples/src/lib.rs:
