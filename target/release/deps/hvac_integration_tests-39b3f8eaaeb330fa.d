/root/repo/target/release/deps/hvac_integration_tests-39b3f8eaaeb330fa.d: tests/src/lib.rs

/root/repo/target/release/deps/libhvac_integration_tests-39b3f8eaaeb330fa.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libhvac_integration_tests-39b3f8eaaeb330fa.rmeta: tests/src/lib.rs

tests/src/lib.rs:
