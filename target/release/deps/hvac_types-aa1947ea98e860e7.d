/root/repo/target/release/deps/hvac_types-aa1947ea98e860e7.d: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

/root/repo/target/release/deps/libhvac_types-aa1947ea98e860e7.rlib: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

/root/repo/target/release/deps/libhvac_types-aa1947ea98e860e7.rmeta: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

crates/hvac-types/src/lib.rs:
crates/hvac-types/src/config.rs:
crates/hvac-types/src/error.rs:
crates/hvac-types/src/ids.rs:
crates/hvac-types/src/summit.rs:
crates/hvac-types/src/time.rs:
crates/hvac-types/src/units.rs:
