/root/repo/target/release/deps/hvac_storage-a7d1c23bf3f690b4.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/release/deps/libhvac_storage-a7d1c23bf3f690b4.rlib: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/release/deps/libhvac_storage-a7d1c23bf3f690b4.rmeta: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
