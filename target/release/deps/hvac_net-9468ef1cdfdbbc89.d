/root/repo/target/release/deps/hvac_net-9468ef1cdfdbbc89.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

/root/repo/target/release/deps/libhvac_net-9468ef1cdfdbbc89.rlib: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

/root/repo/target/release/deps/libhvac_net-9468ef1cdfdbbc89.rmeta: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/fault.rs:
crates/hvac-net/src/wire.rs:
