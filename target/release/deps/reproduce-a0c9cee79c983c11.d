/root/repo/target/release/deps/reproduce-a0c9cee79c983c11.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-a0c9cee79c983c11: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
