/root/repo/target/release/deps/hvac_bench-25f19c0e86423097.d: crates/hvac-bench/src/lib.rs crates/hvac-bench/src/figures/mod.rs crates/hvac-bench/src/figures/ablation.rs crates/hvac-bench/src/figures/fig10.rs crates/hvac-bench/src/figures/fig11.rs crates/hvac-bench/src/figures/fig12.rs crates/hvac-bench/src/figures/fig13.rs crates/hvac-bench/src/figures/fig14.rs crates/hvac-bench/src/figures/fig15.rs crates/hvac-bench/src/figures/fig3.rs crates/hvac-bench/src/figures/fig4.rs crates/hvac-bench/src/figures/fig8.rs crates/hvac-bench/src/figures/fig9.rs crates/hvac-bench/src/figures/table1.rs crates/hvac-bench/src/report.rs crates/hvac-bench/src/systems.rs

/root/repo/target/release/deps/libhvac_bench-25f19c0e86423097.rlib: crates/hvac-bench/src/lib.rs crates/hvac-bench/src/figures/mod.rs crates/hvac-bench/src/figures/ablation.rs crates/hvac-bench/src/figures/fig10.rs crates/hvac-bench/src/figures/fig11.rs crates/hvac-bench/src/figures/fig12.rs crates/hvac-bench/src/figures/fig13.rs crates/hvac-bench/src/figures/fig14.rs crates/hvac-bench/src/figures/fig15.rs crates/hvac-bench/src/figures/fig3.rs crates/hvac-bench/src/figures/fig4.rs crates/hvac-bench/src/figures/fig8.rs crates/hvac-bench/src/figures/fig9.rs crates/hvac-bench/src/figures/table1.rs crates/hvac-bench/src/report.rs crates/hvac-bench/src/systems.rs

/root/repo/target/release/deps/libhvac_bench-25f19c0e86423097.rmeta: crates/hvac-bench/src/lib.rs crates/hvac-bench/src/figures/mod.rs crates/hvac-bench/src/figures/ablation.rs crates/hvac-bench/src/figures/fig10.rs crates/hvac-bench/src/figures/fig11.rs crates/hvac-bench/src/figures/fig12.rs crates/hvac-bench/src/figures/fig13.rs crates/hvac-bench/src/figures/fig14.rs crates/hvac-bench/src/figures/fig15.rs crates/hvac-bench/src/figures/fig3.rs crates/hvac-bench/src/figures/fig4.rs crates/hvac-bench/src/figures/fig8.rs crates/hvac-bench/src/figures/fig9.rs crates/hvac-bench/src/figures/table1.rs crates/hvac-bench/src/report.rs crates/hvac-bench/src/systems.rs

crates/hvac-bench/src/lib.rs:
crates/hvac-bench/src/figures/mod.rs:
crates/hvac-bench/src/figures/ablation.rs:
crates/hvac-bench/src/figures/fig10.rs:
crates/hvac-bench/src/figures/fig11.rs:
crates/hvac-bench/src/figures/fig12.rs:
crates/hvac-bench/src/figures/fig13.rs:
crates/hvac-bench/src/figures/fig14.rs:
crates/hvac-bench/src/figures/fig15.rs:
crates/hvac-bench/src/figures/fig3.rs:
crates/hvac-bench/src/figures/fig4.rs:
crates/hvac-bench/src/figures/fig8.rs:
crates/hvac-bench/src/figures/fig9.rs:
crates/hvac-bench/src/figures/table1.rs:
crates/hvac-bench/src/report.rs:
crates/hvac-bench/src/systems.rs:
