/root/repo/target/release/deps/hvac_sync-351bbeea49931ad0.d: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs

/root/repo/target/release/deps/libhvac_sync-351bbeea49931ad0.rlib: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs

/root/repo/target/release/deps/libhvac_sync-351bbeea49931ad0.rmeta: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs

crates/hvac-sync/src/lib.rs:
crates/hvac-sync/src/classes.rs:
