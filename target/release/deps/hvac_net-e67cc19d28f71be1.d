/root/repo/target/release/deps/hvac_net-e67cc19d28f71be1.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

/root/repo/target/release/deps/libhvac_net-e67cc19d28f71be1.rlib: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

/root/repo/target/release/deps/libhvac_net-e67cc19d28f71be1.rmeta: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/wire.rs:
