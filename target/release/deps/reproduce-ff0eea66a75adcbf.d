/root/repo/target/release/deps/reproduce-ff0eea66a75adcbf.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-ff0eea66a75adcbf: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
