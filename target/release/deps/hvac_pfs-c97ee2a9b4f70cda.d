/root/repo/target/release/deps/hvac_pfs-c97ee2a9b4f70cda.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/release/deps/libhvac_pfs-c97ee2a9b4f70cda.rlib: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/release/deps/libhvac_pfs-c97ee2a9b4f70cda.rmeta: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
