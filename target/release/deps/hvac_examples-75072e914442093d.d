/root/repo/target/release/deps/hvac_examples-75072e914442093d.d: examples/src/lib.rs

/root/repo/target/release/deps/libhvac_examples-75072e914442093d.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libhvac_examples-75072e914442093d.rmeta: examples/src/lib.rs

examples/src/lib.rs:
