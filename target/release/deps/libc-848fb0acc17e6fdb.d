/root/repo/target/release/deps/libc-848fb0acc17e6fdb.d: vendor/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-848fb0acc17e6fdb.rlib: vendor/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-848fb0acc17e6fdb.rmeta: vendor/libc/src/lib.rs

vendor/libc/src/lib.rs:
