/root/repo/target/release/deps/hvac_sim-ffda2ac216a35380.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/release/deps/libhvac_sim-ffda2ac216a35380.rlib: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/release/deps/libhvac_sim-ffda2ac216a35380.rmeta: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
