/root/repo/target/release/deps/hvac_dl-f95d12a6d6d79e7c.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/release/deps/libhvac_dl-f95d12a6d6d79e7c.rlib: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/release/deps/libhvac_dl-f95d12a6d6d79e7c.rmeta: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
