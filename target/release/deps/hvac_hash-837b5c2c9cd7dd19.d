/root/repo/target/release/deps/hvac_hash-837b5c2c9cd7dd19.d: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

/root/repo/target/release/deps/libhvac_hash-837b5c2c9cd7dd19.rlib: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

/root/repo/target/release/deps/libhvac_hash-837b5c2c9cd7dd19.rmeta: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

crates/hvac-hash/src/lib.rs:
crates/hvac-hash/src/pathhash.rs:
crates/hvac-hash/src/placement.rs:
crates/hvac-hash/src/stats.rs:
crates/hvac-hash/src/topology.rs:
