/root/repo/target/release/deps/tidy-039dbdccd8bb2edc.d: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

/root/repo/target/release/deps/libtidy-039dbdccd8bb2edc.rlib: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

/root/repo/target/release/deps/libtidy-039dbdccd8bb2edc.rmeta: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

tools/tidy/src/lib.rs:
tools/tidy/src/ratchet.rs:
tools/tidy/src/scan.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tools/tidy
