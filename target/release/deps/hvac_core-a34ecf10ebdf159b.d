/root/repo/target/release/deps/hvac_core-a34ecf10ebdf159b.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/release/deps/libhvac_core-a34ecf10ebdf159b.rlib: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/release/deps/libhvac_core-a34ecf10ebdf159b.rmeta: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
