/root/repo/target/release/deps/hvac_sim-8d6ac3f587cef4ee.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/release/deps/libhvac_sim-8d6ac3f587cef4ee.rlib: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/release/deps/libhvac_sim-8d6ac3f587cef4ee.rmeta: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
