/root/repo/target/release/deps/hvac_dl-4fe2cb4922cf1186.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/release/deps/libhvac_dl-4fe2cb4922cf1186.rlib: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/release/deps/libhvac_dl-4fe2cb4922cf1186.rmeta: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
