/root/repo/target/release/deps/tidy-b298dec6ba6faa69.d: tools/tidy/src/main.rs

/root/repo/target/release/deps/tidy-b298dec6ba6faa69: tools/tidy/src/main.rs

tools/tidy/src/main.rs:
