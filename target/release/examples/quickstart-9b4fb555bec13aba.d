/root/repo/target/release/examples/quickstart-9b4fb555bec13aba.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9b4fb555bec13aba: examples/quickstart.rs

examples/quickstart.rs:
