/root/repo/target/debug/tidy: /root/repo/tools/tidy/src/lib.rs /root/repo/tools/tidy/src/main.rs /root/repo/tools/tidy/src/ratchet.rs /root/repo/tools/tidy/src/scan.rs
