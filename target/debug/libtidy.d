/root/repo/target/debug/libtidy.rlib: /root/repo/tools/tidy/src/lib.rs /root/repo/tools/tidy/src/ratchet.rs /root/repo/tools/tidy/src/scan.rs
