/root/repo/target/debug/examples/failover-73d95f834f499f0b.d: examples/failover.rs

/root/repo/target/debug/examples/failover-73d95f834f499f0b: examples/failover.rs

examples/failover.rs:
