/root/repo/target/debug/examples/imagenet_resnet50-9a0963be383c15e1.d: examples/imagenet_resnet50.rs

/root/repo/target/debug/examples/imagenet_resnet50-9a0963be383c15e1: examples/imagenet_resnet50.rs

examples/imagenet_resnet50.rs:
