/root/repo/target/debug/examples/extensions-8c605fd87122b52b.d: examples/extensions.rs

/root/repo/target/debug/examples/extensions-8c605fd87122b52b: examples/extensions.rs

examples/extensions.rs:
