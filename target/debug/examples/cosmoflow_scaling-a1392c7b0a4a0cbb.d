/root/repo/target/debug/examples/cosmoflow_scaling-a1392c7b0a4a0cbb.d: examples/cosmoflow_scaling.rs

/root/repo/target/debug/examples/cosmoflow_scaling-a1392c7b0a4a0cbb: examples/cosmoflow_scaling.rs

examples/cosmoflow_scaling.rs:
