/root/repo/target/debug/examples/failover-23c58f2c05ab31cf.d: examples/failover.rs

/root/repo/target/debug/examples/failover-23c58f2c05ab31cf: examples/failover.rs

examples/failover.rs:
