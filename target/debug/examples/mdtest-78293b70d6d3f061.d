/root/repo/target/debug/examples/mdtest-78293b70d6d3f061.d: examples/mdtest.rs

/root/repo/target/debug/examples/mdtest-78293b70d6d3f061: examples/mdtest.rs

examples/mdtest.rs:
