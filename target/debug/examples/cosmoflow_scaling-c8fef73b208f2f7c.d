/root/repo/target/debug/examples/cosmoflow_scaling-c8fef73b208f2f7c.d: examples/cosmoflow_scaling.rs

/root/repo/target/debug/examples/cosmoflow_scaling-c8fef73b208f2f7c: examples/cosmoflow_scaling.rs

examples/cosmoflow_scaling.rs:
