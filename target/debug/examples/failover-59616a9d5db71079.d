/root/repo/target/debug/examples/failover-59616a9d5db71079.d: examples/failover.rs Cargo.toml

/root/repo/target/debug/examples/libfailover-59616a9d5db71079.rmeta: examples/failover.rs Cargo.toml

examples/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
