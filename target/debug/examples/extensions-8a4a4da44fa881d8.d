/root/repo/target/debug/examples/extensions-8a4a4da44fa881d8.d: examples/extensions.rs

/root/repo/target/debug/examples/extensions-8a4a4da44fa881d8: examples/extensions.rs

examples/extensions.rs:
