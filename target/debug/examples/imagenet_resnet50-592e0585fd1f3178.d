/root/repo/target/debug/examples/imagenet_resnet50-592e0585fd1f3178.d: examples/imagenet_resnet50.rs Cargo.toml

/root/repo/target/debug/examples/libimagenet_resnet50-592e0585fd1f3178.rmeta: examples/imagenet_resnet50.rs Cargo.toml

examples/imagenet_resnet50.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
