/root/repo/target/debug/examples/imagenet_resnet50-771e1947594fe3ff.d: examples/imagenet_resnet50.rs

/root/repo/target/debug/examples/imagenet_resnet50-771e1947594fe3ff: examples/imagenet_resnet50.rs

examples/imagenet_resnet50.rs:
