/root/repo/target/debug/examples/cosmoflow_scaling-43cd52a8a08e742e.d: examples/cosmoflow_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libcosmoflow_scaling-43cd52a8a08e742e.rmeta: examples/cosmoflow_scaling.rs Cargo.toml

examples/cosmoflow_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
