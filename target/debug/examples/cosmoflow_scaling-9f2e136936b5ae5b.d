/root/repo/target/debug/examples/cosmoflow_scaling-9f2e136936b5ae5b.d: examples/cosmoflow_scaling.rs

/root/repo/target/debug/examples/cosmoflow_scaling-9f2e136936b5ae5b: examples/cosmoflow_scaling.rs

examples/cosmoflow_scaling.rs:
