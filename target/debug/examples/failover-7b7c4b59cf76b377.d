/root/repo/target/debug/examples/failover-7b7c4b59cf76b377.d: examples/failover.rs

/root/repo/target/debug/examples/failover-7b7c4b59cf76b377: examples/failover.rs

examples/failover.rs:
