/root/repo/target/debug/examples/extensions-a82bb835163f6184.d: examples/extensions.rs

/root/repo/target/debug/examples/extensions-a82bb835163f6184: examples/extensions.rs

examples/extensions.rs:
