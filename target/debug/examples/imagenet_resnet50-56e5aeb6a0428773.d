/root/repo/target/debug/examples/imagenet_resnet50-56e5aeb6a0428773.d: examples/imagenet_resnet50.rs

/root/repo/target/debug/examples/imagenet_resnet50-56e5aeb6a0428773: examples/imagenet_resnet50.rs

examples/imagenet_resnet50.rs:
