/root/repo/target/debug/examples/quickstart-eb9fcde68f2d78c2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eb9fcde68f2d78c2: examples/quickstart.rs

examples/quickstart.rs:
