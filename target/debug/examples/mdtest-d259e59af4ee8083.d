/root/repo/target/debug/examples/mdtest-d259e59af4ee8083.d: examples/mdtest.rs Cargo.toml

/root/repo/target/debug/examples/libmdtest-d259e59af4ee8083.rmeta: examples/mdtest.rs Cargo.toml

examples/mdtest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
