/root/repo/target/debug/examples/quickstart-cf184d5cff5ccbfc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cf184d5cff5ccbfc: examples/quickstart.rs

examples/quickstart.rs:
