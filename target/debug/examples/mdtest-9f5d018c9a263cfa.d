/root/repo/target/debug/examples/mdtest-9f5d018c9a263cfa.d: examples/mdtest.rs

/root/repo/target/debug/examples/mdtest-9f5d018c9a263cfa: examples/mdtest.rs

examples/mdtest.rs:
