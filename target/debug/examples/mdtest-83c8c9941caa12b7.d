/root/repo/target/debug/examples/mdtest-83c8c9941caa12b7.d: examples/mdtest.rs

/root/repo/target/debug/examples/mdtest-83c8c9941caa12b7: examples/mdtest.rs

examples/mdtest.rs:
