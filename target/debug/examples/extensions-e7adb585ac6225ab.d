/root/repo/target/debug/examples/extensions-e7adb585ac6225ab.d: examples/extensions.rs Cargo.toml

/root/repo/target/debug/examples/libextensions-e7adb585ac6225ab.rmeta: examples/extensions.rs Cargo.toml

examples/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
