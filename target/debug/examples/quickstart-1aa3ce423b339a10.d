/root/repo/target/debug/examples/quickstart-1aa3ce423b339a10.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1aa3ce423b339a10: examples/quickstart.rs

examples/quickstart.rs:
