/root/repo/target/debug/deps/hvac_sync-c865b9aa3d101976.d: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs

/root/repo/target/debug/deps/libhvac_sync-c865b9aa3d101976.rlib: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs

/root/repo/target/debug/deps/libhvac_sync-c865b9aa3d101976.rmeta: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs

crates/hvac-sync/src/lib.rs:
crates/hvac-sync/src/classes.rs:
crates/hvac-sync/src/order.rs:
