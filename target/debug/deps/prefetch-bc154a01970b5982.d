/root/repo/target/debug/deps/prefetch-bc154a01970b5982.d: tests/tests/prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch-bc154a01970b5982.rmeta: tests/tests/prefetch.rs Cargo.toml

tests/tests/prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
