/root/repo/target/debug/deps/proptests-5893234fa6742029.d: crates/hvac-hash/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5893234fa6742029: crates/hvac-hash/tests/proptests.rs

crates/hvac-hash/tests/proptests.rs:
