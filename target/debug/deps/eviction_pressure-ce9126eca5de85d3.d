/root/repo/target/debug/deps/eviction_pressure-ce9126eca5de85d3.d: tests/tests/eviction_pressure.rs

/root/repo/target/debug/deps/eviction_pressure-ce9126eca5de85d3: tests/tests/eviction_pressure.rs

tests/tests/eviction_pressure.rs:
