/root/repo/target/debug/deps/failover_replication-b16ba58a5fcf3cbe.d: tests/tests/failover_replication.rs

/root/repo/target/debug/deps/failover_replication-b16ba58a5fcf3cbe: tests/tests/failover_replication.rs

tests/tests/failover_replication.rs:
