/root/repo/target/debug/deps/proptests-df443396be3a8ed6.d: crates/hvac-net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-df443396be3a8ed6: crates/hvac-net/tests/proptests.rs

crates/hvac-net/tests/proptests.rs:
