/root/repo/target/debug/deps/figures-744686a5184d665f.d: crates/hvac-bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-744686a5184d665f.rmeta: crates/hvac-bench/benches/figures.rs Cargo.toml

crates/hvac-bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
