/root/repo/target/debug/deps/functional_cluster-e3e3a5783a96c8df.d: tests/tests/functional_cluster.rs

/root/repo/target/debug/deps/functional_cluster-e3e3a5783a96c8df: tests/tests/functional_cluster.rs

tests/tests/functional_cluster.rs:
