/root/repo/target/debug/deps/prefetch-75eeda5b786d842b.d: tests/tests/prefetch.rs

/root/repo/target/debug/deps/prefetch-75eeda5b786d842b: tests/tests/prefetch.rs

tests/tests/prefetch.rs:
