/root/repo/target/debug/deps/hvac_net-1fab277af7e024ec.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/libhvac_net-1fab277af7e024ec.rlib: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/libhvac_net-1fab277af7e024ec.rmeta: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/wire.rs:
