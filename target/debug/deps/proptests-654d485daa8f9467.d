/root/repo/target/debug/deps/proptests-654d485daa8f9467.d: crates/hvac-dl/tests/proptests.rs

/root/repo/target/debug/deps/proptests-654d485daa8f9467: crates/hvac-dl/tests/proptests.rs

crates/hvac-dl/tests/proptests.rs:
