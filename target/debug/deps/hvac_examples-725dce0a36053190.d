/root/repo/target/debug/deps/hvac_examples-725dce0a36053190.d: examples/src/lib.rs

/root/repo/target/debug/deps/hvac_examples-725dce0a36053190: examples/src/lib.rs

examples/src/lib.rs:
