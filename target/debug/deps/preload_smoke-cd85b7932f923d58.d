/root/repo/target/debug/deps/preload_smoke-cd85b7932f923d58.d: crates/hvac-preload/tests/preload_smoke.rs

/root/repo/target/debug/deps/preload_smoke-cd85b7932f923d58: crates/hvac-preload/tests/preload_smoke.rs

crates/hvac-preload/tests/preload_smoke.rs:
