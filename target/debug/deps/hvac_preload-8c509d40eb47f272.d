/root/repo/target/debug/deps/hvac_preload-8c509d40eb47f272.d: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

/root/repo/target/debug/deps/hvac_preload-8c509d40eb47f272: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

crates/hvac-preload/src/lib.rs:
crates/hvac-preload/src/agent.rs:
crates/hvac-preload/src/shim.rs:
