/root/repo/target/debug/deps/hung_server-7c9b2e181f609a08.d: tests/tests/hung_server.rs

/root/repo/target/debug/deps/hung_server-7c9b2e181f609a08: tests/tests/hung_server.rs

tests/tests/hung_server.rs:
