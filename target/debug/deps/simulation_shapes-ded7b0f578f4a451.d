/root/repo/target/debug/deps/simulation_shapes-ded7b0f578f4a451.d: tests/tests/simulation_shapes.rs

/root/repo/target/debug/deps/simulation_shapes-ded7b0f578f4a451: tests/tests/simulation_shapes.rs

tests/tests/simulation_shapes.rs:
