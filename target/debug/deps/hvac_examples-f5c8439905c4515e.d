/root/repo/target/debug/deps/hvac_examples-f5c8439905c4515e.d: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-f5c8439905c4515e.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-f5c8439905c4515e.rmeta: examples/src/lib.rs

examples/src/lib.rs:
