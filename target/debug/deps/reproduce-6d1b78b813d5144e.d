/root/repo/target/debug/deps/reproduce-6d1b78b813d5144e.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-6d1b78b813d5144e: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
