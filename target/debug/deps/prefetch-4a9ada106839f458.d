/root/repo/target/debug/deps/prefetch-4a9ada106839f458.d: tests/tests/prefetch.rs

/root/repo/target/debug/deps/prefetch-4a9ada106839f458: tests/tests/prefetch.rs

tests/tests/prefetch.rs:
