/root/repo/target/debug/deps/hvac_examples-91092d62ebfe665e.d: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-91092d62ebfe665e.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-91092d62ebfe665e.rmeta: examples/src/lib.rs

examples/src/lib.rs:
