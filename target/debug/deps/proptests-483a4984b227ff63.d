/root/repo/target/debug/deps/proptests-483a4984b227ff63.d: crates/hvac-net/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-483a4984b227ff63.rmeta: crates/hvac-net/tests/proptests.rs Cargo.toml

crates/hvac-net/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
