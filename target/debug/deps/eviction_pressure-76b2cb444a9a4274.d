/root/repo/target/debug/deps/eviction_pressure-76b2cb444a9a4274.d: tests/tests/eviction_pressure.rs

/root/repo/target/debug/deps/eviction_pressure-76b2cb444a9a4274: tests/tests/eviction_pressure.rs

tests/tests/eviction_pressure.rs:
