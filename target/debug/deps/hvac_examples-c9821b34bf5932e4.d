/root/repo/target/debug/deps/hvac_examples-c9821b34bf5932e4.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_examples-c9821b34bf5932e4.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
