/root/repo/target/debug/deps/prefetch-e4c51a95482c75ea.d: tests/tests/prefetch.rs

/root/repo/target/debug/deps/prefetch-e4c51a95482c75ea: tests/tests/prefetch.rs

tests/tests/prefetch.rs:
