/root/repo/target/debug/deps/concurrency-b0622ea8cf5b5446.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-b0622ea8cf5b5446: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
