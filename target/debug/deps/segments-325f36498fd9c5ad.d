/root/repo/target/debug/deps/segments-325f36498fd9c5ad.d: tests/tests/segments.rs

/root/repo/target/debug/deps/segments-325f36498fd9c5ad: tests/tests/segments.rs

tests/tests/segments.rs:
