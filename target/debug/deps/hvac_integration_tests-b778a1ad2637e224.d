/root/repo/target/debug/deps/hvac_integration_tests-b778a1ad2637e224.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_integration_tests-b778a1ad2637e224.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
