/root/repo/target/debug/deps/tidy-0a2212aab533533c.d: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

/root/repo/target/debug/deps/libtidy-0a2212aab533533c.rlib: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

/root/repo/target/debug/deps/libtidy-0a2212aab533533c.rmeta: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

tools/tidy/src/lib.rs:
tools/tidy/src/ratchet.rs:
tools/tidy/src/scan.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tools/tidy
