/root/repo/target/debug/deps/functional_cluster-24e406b94e8638a7.d: tests/tests/functional_cluster.rs

/root/repo/target/debug/deps/functional_cluster-24e406b94e8638a7: tests/tests/functional_cluster.rs

tests/tests/functional_cluster.rs:
