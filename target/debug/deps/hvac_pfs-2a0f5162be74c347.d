/root/repo/target/debug/deps/hvac_pfs-2a0f5162be74c347.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_pfs-2a0f5162be74c347.rmeta: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs Cargo.toml

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
