/root/repo/target/debug/deps/failover_replication-f8806f394f11c2f6.d: tests/tests/failover_replication.rs

/root/repo/target/debug/deps/failover_replication-f8806f394f11c2f6: tests/tests/failover_replication.rs

tests/tests/failover_replication.rs:
