/root/repo/target/debug/deps/micro-6ee7ab5741676788.d: crates/hvac-bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-6ee7ab5741676788.rmeta: crates/hvac-bench/benches/micro.rs Cargo.toml

crates/hvac-bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
