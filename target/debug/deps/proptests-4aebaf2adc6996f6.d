/root/repo/target/debug/deps/proptests-4aebaf2adc6996f6.d: crates/hvac-dl/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4aebaf2adc6996f6: crates/hvac-dl/tests/proptests.rs

crates/hvac-dl/tests/proptests.rs:
