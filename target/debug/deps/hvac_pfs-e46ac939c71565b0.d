/root/repo/target/debug/deps/hvac_pfs-e46ac939c71565b0.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/hvac_pfs-e46ac939c71565b0: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
