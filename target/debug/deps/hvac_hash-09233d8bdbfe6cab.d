/root/repo/target/debug/deps/hvac_hash-09233d8bdbfe6cab.d: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

/root/repo/target/debug/deps/libhvac_hash-09233d8bdbfe6cab.rlib: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

/root/repo/target/debug/deps/libhvac_hash-09233d8bdbfe6cab.rmeta: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

crates/hvac-hash/src/lib.rs:
crates/hvac-hash/src/pathhash.rs:
crates/hvac-hash/src/placement.rs:
crates/hvac-hash/src/stats.rs:
crates/hvac-hash/src/topology.rs:
