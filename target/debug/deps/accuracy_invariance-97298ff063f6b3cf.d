/root/repo/target/debug/deps/accuracy_invariance-97298ff063f6b3cf.d: tests/tests/accuracy_invariance.rs

/root/repo/target/debug/deps/accuracy_invariance-97298ff063f6b3cf: tests/tests/accuracy_invariance.rs

tests/tests/accuracy_invariance.rs:
