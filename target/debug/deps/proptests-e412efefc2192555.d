/root/repo/target/debug/deps/proptests-e412efefc2192555.d: crates/hvac-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e412efefc2192555: crates/hvac-core/tests/proptests.rs

crates/hvac-core/tests/proptests.rs:
