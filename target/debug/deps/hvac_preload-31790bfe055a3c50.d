/root/repo/target/debug/deps/hvac_preload-31790bfe055a3c50.d: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

/root/repo/target/debug/deps/hvac_preload-31790bfe055a3c50: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

crates/hvac-preload/src/lib.rs:
crates/hvac-preload/src/agent.rs:
crates/hvac-preload/src/shim.rs:
