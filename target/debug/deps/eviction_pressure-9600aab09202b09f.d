/root/repo/target/debug/deps/eviction_pressure-9600aab09202b09f.d: tests/tests/eviction_pressure.rs Cargo.toml

/root/repo/target/debug/deps/libeviction_pressure-9600aab09202b09f.rmeta: tests/tests/eviction_pressure.rs Cargo.toml

tests/tests/eviction_pressure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
