/root/repo/target/debug/deps/segments-997c35bf6d18748c.d: tests/tests/segments.rs

/root/repo/target/debug/deps/segments-997c35bf6d18748c: tests/tests/segments.rs

tests/tests/segments.rs:
