/root/repo/target/debug/deps/hvac_integration_tests-95948c47e02c42bc.d: tests/src/lib.rs

/root/repo/target/debug/deps/hvac_integration_tests-95948c47e02c42bc: tests/src/lib.rs

tests/src/lib.rs:
