/root/repo/target/debug/deps/reproduce-5668700ad8156d3c.d: crates/hvac-bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-5668700ad8156d3c.rmeta: crates/hvac-bench/src/bin/reproduce.rs Cargo.toml

crates/hvac-bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
