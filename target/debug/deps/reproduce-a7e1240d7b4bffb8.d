/root/repo/target/debug/deps/reproduce-a7e1240d7b4bffb8.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-a7e1240d7b4bffb8: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
