/root/repo/target/debug/deps/hvac_sim-1c2a2a37f9e6d27b.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_sim-1c2a2a37f9e6d27b.rmeta: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs Cargo.toml

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
