/root/repo/target/debug/deps/hvac_examples-aa559294554158d1.d: examples/src/lib.rs

/root/repo/target/debug/deps/hvac_examples-aa559294554158d1: examples/src/lib.rs

examples/src/lib.rs:
