/root/repo/target/debug/deps/proptests-c2ae7294198875c2.d: crates/hvac-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c2ae7294198875c2.rmeta: crates/hvac-sim/tests/proptests.rs Cargo.toml

crates/hvac-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
