/root/repo/target/debug/deps/simulation_shapes-116bcdc5174d121d.d: tests/tests/simulation_shapes.rs

/root/repo/target/debug/deps/simulation_shapes-116bcdc5174d121d: tests/tests/simulation_shapes.rs

tests/tests/simulation_shapes.rs:
