/root/repo/target/debug/deps/simulation_shapes-5722de6dce7bd57f.d: tests/tests/simulation_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_shapes-5722de6dce7bd57f.rmeta: tests/tests/simulation_shapes.rs Cargo.toml

tests/tests/simulation_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
