/root/repo/target/debug/deps/segments-41ecc8abe2425e94.d: tests/tests/segments.rs

/root/repo/target/debug/deps/segments-41ecc8abe2425e94: tests/tests/segments.rs

tests/tests/segments.rs:
