/root/repo/target/debug/deps/segments-0c18300db84e777c.d: tests/tests/segments.rs

/root/repo/target/debug/deps/segments-0c18300db84e777c: tests/tests/segments.rs

tests/tests/segments.rs:
