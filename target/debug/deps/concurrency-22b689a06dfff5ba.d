/root/repo/target/debug/deps/concurrency-22b689a06dfff5ba.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-22b689a06dfff5ba: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
