/root/repo/target/debug/deps/hvac_dl-b7d3ba4a25b13a9a.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/hvac_dl-b7d3ba4a25b13a9a: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
