/root/repo/target/debug/deps/tidy_clean-2808bd7fa3c03d5b.d: tests/tests/tidy_clean.rs

/root/repo/target/debug/deps/tidy_clean-2808bd7fa3c03d5b: tests/tests/tidy_clean.rs

tests/tests/tidy_clean.rs:
