/root/repo/target/debug/deps/proptests-ac6efc9b876bdafc.d: crates/hvac-dl/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ac6efc9b876bdafc: crates/hvac-dl/tests/proptests.rs

crates/hvac-dl/tests/proptests.rs:
