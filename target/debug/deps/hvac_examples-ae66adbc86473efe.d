/root/repo/target/debug/deps/hvac_examples-ae66adbc86473efe.d: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-ae66adbc86473efe.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libhvac_examples-ae66adbc86473efe.rmeta: examples/src/lib.rs

examples/src/lib.rs:
