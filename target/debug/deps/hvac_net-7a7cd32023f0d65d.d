/root/repo/target/debug/deps/hvac_net-7a7cd32023f0d65d.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/hvac_net-7a7cd32023f0d65d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/wire.rs:
