/root/repo/target/debug/deps/accuracy_invariance-83dc6571e9eb27f5.d: tests/tests/accuracy_invariance.rs

/root/repo/target/debug/deps/accuracy_invariance-83dc6571e9eb27f5: tests/tests/accuracy_invariance.rs

tests/tests/accuracy_invariance.rs:
