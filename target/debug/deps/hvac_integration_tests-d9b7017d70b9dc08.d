/root/repo/target/debug/deps/hvac_integration_tests-d9b7017d70b9dc08.d: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-d9b7017d70b9dc08.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-d9b7017d70b9dc08.rmeta: tests/src/lib.rs

tests/src/lib.rs:
