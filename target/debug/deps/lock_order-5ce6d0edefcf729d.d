/root/repo/target/debug/deps/lock_order-5ce6d0edefcf729d.d: crates/hvac-sync/tests/lock_order.rs Cargo.toml

/root/repo/target/debug/deps/liblock_order-5ce6d0edefcf729d.rmeta: crates/hvac-sync/tests/lock_order.rs Cargo.toml

crates/hvac-sync/tests/lock_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
