/root/repo/target/debug/deps/proptests-7fdb605d509a2eb4.d: crates/hvac-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7fdb605d509a2eb4: crates/hvac-core/tests/proptests.rs

crates/hvac-core/tests/proptests.rs:
