/root/repo/target/debug/deps/simulation_shapes-65e6a8e352c67ff2.d: tests/tests/simulation_shapes.rs

/root/repo/target/debug/deps/simulation_shapes-65e6a8e352c67ff2: tests/tests/simulation_shapes.rs

tests/tests/simulation_shapes.rs:
