/root/repo/target/debug/deps/failover_replication-9dca58e57e5e648a.d: tests/tests/failover_replication.rs

/root/repo/target/debug/deps/failover_replication-9dca58e57e5e648a: tests/tests/failover_replication.rs

tests/tests/failover_replication.rs:
