/root/repo/target/debug/deps/hvac_net-d86ec36a86ab59e7.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/libhvac_net-d86ec36a86ab59e7.rlib: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/libhvac_net-d86ec36a86ab59e7.rmeta: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/fault.rs:
crates/hvac-net/src/wire.rs:
