/root/repo/target/debug/deps/hvac_storage-b5544f965930e2b1.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_storage-b5544f965930e2b1.rmeta: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs Cargo.toml

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
