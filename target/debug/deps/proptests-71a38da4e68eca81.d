/root/repo/target/debug/deps/proptests-71a38da4e68eca81.d: crates/hvac-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-71a38da4e68eca81: crates/hvac-sim/tests/proptests.rs

crates/hvac-sim/tests/proptests.rs:
