/root/repo/target/debug/deps/concurrency-1c8f0ffa90a942d4.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-1c8f0ffa90a942d4: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
