/root/repo/target/debug/deps/hvac_preload-17eef51597e576fe.d: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

/root/repo/target/debug/deps/hvac_preload-17eef51597e576fe: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

crates/hvac-preload/src/lib.rs:
crates/hvac-preload/src/agent.rs:
crates/hvac-preload/src/shim.rs:
