/root/repo/target/debug/deps/hvac_dl-d7ebdaff8a201f97.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/hvac_dl-d7ebdaff8a201f97: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
