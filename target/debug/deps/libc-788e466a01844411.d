/root/repo/target/debug/deps/libc-788e466a01844411.d: vendor/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-788e466a01844411.rlib: vendor/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-788e466a01844411.rmeta: vendor/libc/src/lib.rs

vendor/libc/src/lib.rs:
