/root/repo/target/debug/deps/hvac_integration_tests-b90374d60d57975f.d: tests/src/lib.rs

/root/repo/target/debug/deps/hvac_integration_tests-b90374d60d57975f: tests/src/lib.rs

tests/src/lib.rs:
