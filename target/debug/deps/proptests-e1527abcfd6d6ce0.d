/root/repo/target/debug/deps/proptests-e1527abcfd6d6ce0.d: crates/hvac-hash/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e1527abcfd6d6ce0: crates/hvac-hash/tests/proptests.rs

crates/hvac-hash/tests/proptests.rs:
