/root/repo/target/debug/deps/hvac_sim-913e56b7549bcfa4.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/debug/deps/hvac_sim-913e56b7549bcfa4: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
