/root/repo/target/debug/deps/functional_cluster-272a73a9e3fbe09d.d: tests/tests/functional_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_cluster-272a73a9e3fbe09d.rmeta: tests/tests/functional_cluster.rs Cargo.toml

tests/tests/functional_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
