/root/repo/target/debug/deps/tidy-8451bb8f5aba8723.d: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libtidy-8451bb8f5aba8723.rmeta: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs Cargo.toml

tools/tidy/src/lib.rs:
tools/tidy/src/ratchet.rs:
tools/tidy/src/scan.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tools/tidy
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
