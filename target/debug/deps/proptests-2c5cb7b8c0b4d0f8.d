/root/repo/target/debug/deps/proptests-2c5cb7b8c0b4d0f8.d: crates/hvac-dl/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2c5cb7b8c0b4d0f8.rmeta: crates/hvac-dl/tests/proptests.rs Cargo.toml

crates/hvac-dl/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
