/root/repo/target/debug/deps/proptests-12eb77c35112e21f.d: crates/hvac-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-12eb77c35112e21f: crates/hvac-core/tests/proptests.rs

crates/hvac-core/tests/proptests.rs:
