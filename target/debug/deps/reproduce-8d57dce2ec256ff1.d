/root/repo/target/debug/deps/reproduce-8d57dce2ec256ff1.d: crates/hvac-bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-8d57dce2ec256ff1.rmeta: crates/hvac-bench/src/bin/reproduce.rs Cargo.toml

crates/hvac-bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
