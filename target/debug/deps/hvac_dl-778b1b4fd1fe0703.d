/root/repo/target/debug/deps/hvac_dl-778b1b4fd1fe0703.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_dl-778b1b4fd1fe0703.rmeta: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs Cargo.toml

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
