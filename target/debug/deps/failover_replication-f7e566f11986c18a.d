/root/repo/target/debug/deps/failover_replication-f7e566f11986c18a.d: tests/tests/failover_replication.rs

/root/repo/target/debug/deps/failover_replication-f7e566f11986c18a: tests/tests/failover_replication.rs

tests/tests/failover_replication.rs:
