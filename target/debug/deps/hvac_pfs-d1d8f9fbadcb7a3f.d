/root/repo/target/debug/deps/hvac_pfs-d1d8f9fbadcb7a3f.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/hvac_pfs-d1d8f9fbadcb7a3f: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
