/root/repo/target/debug/deps/preload_smoke-66b2a24d9ce1fb73.d: crates/hvac-preload/tests/preload_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libpreload_smoke-66b2a24d9ce1fb73.rmeta: crates/hvac-preload/tests/preload_smoke.rs Cargo.toml

crates/hvac-preload/tests/preload_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
