/root/repo/target/debug/deps/hvac_bench-96ffb568cd6e0a88.d: crates/hvac-bench/src/lib.rs crates/hvac-bench/src/figures/mod.rs crates/hvac-bench/src/figures/ablation.rs crates/hvac-bench/src/figures/fig10.rs crates/hvac-bench/src/figures/fig11.rs crates/hvac-bench/src/figures/fig12.rs crates/hvac-bench/src/figures/fig13.rs crates/hvac-bench/src/figures/fig14.rs crates/hvac-bench/src/figures/fig15.rs crates/hvac-bench/src/figures/fig3.rs crates/hvac-bench/src/figures/fig4.rs crates/hvac-bench/src/figures/fig8.rs crates/hvac-bench/src/figures/fig9.rs crates/hvac-bench/src/figures/table1.rs crates/hvac-bench/src/report.rs crates/hvac-bench/src/systems.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_bench-96ffb568cd6e0a88.rmeta: crates/hvac-bench/src/lib.rs crates/hvac-bench/src/figures/mod.rs crates/hvac-bench/src/figures/ablation.rs crates/hvac-bench/src/figures/fig10.rs crates/hvac-bench/src/figures/fig11.rs crates/hvac-bench/src/figures/fig12.rs crates/hvac-bench/src/figures/fig13.rs crates/hvac-bench/src/figures/fig14.rs crates/hvac-bench/src/figures/fig15.rs crates/hvac-bench/src/figures/fig3.rs crates/hvac-bench/src/figures/fig4.rs crates/hvac-bench/src/figures/fig8.rs crates/hvac-bench/src/figures/fig9.rs crates/hvac-bench/src/figures/table1.rs crates/hvac-bench/src/report.rs crates/hvac-bench/src/systems.rs Cargo.toml

crates/hvac-bench/src/lib.rs:
crates/hvac-bench/src/figures/mod.rs:
crates/hvac-bench/src/figures/ablation.rs:
crates/hvac-bench/src/figures/fig10.rs:
crates/hvac-bench/src/figures/fig11.rs:
crates/hvac-bench/src/figures/fig12.rs:
crates/hvac-bench/src/figures/fig13.rs:
crates/hvac-bench/src/figures/fig14.rs:
crates/hvac-bench/src/figures/fig15.rs:
crates/hvac-bench/src/figures/fig3.rs:
crates/hvac-bench/src/figures/fig4.rs:
crates/hvac-bench/src/figures/fig8.rs:
crates/hvac-bench/src/figures/fig9.rs:
crates/hvac-bench/src/figures/table1.rs:
crates/hvac-bench/src/report.rs:
crates/hvac-bench/src/systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
