/root/repo/target/debug/deps/accuracy_invariance-4022a5b245460e01.d: tests/tests/accuracy_invariance.rs

/root/repo/target/debug/deps/accuracy_invariance-4022a5b245460e01: tests/tests/accuracy_invariance.rs

tests/tests/accuracy_invariance.rs:
