/root/repo/target/debug/deps/proptests-f8e2e6f34fe5ab27.d: crates/hvac-net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f8e2e6f34fe5ab27: crates/hvac-net/tests/proptests.rs

crates/hvac-net/tests/proptests.rs:
