/root/repo/target/debug/deps/hvac_pfs-6925642aa691f8b8.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/libhvac_pfs-6925642aa691f8b8.rlib: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/libhvac_pfs-6925642aa691f8b8.rmeta: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
