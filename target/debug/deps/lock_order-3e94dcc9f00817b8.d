/root/repo/target/debug/deps/lock_order-3e94dcc9f00817b8.d: crates/hvac-sync/tests/lock_order.rs

/root/repo/target/debug/deps/lock_order-3e94dcc9f00817b8: crates/hvac-sync/tests/lock_order.rs

crates/hvac-sync/tests/lock_order.rs:
