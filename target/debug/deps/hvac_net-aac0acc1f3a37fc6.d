/root/repo/target/debug/deps/hvac_net-aac0acc1f3a37fc6.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_net-aac0acc1f3a37fc6.rmeta: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs Cargo.toml

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/fault.rs:
crates/hvac-net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
