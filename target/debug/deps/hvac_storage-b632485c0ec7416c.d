/root/repo/target/debug/deps/hvac_storage-b632485c0ec7416c.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/libhvac_storage-b632485c0ec7416c.rlib: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/libhvac_storage-b632485c0ec7416c.rmeta: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
