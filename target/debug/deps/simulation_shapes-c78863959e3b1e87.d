/root/repo/target/debug/deps/simulation_shapes-c78863959e3b1e87.d: tests/tests/simulation_shapes.rs

/root/repo/target/debug/deps/simulation_shapes-c78863959e3b1e87: tests/tests/simulation_shapes.rs

tests/tests/simulation_shapes.rs:
