/root/repo/target/debug/deps/preload_smoke-0e4b9e2a9460662d.d: crates/hvac-preload/tests/preload_smoke.rs

/root/repo/target/debug/deps/preload_smoke-0e4b9e2a9460662d: crates/hvac-preload/tests/preload_smoke.rs

crates/hvac-preload/tests/preload_smoke.rs:
