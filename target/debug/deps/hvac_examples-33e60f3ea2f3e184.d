/root/repo/target/debug/deps/hvac_examples-33e60f3ea2f3e184.d: examples/src/lib.rs

/root/repo/target/debug/deps/hvac_examples-33e60f3ea2f3e184: examples/src/lib.rs

examples/src/lib.rs:
