/root/repo/target/debug/deps/hvac_preload-606293209debdae9.d: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_preload-606293209debdae9.rmeta: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs Cargo.toml

crates/hvac-preload/src/lib.rs:
crates/hvac-preload/src/agent.rs:
crates/hvac-preload/src/shim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
