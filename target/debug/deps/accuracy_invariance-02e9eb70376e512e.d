/root/repo/target/debug/deps/accuracy_invariance-02e9eb70376e512e.d: tests/tests/accuracy_invariance.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy_invariance-02e9eb70376e512e.rmeta: tests/tests/accuracy_invariance.rs Cargo.toml

tests/tests/accuracy_invariance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
