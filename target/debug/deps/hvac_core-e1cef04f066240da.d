/root/repo/target/debug/deps/hvac_core-e1cef04f066240da.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_core-e1cef04f066240da.rmeta: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs Cargo.toml

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
