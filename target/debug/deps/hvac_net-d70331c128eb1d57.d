/root/repo/target/debug/deps/hvac_net-d70331c128eb1d57.d: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

/root/repo/target/debug/deps/hvac_net-d70331c128eb1d57: crates/hvac-net/src/lib.rs crates/hvac-net/src/bulk.rs crates/hvac-net/src/client.rs crates/hvac-net/src/fabric.rs crates/hvac-net/src/fault.rs crates/hvac-net/src/wire.rs

crates/hvac-net/src/lib.rs:
crates/hvac-net/src/bulk.rs:
crates/hvac-net/src/client.rs:
crates/hvac-net/src/fabric.rs:
crates/hvac-net/src/fault.rs:
crates/hvac-net/src/wire.rs:
