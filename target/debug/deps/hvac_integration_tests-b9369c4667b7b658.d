/root/repo/target/debug/deps/hvac_integration_tests-b9369c4667b7b658.d: tests/src/lib.rs

/root/repo/target/debug/deps/hvac_integration_tests-b9369c4667b7b658: tests/src/lib.rs

tests/src/lib.rs:
