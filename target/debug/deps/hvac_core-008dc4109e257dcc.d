/root/repo/target/debug/deps/hvac_core-008dc4109e257dcc.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/debug/deps/libhvac_core-008dc4109e257dcc.rlib: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/debug/deps/libhvac_core-008dc4109e257dcc.rmeta: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
