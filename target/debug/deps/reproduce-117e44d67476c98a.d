/root/repo/target/debug/deps/reproduce-117e44d67476c98a.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-117e44d67476c98a: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
