/root/repo/target/debug/deps/proptests-fcefcfa8e8d8d0bd.d: crates/hvac-hash/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fcefcfa8e8d8d0bd.rmeta: crates/hvac-hash/tests/proptests.rs Cargo.toml

crates/hvac-hash/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
