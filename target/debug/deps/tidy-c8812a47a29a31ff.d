/root/repo/target/debug/deps/tidy-c8812a47a29a31ff.d: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

/root/repo/target/debug/deps/tidy-c8812a47a29a31ff: tools/tidy/src/lib.rs tools/tidy/src/ratchet.rs tools/tidy/src/scan.rs

tools/tidy/src/lib.rs:
tools/tidy/src/ratchet.rs:
tools/tidy/src/scan.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tools/tidy
