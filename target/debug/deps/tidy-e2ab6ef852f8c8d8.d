/root/repo/target/debug/deps/tidy-e2ab6ef852f8c8d8.d: tools/tidy/src/main.rs

/root/repo/target/debug/deps/tidy-e2ab6ef852f8c8d8: tools/tidy/src/main.rs

tools/tidy/src/main.rs:
