/root/repo/target/debug/deps/eviction_pressure-7324159b74262559.d: tests/tests/eviction_pressure.rs

/root/repo/target/debug/deps/eviction_pressure-7324159b74262559: tests/tests/eviction_pressure.rs

tests/tests/eviction_pressure.rs:
