/root/repo/target/debug/deps/hvac_core-0f3017d53f55e314.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/debug/deps/libhvac_core-0f3017d53f55e314.rlib: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/debug/deps/libhvac_core-0f3017d53f55e314.rmeta: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
