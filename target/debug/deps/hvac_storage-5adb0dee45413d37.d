/root/repo/target/debug/deps/hvac_storage-5adb0dee45413d37.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/hvac_storage-5adb0dee45413d37: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
