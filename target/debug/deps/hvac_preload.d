/root/repo/target/debug/deps/hvac_preload.d: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

/root/repo/target/debug/deps/libhvac_preload.so: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

/root/repo/target/debug/deps/libhvac_preload.rlib: crates/hvac-preload/src/lib.rs crates/hvac-preload/src/agent.rs crates/hvac-preload/src/shim.rs

crates/hvac-preload/src/lib.rs:
crates/hvac-preload/src/agent.rs:
crates/hvac-preload/src/shim.rs:
