/root/repo/target/debug/deps/hvac_integration_tests-940f5aee2fa09d7d.d: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-940f5aee2fa09d7d.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-940f5aee2fa09d7d.rmeta: tests/src/lib.rs

tests/src/lib.rs:
