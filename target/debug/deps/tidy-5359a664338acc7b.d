/root/repo/target/debug/deps/tidy-5359a664338acc7b.d: tools/tidy/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtidy-5359a664338acc7b.rmeta: tools/tidy/src/main.rs Cargo.toml

tools/tidy/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
