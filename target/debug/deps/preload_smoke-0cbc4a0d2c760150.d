/root/repo/target/debug/deps/preload_smoke-0cbc4a0d2c760150.d: crates/hvac-preload/tests/preload_smoke.rs

/root/repo/target/debug/deps/preload_smoke-0cbc4a0d2c760150: crates/hvac-preload/tests/preload_smoke.rs

crates/hvac-preload/tests/preload_smoke.rs:
