/root/repo/target/debug/deps/hvac_types-908a5599de9d6728.d: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_types-908a5599de9d6728.rmeta: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs Cargo.toml

crates/hvac-types/src/lib.rs:
crates/hvac-types/src/config.rs:
crates/hvac-types/src/error.rs:
crates/hvac-types/src/ids.rs:
crates/hvac-types/src/summit.rs:
crates/hvac-types/src/time.rs:
crates/hvac-types/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
