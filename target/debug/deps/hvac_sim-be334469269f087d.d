/root/repo/target/debug/deps/hvac_sim-be334469269f087d.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_sim-be334469269f087d.rmeta: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs Cargo.toml

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
