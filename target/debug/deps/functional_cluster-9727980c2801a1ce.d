/root/repo/target/debug/deps/functional_cluster-9727980c2801a1ce.d: tests/tests/functional_cluster.rs

/root/repo/target/debug/deps/functional_cluster-9727980c2801a1ce: tests/tests/functional_cluster.rs

tests/tests/functional_cluster.rs:
