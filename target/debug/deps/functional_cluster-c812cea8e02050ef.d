/root/repo/target/debug/deps/functional_cluster-c812cea8e02050ef.d: tests/tests/functional_cluster.rs

/root/repo/target/debug/deps/functional_cluster-c812cea8e02050ef: tests/tests/functional_cluster.rs

tests/tests/functional_cluster.rs:
