/root/repo/target/debug/deps/hvac_pfs-a1e0d65c79be8764.d: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/libhvac_pfs-a1e0d65c79be8764.rlib: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

/root/repo/target/debug/deps/libhvac_pfs-a1e0d65c79be8764.rmeta: crates/hvac-pfs/src/lib.rs crates/hvac-pfs/src/dirstore.rs crates/hvac-pfs/src/memstore.rs crates/hvac-pfs/src/store.rs crates/hvac-pfs/src/throttle.rs

crates/hvac-pfs/src/lib.rs:
crates/hvac-pfs/src/dirstore.rs:
crates/hvac-pfs/src/memstore.rs:
crates/hvac-pfs/src/store.rs:
crates/hvac-pfs/src/throttle.rs:
