/root/repo/target/debug/deps/shim_semantics-9614304f0bbf4ab9.d: crates/hvac-preload/tests/shim_semantics.rs

/root/repo/target/debug/deps/shim_semantics-9614304f0bbf4ab9: crates/hvac-preload/tests/shim_semantics.rs

crates/hvac-preload/tests/shim_semantics.rs:
