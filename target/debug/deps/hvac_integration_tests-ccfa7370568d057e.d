/root/repo/target/debug/deps/hvac_integration_tests-ccfa7370568d057e.d: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-ccfa7370568d057e.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-ccfa7370568d057e.rmeta: tests/src/lib.rs

tests/src/lib.rs:
