/root/repo/target/debug/deps/hvac_hash-c5192c466e2a39dd.d: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_hash-c5192c466e2a39dd.rmeta: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs Cargo.toml

crates/hvac-hash/src/lib.rs:
crates/hvac-hash/src/pathhash.rs:
crates/hvac-hash/src/placement.rs:
crates/hvac-hash/src/stats.rs:
crates/hvac-hash/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
