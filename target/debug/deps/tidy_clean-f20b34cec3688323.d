/root/repo/target/debug/deps/tidy_clean-f20b34cec3688323.d: tests/tests/tidy_clean.rs Cargo.toml

/root/repo/target/debug/deps/libtidy_clean-f20b34cec3688323.rmeta: tests/tests/tidy_clean.rs Cargo.toml

tests/tests/tidy_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
