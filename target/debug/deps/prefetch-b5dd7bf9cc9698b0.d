/root/repo/target/debug/deps/prefetch-b5dd7bf9cc9698b0.d: tests/tests/prefetch.rs

/root/repo/target/debug/deps/prefetch-b5dd7bf9cc9698b0: tests/tests/prefetch.rs

tests/tests/prefetch.rs:
