/root/repo/target/debug/deps/hvac_hash-7b86c44e585daee8.d: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

/root/repo/target/debug/deps/hvac_hash-7b86c44e585daee8: crates/hvac-hash/src/lib.rs crates/hvac-hash/src/pathhash.rs crates/hvac-hash/src/placement.rs crates/hvac-hash/src/stats.rs crates/hvac-hash/src/topology.rs

crates/hvac-hash/src/lib.rs:
crates/hvac-hash/src/pathhash.rs:
crates/hvac-hash/src/placement.rs:
crates/hvac-hash/src/stats.rs:
crates/hvac-hash/src/topology.rs:
