/root/repo/target/debug/deps/failover_replication-75889bb992796291.d: tests/tests/failover_replication.rs Cargo.toml

/root/repo/target/debug/deps/libfailover_replication-75889bb992796291.rmeta: tests/tests/failover_replication.rs Cargo.toml

tests/tests/failover_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
