/root/repo/target/debug/deps/tidy-fbe5c90ab465afc6.d: tools/tidy/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtidy-fbe5c90ab465afc6.rmeta: tools/tidy/src/main.rs Cargo.toml

tools/tidy/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
