/root/repo/target/debug/deps/eviction_pressure-7fcecdefa77c3ac9.d: tests/tests/eviction_pressure.rs

/root/repo/target/debug/deps/eviction_pressure-7fcecdefa77c3ac9: tests/tests/eviction_pressure.rs

tests/tests/eviction_pressure.rs:
