/root/repo/target/debug/deps/reproduce-9cbcb0a2fcbd2728.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-9cbcb0a2fcbd2728: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
