/root/repo/target/debug/deps/dbg_shim-644f809ae29d3489.d: crates/hvac-preload/tests/dbg_shim.rs

/root/repo/target/debug/deps/dbg_shim-644f809ae29d3489: crates/hvac-preload/tests/dbg_shim.rs

crates/hvac-preload/tests/dbg_shim.rs:
