/root/repo/target/debug/deps/hvac_integration_tests-26e53d94e2c28c6d.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_integration_tests-26e53d94e2c28c6d.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
