/root/repo/target/debug/deps/hvac_dl-370a1736ade1064c.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/hvac_dl-370a1736ade1064c: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
