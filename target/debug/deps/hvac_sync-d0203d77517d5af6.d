/root/repo/target/debug/deps/hvac_sync-d0203d77517d5af6.d: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_sync-d0203d77517d5af6.rmeta: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs Cargo.toml

crates/hvac-sync/src/lib.rs:
crates/hvac-sync/src/classes.rs:
crates/hvac-sync/src/order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
