/root/repo/target/debug/deps/proptests-eb178d1c3e802c43.d: crates/hvac-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-eb178d1c3e802c43: crates/hvac-sim/tests/proptests.rs

crates/hvac-sim/tests/proptests.rs:
