/root/repo/target/debug/deps/hvac_types-213e5d514b4ab47a.d: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

/root/repo/target/debug/deps/libhvac_types-213e5d514b4ab47a.rlib: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

/root/repo/target/debug/deps/libhvac_types-213e5d514b4ab47a.rmeta: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

crates/hvac-types/src/lib.rs:
crates/hvac-types/src/config.rs:
crates/hvac-types/src/error.rs:
crates/hvac-types/src/ids.rs:
crates/hvac-types/src/summit.rs:
crates/hvac-types/src/time.rs:
crates/hvac-types/src/units.rs:
