/root/repo/target/debug/deps/hvac_storage-5cb359d2e02ccfec.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/hvac_storage-5cb359d2e02ccfec: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
