/root/repo/target/debug/deps/hvac_core-b25f7716e389a8a1.d: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

/root/repo/target/debug/deps/hvac_core-b25f7716e389a8a1: crates/hvac-core/src/lib.rs crates/hvac-core/src/cache.rs crates/hvac-core/src/client.rs crates/hvac-core/src/cluster.rs crates/hvac-core/src/eviction.rs crates/hvac-core/src/intercept.rs crates/hvac-core/src/metrics.rs crates/hvac-core/src/protocol.rs crates/hvac-core/src/server.rs

crates/hvac-core/src/lib.rs:
crates/hvac-core/src/cache.rs:
crates/hvac-core/src/client.rs:
crates/hvac-core/src/cluster.rs:
crates/hvac-core/src/eviction.rs:
crates/hvac-core/src/intercept.rs:
crates/hvac-core/src/metrics.rs:
crates/hvac-core/src/protocol.rs:
crates/hvac-core/src/server.rs:
