/root/repo/target/debug/deps/segments-381668dd691a80ea.d: tests/tests/segments.rs Cargo.toml

/root/repo/target/debug/deps/libsegments-381668dd691a80ea.rmeta: tests/tests/segments.rs Cargo.toml

tests/tests/segments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
