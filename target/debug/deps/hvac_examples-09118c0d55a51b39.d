/root/repo/target/debug/deps/hvac_examples-09118c0d55a51b39.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhvac_examples-09118c0d55a51b39.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
