/root/repo/target/debug/deps/hvac_dl-734b146cf3171bd3.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/libhvac_dl-734b146cf3171bd3.rlib: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/libhvac_dl-734b146cf3171bd3.rmeta: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
