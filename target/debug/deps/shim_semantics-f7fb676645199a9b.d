/root/repo/target/debug/deps/shim_semantics-f7fb676645199a9b.d: crates/hvac-preload/tests/shim_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libshim_semantics-f7fb676645199a9b.rmeta: crates/hvac-preload/tests/shim_semantics.rs Cargo.toml

crates/hvac-preload/tests/shim_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
