/root/repo/target/debug/deps/hung_server-188b3b523cf9e992.d: tests/tests/hung_server.rs Cargo.toml

/root/repo/target/debug/deps/libhung_server-188b3b523cf9e992.rmeta: tests/tests/hung_server.rs Cargo.toml

tests/tests/hung_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
