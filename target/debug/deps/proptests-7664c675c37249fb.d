/root/repo/target/debug/deps/proptests-7664c675c37249fb.d: crates/hvac-core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7664c675c37249fb.rmeta: crates/hvac-core/tests/proptests.rs Cargo.toml

crates/hvac-core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
