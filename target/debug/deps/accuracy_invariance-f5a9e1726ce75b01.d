/root/repo/target/debug/deps/accuracy_invariance-f5a9e1726ce75b01.d: tests/tests/accuracy_invariance.rs

/root/repo/target/debug/deps/accuracy_invariance-f5a9e1726ce75b01: tests/tests/accuracy_invariance.rs

tests/tests/accuracy_invariance.rs:
