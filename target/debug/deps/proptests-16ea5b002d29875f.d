/root/repo/target/debug/deps/proptests-16ea5b002d29875f.d: crates/hvac-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-16ea5b002d29875f: crates/hvac-sim/tests/proptests.rs

crates/hvac-sim/tests/proptests.rs:
