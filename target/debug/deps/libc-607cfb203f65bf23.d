/root/repo/target/debug/deps/libc-607cfb203f65bf23.d: vendor/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-607cfb203f65bf23.rmeta: vendor/libc/src/lib.rs

vendor/libc/src/lib.rs:
