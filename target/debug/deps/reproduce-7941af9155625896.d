/root/repo/target/debug/deps/reproduce-7941af9155625896.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-7941af9155625896: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
