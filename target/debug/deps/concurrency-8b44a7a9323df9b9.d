/root/repo/target/debug/deps/concurrency-8b44a7a9323df9b9.d: tests/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-8b44a7a9323df9b9.rmeta: tests/tests/concurrency.rs Cargo.toml

tests/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
