/root/repo/target/debug/deps/hvac_dl-343cb733e80c325f.d: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/libhvac_dl-343cb733e80c325f.rlib: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

/root/repo/target/debug/deps/libhvac_dl-343cb733e80c325f.rmeta: crates/hvac-dl/src/lib.rs crates/hvac-dl/src/accuracy.rs crates/hvac-dl/src/dataset.rs crates/hvac-dl/src/loader.rs crates/hvac-dl/src/models.rs crates/hvac-dl/src/sampler.rs crates/hvac-dl/src/training.rs

crates/hvac-dl/src/lib.rs:
crates/hvac-dl/src/accuracy.rs:
crates/hvac-dl/src/dataset.rs:
crates/hvac-dl/src/loader.rs:
crates/hvac-dl/src/models.rs:
crates/hvac-dl/src/sampler.rs:
crates/hvac-dl/src/training.rs:
