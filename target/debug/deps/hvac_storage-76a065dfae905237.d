/root/repo/target/debug/deps/hvac_storage-76a065dfae905237.d: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/libhvac_storage-76a065dfae905237.rlib: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

/root/repo/target/debug/deps/libhvac_storage-76a065dfae905237.rmeta: crates/hvac-storage/src/lib.rs crates/hvac-storage/src/capacity.rs crates/hvac-storage/src/device.rs crates/hvac-storage/src/localstore.rs

crates/hvac-storage/src/lib.rs:
crates/hvac-storage/src/capacity.rs:
crates/hvac-storage/src/device.rs:
crates/hvac-storage/src/localstore.rs:
