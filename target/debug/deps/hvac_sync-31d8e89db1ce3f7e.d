/root/repo/target/debug/deps/hvac_sync-31d8e89db1ce3f7e.d: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs

/root/repo/target/debug/deps/hvac_sync-31d8e89db1ce3f7e: crates/hvac-sync/src/lib.rs crates/hvac-sync/src/classes.rs crates/hvac-sync/src/order.rs

crates/hvac-sync/src/lib.rs:
crates/hvac-sync/src/classes.rs:
crates/hvac-sync/src/order.rs:
