/root/repo/target/debug/deps/hvac_integration_tests-657b8ff487d51c28.d: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-657b8ff487d51c28.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libhvac_integration_tests-657b8ff487d51c28.rmeta: tests/src/lib.rs

tests/src/lib.rs:
