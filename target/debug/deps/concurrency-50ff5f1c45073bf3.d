/root/repo/target/debug/deps/concurrency-50ff5f1c45073bf3.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-50ff5f1c45073bf3: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
