/root/repo/target/debug/deps/tidy-05a330d6a07dfe14.d: tools/tidy/src/main.rs

/root/repo/target/debug/deps/tidy-05a330d6a07dfe14: tools/tidy/src/main.rs

tools/tidy/src/main.rs:
