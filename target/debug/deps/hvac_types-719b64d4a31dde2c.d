/root/repo/target/debug/deps/hvac_types-719b64d4a31dde2c.d: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

/root/repo/target/debug/deps/hvac_types-719b64d4a31dde2c: crates/hvac-types/src/lib.rs crates/hvac-types/src/config.rs crates/hvac-types/src/error.rs crates/hvac-types/src/ids.rs crates/hvac-types/src/summit.rs crates/hvac-types/src/time.rs crates/hvac-types/src/units.rs

crates/hvac-types/src/lib.rs:
crates/hvac-types/src/config.rs:
crates/hvac-types/src/error.rs:
crates/hvac-types/src/ids.rs:
crates/hvac-types/src/summit.rs:
crates/hvac-types/src/time.rs:
crates/hvac-types/src/units.rs:
