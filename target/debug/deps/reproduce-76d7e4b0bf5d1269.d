/root/repo/target/debug/deps/reproduce-76d7e4b0bf5d1269.d: crates/hvac-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-76d7e4b0bf5d1269: crates/hvac-bench/src/bin/reproduce.rs

crates/hvac-bench/src/bin/reproduce.rs:
