/root/repo/target/debug/deps/hvac_integration_tests-c5b31e635ed5c0bc.d: tests/src/lib.rs

/root/repo/target/debug/deps/hvac_integration_tests-c5b31e635ed5c0bc: tests/src/lib.rs

tests/src/lib.rs:
