/root/repo/target/debug/deps/hvac_sim-c79c6163bb197f2d.d: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/debug/deps/libhvac_sim-c79c6163bb197f2d.rlib: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

/root/repo/target/debug/deps/libhvac_sim-c79c6163bb197f2d.rmeta: crates/hvac-sim/src/lib.rs crates/hvac-sim/src/engine.rs crates/hvac-sim/src/gpfs.rs crates/hvac-sim/src/iostack.rs crates/hvac-sim/src/mdtest.rs crates/hvac-sim/src/resource.rs crates/hvac-sim/src/stats.rs

crates/hvac-sim/src/lib.rs:
crates/hvac-sim/src/engine.rs:
crates/hvac-sim/src/gpfs.rs:
crates/hvac-sim/src/iostack.rs:
crates/hvac-sim/src/mdtest.rs:
crates/hvac-sim/src/resource.rs:
crates/hvac-sim/src/stats.rs:
