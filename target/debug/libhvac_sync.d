/root/repo/target/debug/libhvac_sync.rlib: /root/repo/crates/hvac-sync/src/classes.rs /root/repo/crates/hvac-sync/src/lib.rs /root/repo/crates/hvac-sync/src/order.rs
