//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-harness surface the HVAC benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`, benchmark
//! groups, `bench_with_input`, `black_box`) with a simple
//! warmup-then-sample median timer instead of criterion's full statistics
//! pipeline. Honors the `--test` flag that `cargo test` passes to
//! `harness = false` bench binaries by running every closure exactly once,
//! and supports a substring filter argument like the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a bench run was invoked.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// `cargo test`: run each closure once to smoke-test it.
    Test,
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filter: None,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark (consuming, to match
    /// `Criterion::default().sample_size(n)` builder usage).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Apply command-line arguments: `--test` switches to run-once mode;
    /// the first non-flag argument is a substring filter.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.mode = Mode::Test;
            } else if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    fn selected(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, sample_size: usize, name: &str, f: &mut F) {
    let mut b = Bencher {
        mode,
        sample_size,
        ns_per_iter: None,
    };
    f(&mut b);
    if mode == Mode::Measure {
        match b.ns_per_iter {
            Some(ns) => println!("bench: {name:<56} {ns:>14.1} ns/iter"),
            None => println!("bench: {name:<56} (no measurement)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run a benchmark named `{group}/{id}`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(self.criterion.mode, n, &full, &mut f);
        }
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (report output is flushed eagerly, so a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter's `Display` form.
    pub fn from_parameter<D: std::fmt::Display>(param: D) -> Self {
        Self(param.to_string())
    }

    /// Build an id from a function name and parameter.
    pub fn new<D: std::fmt::Display>(function: &str, param: D) -> Self {
        Self(format!("{function}/{param}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measure a closure: warm up, then take `sample_size` samples and keep
    /// the median ns/iter. In `--test` mode the closure runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Warmup: run for ~20ms to estimate per-iteration cost.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Aim for ~2ms per sample so fast ops amortise timer overhead.
        let iters_per_sample = ((2_000_000.0 / est_ns) as u64).clamp(1, 10_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Define a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
