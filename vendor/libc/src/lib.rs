//! Offline stand-in for the `libc` crate.
//!
//! Exposes only the x86_64 linux-gnu subset that `hvac-preload` and the
//! `hvac-server` binary need: the C scalar type aliases, a handful of
//! fcntl/stat constants, the `struct stat` layout, and extern declarations
//! for `dlsym`, `__errno_location`, `atexit`, `signal`, and `kill`
//! (resolved against the system libc at link time, exactly as the real
//! crate does).

#![allow(non_camel_case_types)]

/// C `char`.
pub type c_char = i8;
/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long`.
pub type c_long = i64;
/// C `unsigned long`.
pub type c_ulong = u64;
/// C `void` (opaque).
pub type c_void = core::ffi::c_void;
/// `mode_t`.
pub type mode_t = u32;
/// `off_t`.
pub type off_t = i64;
/// `size_t`.
pub type size_t = usize;
/// `ssize_t`.
pub type ssize_t = isize;
/// `dev_t`.
pub type dev_t = u64;
/// `ino_t`.
pub type ino_t = u64;
/// `nlink_t`.
pub type nlink_t = u64;
/// `uid_t`.
pub type uid_t = u32;
/// `gid_t`.
pub type gid_t = u32;
/// `blksize_t`.
pub type blksize_t = i64;
/// `blkcnt_t`.
pub type blkcnt_t = i64;
/// `time_t`.
pub type time_t = i64;
/// `pid_t`.
pub type pid_t = i32;
/// Signal-handler function pointer as an address (`sighandler_t`).
pub type sighandler_t = size_t;

/// Mask selecting the access mode bits of `open(2)` flags.
pub const O_ACCMODE: c_int = 0o3;
/// Open read-only.
pub const O_RDONLY: c_int = 0;
/// Open write-only.
pub const O_WRONLY: c_int = 1;
/// Open read-write.
pub const O_RDWR: c_int = 2;
/// Regular-file bit in `st_mode`.
pub const S_IFREG: mode_t = 0o100000;
/// File-type mask for `st_mode`.
pub const S_IFMT: mode_t = 0o170000;
/// `dlsym` pseudo-handle: resolve in the next object after the caller.
pub const RTLD_NEXT: *mut c_void = -1isize as *mut c_void;
/// errno: bad file descriptor.
pub const EBADF: c_int = 9;
/// errno: invalid argument.
pub const EINVAL: c_int = 22;
/// Signal: interactive interrupt (Ctrl-C).
pub const SIGINT: c_int = 2;
/// Signal: termination request.
pub const SIGTERM: c_int = 15;

/// `struct stat`, x86_64 linux-gnu layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct stat {
    /// Device ID.
    pub st_dev: dev_t,
    /// Inode number.
    pub st_ino: ino_t,
    /// Hard-link count.
    pub st_nlink: nlink_t,
    /// File type and permission bits.
    pub st_mode: mode_t,
    /// Owner UID.
    pub st_uid: uid_t,
    /// Owner GID.
    pub st_gid: gid_t,
    __pad0: c_int,
    /// Device ID for special files.
    pub st_rdev: dev_t,
    /// Size in bytes.
    pub st_size: off_t,
    /// Preferred I/O block size.
    pub st_blksize: blksize_t,
    /// Number of 512-byte blocks allocated.
    pub st_blocks: blkcnt_t,
    /// Access time (seconds).
    pub st_atime: time_t,
    /// Access time (nanoseconds).
    pub st_atime_nsec: c_long,
    /// Modification time (seconds).
    pub st_mtime: time_t,
    /// Modification time (nanoseconds).
    pub st_mtime_nsec: c_long,
    /// Status-change time (seconds).
    pub st_ctime: time_t,
    /// Status-change time (nanoseconds).
    pub st_ctime_nsec: c_long,
    __unused: [c_long; 3],
}

extern "C" {
    /// Resolve a symbol in a loaded object (see `dlsym(3)`).
    pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    /// Address of the calling thread's `errno`.
    pub fn __errno_location() -> *mut c_int;
    /// Register a function to run at process exit.
    pub fn atexit(cb: extern "C" fn()) -> c_int;
    /// Install a signal handler (see `signal(2)`).
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// Send a signal to a process (see `kill(2)`).
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::stat;

    #[test]
    fn stat_layout_matches_x86_64_linux_gnu() {
        assert_eq!(std::mem::size_of::<stat>(), 144);
        assert_eq!(std::mem::offset_of!(stat, st_mode), 24);
        assert_eq!(std::mem::offset_of!(stat, st_size), 48);
        assert_eq!(std::mem::offset_of!(stat, st_blocks), 64);
    }
}
