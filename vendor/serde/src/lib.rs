//! Offline stand-in for the `serde` crate.
//!
//! The HVAC workspace only *tags* types as serializable (derives with no
//! `#[serde(...)]` attributes and no serializer in the dependency tree),
//! so [`Serialize`] and [`Deserialize`] are marker traits here. The
//! `derive` feature re-exports the matching derive macros from the
//! in-repo `serde_derive` stub.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
