//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64) plus the [`Rng`]/[`SeedableRng`] trait surface the HVAC
//! workspace uses: `seed_from_u64` and `gen_range` over integer and float
//! ranges. Not cryptographically secure — simulation/eviction sampling only.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a value can be sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for the small spans used here.
                let off = rng.next_u64() % span;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom` (the subset the
    /// workspace uses).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0usize..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream but is stable per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use super::seq::SliceRandom;
        let base: Vec<u32> = (0..32).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base, "shuffle is a permutation");
        let mut c = base.clone();
        c.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
