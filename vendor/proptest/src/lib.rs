//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generation-side API the HVAC property tests use —
//! `proptest!`, `any`, range / string-pattern / tuple / collection
//! strategies, `prop_oneof!`, `Just`, `prop_map`, and the `prop_assert*`
//! macros — without shrinking. Failing cases report the failed assertion
//! and the run's seed; rerun with `PROPTEST_SEED=<seed>` to reproduce.
//! `PROPTEST_CASES` overrides the per-test case count (default 64).

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Wrap property functions: each `fn name(pat in strategy, ...) { body }`
/// becomes a zero-argument function (attributes such as `#[test]` are
/// re-emitted verbatim) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                runner.run(($($strat,)+), |($($parm,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert inside a property body; failure reports the generated case
/// instead of panicking through the closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two expressions compare equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert two expressions compare unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discard the current generated case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
