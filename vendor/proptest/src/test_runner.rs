//! Case loop: generate inputs, run the property, report failures with the
//! seed needed to reproduce them.

use crate::strategy::{Strategy, TestRng};
use std::hash::{BuildHasher, Hasher};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// Runs a property over many generated cases.
pub struct TestRunner {
    name: &'static str,
    cases: u32,
    seed: u64,
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl TestRunner {
    /// Configure from the environment: `PROPTEST_CASES` (default 64) and
    /// `PROPTEST_SEED` (default: fresh entropy, printed on failure).
    pub fn new(name: &'static str) -> Self {
        let cases = env_u64("PROPTEST_CASES").map(|n| n as u32).unwrap_or(64);
        let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| {
            // RandomState is the std library's per-process entropy source.
            std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish()
        });
        Self {
            name,
            cases: cases.max(1),
            seed,
        }
    }

    /// Run the property until `cases` cases pass. Panics on the first
    /// failing case, reporting the assertion message and the seed.
    pub fn run<S, F>(&mut self, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(self.seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.cases.saturating_mul(16).max(1024);
        while passed < self.cases {
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections ({rejected}) \
                             for {} passing cases (seed {})",
                            self.name, passed, self.seed
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {}: {}\n\
                         rerun with PROPTEST_SEED={} to reproduce",
                        self.name,
                        passed + 1,
                        msg,
                        self.seed
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn passing_property_completes() {
        let mut runner = TestRunner::new("smoke");
        runner.run((any::<u32>(),), |(v,)| {
            crate::prop_assert!(u64::from(v) <= u64::from(u32::MAX));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports() {
        let mut runner = TestRunner::new("fails");
        runner.run((any::<u32>(),), |(v,)| {
            crate::prop_assert!(v % 2 == 0, "odd value {v}");
            Ok(())
        });
    }

    #[test]
    fn assume_rejects_without_failing() {
        let mut runner = TestRunner::new("assume");
        runner.run((any::<u32>(),), |(v,)| {
            crate::prop_assume!(v % 2 == 0);
            crate::prop_assert!(v % 2 == 0);
            Ok(())
        });
    }
}
