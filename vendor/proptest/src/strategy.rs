//! Strategy trait and the combinators the workspace uses.
//!
//! A strategy here is just a generator: `generate(&self, rng)` produces a
//! value. There is no shrink tree; failures report the seed instead.

use std::ops::Range;

/// Deterministic xorshift-style generator used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction (seed 0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — small, fast, good enough for test-case generation.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// ---------------------------------------------------------------------------
// String-pattern strategies: a `&str` literal is interpreted as a miniature
// regex of literal characters and character classes, each optionally
// followed by `{m}`, `{m,n}`, `?`, `*`, or `+`. This covers every pattern
// the workspace tests use (e.g. `[a-z]{1,10}`, `[^\u{0}]{0,64}`, `[ -~]`).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Token {
    Literal(char),
    Class { negated: bool, members: Vec<char> },
}

#[derive(Debug, Clone)]
struct Piece {
    token: Token,
    min: u32,
    max: u32,
}

/// Compiled string pattern.
#[derive(Debug, Clone)]
pub struct StringPattern {
    pieces: Vec<Piece>,
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars>) -> char {
    match chars.next().expect("dangling escape in string strategy") {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        'u' => {
            assert_eq!(chars.next(), Some('{'), "expected {{ after \\u");
            let mut hex = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                hex.push(c);
            }
            let code = u32::from_str_radix(&hex, 16).expect("bad \\u{..} escape");
            char::from_u32(code).expect("invalid unicode escape")
        }
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Token {
    let negated = chars.peek() == Some(&'^');
    if negated {
        chars.next();
    }
    let mut raw: Vec<char> = Vec::new();
    loop {
        match chars.next().expect("unterminated character class") {
            ']' => break,
            '\\' => raw.push(parse_escape(chars)),
            c => raw.push(c),
        }
    }
    // Expand `a-z` ranges; a leading or trailing '-' is a literal.
    let mut members = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if i + 2 < raw.len() && raw[i + 1] == '-' {
            let (lo, hi) = (raw[i] as u32, raw[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            for code in lo..=hi {
                if let Some(c) = char::from_u32(code) {
                    members.push(c);
                }
            }
            i += 3;
        } else {
            members.push(raw[i]);
            i += 1;
        }
    }
    Token::Class { negated, members }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

impl StringPattern {
    /// Compile a pattern; panics on constructs outside the mini-grammar.
    pub fn compile(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let token = match c {
                '[' => parse_class(&mut chars),
                '\\' => Token::Literal(parse_escape(&mut chars)),
                '.' => Token::Class {
                    negated: true,
                    members: vec!['\n'],
                },
                other => Token::Literal(other),
            };
            let (min, max) = parse_quantifier(&mut chars);
            assert!(min <= max, "inverted quantifier in string strategy");
            pieces.push(Piece { token, min, max });
        }
        Self { pieces }
    }
}

/// Pool sampled from for negated classes: printable ASCII plus a few
/// multibyte characters so `[^\u{0}]` exercises non-ASCII content too.
fn negated_pool() -> impl Iterator<Item = char> {
    (' '..='~').chain(['\u{e9}', '\u{4e2d}', '\u{1f600}', '\t', '\n'])
}

impl Strategy for StringPattern {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let span = (piece.max - piece.min + 1) as u64;
            let count = piece.min + rng.below(span) as u32;
            for _ in 0..count {
                match &piece.token {
                    Token::Literal(c) => out.push(*c),
                    Token::Class { negated, members } => {
                        if *negated {
                            let pool: Vec<char> =
                                negated_pool().filter(|c| !members.contains(c)).collect();
                            assert!(!pool.is_empty(), "negated class excludes whole pool");
                            out.push(pool[rng.below(pool.len() as u64) as usize]);
                        } else {
                            assert!(!members.is_empty(), "empty character class");
                            out.push(members[rng.below(members.len() as u64) as usize]);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringPattern::compile(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation_respects_classes() {
        let mut rng = TestRng::new(123);
        for _ in 0..200 {
            let s = "[a-z]{1,10}/[a-z]{1,10}".generate(&mut rng);
            let (a, b) = s.split_once('/').expect("separator present");
            assert!((1..=10).contains(&a.chars().count()));
            assert!((1..=10).contains(&b.chars().count()));
            assert!(a.chars().all(|c| c.is_ascii_lowercase()));
            assert!(b.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[^\u{0}]{0,64}".generate(&mut rng);
            assert!(!s.contains('\0'));
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn printable_range_class() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let s = "[ -~]{0,80}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::new(1);
        let strat = crate::prop_oneof![Just(1u32), (2u32..5).prop_map(|v| v * 10)];
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..50).contains(&v));
        }
    }
}
