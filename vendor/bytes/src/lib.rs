//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API that the HVAC workspace
//! uses: cheaply-cloneable [`Bytes`] slices over shared storage, a growable
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor traits. Slicing
//! is zero-copy (slices share the same backing allocation), matching the
//! aliasing guarantees the real crate provides and that `hvac-net::bulk`
//! asserts on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`]: either a plain shared slice or an
/// arbitrary owner whose `Drop` runs when the last clone goes away (the
/// `from_owner` contract — buffer pools hook slab reclamation there).
trait Storage: Send + Sync {
    fn storage_slice(&self) -> &[u8];
}

struct OwnedStorage<T>(T);

impl<T: AsRef<[u8]> + Send + Sync> Storage for OwnedStorage<T> {
    fn storage_slice(&self) -> &[u8] {
        self.0.as_ref()
    }
}

#[derive(Clone)]
enum Repr {
    Slice(Arc<[u8]>),
    Owner(Arc<dyn Storage>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Slice(a) => a,
            Repr::Owner(o) => o.storage_slice(),
        }
    }
}

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    buf: Repr,
    off: usize,
    len: usize,
}

fn empty_arc() -> Repr {
    static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
    Repr::Slice(EMPTY.get_or_init(|| Arc::from(&[][..])).clone())
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self {
            buf: empty_arc(),
            off: 0,
            len: 0,
        }
    }

    /// A `Bytes` backed by a static slice (copied into shared storage; the
    /// real crate borrows, but callers only rely on value semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// A `Bytes` that borrows its contents from `owner` without copying and
    /// drops `owner` when the last clone goes away (the `bytes` ≥ 1.9
    /// `from_owner` API). The owner's `Drop` is the reclamation hook:
    /// `hvac-net`'s buffer pool returns its slab to the free list there.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Self {
            buf: Repr::Owner(Arc::new(OwnedStorage(owner))),
            off: 0,
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy subslice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Self {
            buf: self.buf.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split_to out of bounds");
        let head = self.slice(0..at);
        self.off += at;
        self.len -= at;
        head
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf.as_slice()[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len > 64 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            buf: Repr::Slice(Arc::from(v.into_boxed_slice())),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source (little-endian helpers only; that is all
/// the HVAC wire codec uses).
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;
    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte. Panics if empty (callers bounds-check first).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(a)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance out of bounds");
        self.off += cnt;
        self.len -= cnt;
    }
}

/// Write cursor appending to a byte sink (little-endian helpers only).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) });
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn from_owner_drops_owner_with_last_clone() {
        struct Tracked(Vec<u8>, Arc<std::sync::atomic::AtomicBool>);
        impl AsRef<[u8]> for Tracked {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.1.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let b = Bytes::from_owner(Tracked(vec![9u8, 8, 7], dropped.clone()));
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[8, 7]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) }, "no copy");
        drop(b);
        assert!(
            !dropped.load(std::sync::atomic::Ordering::SeqCst),
            "a live slice keeps the owner alive"
        );
        drop(s);
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn buf_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(42);
        m.put_i64_le(-1);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_i64_le(), -1);
        assert_eq!(b.remaining(), 0);
    }
}
