//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only the `channel` module with MPMC semantics (cloneable
//! receivers), which is what the HVAC fabric and data movers use. Backed
//! by `Mutex<VecDeque>` + `Condvar`; capacity bounds are advisory (the
//! workspace only uses `bounded(1)` as a oneshot reply slot, so senders
//! never block on capacity here).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<State<T>>,
        cond: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    fn lock<'a, T>(m: &'a Mutex<State<T>>) -> std::sync::MutexGuard<'a, State<T>> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// Timed out with the channel still connected.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("timed out waiting on channel"),
                Self::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Empty => f.write_str("channel is empty"),
                Self::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared.inner);
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared.inner).senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared.inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .cond
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block until a message arrives, every sender is dropped, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.shared.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                st = guard;
            }
        }

        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.shared.inner);
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared.inner).receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared.inner).receivers -= 1;
        }
    }

    fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel()
    }

    /// A "bounded" MPMC channel. The capacity bound is not enforced — the
    /// workspace only uses `bounded(1)` as a single-reply slot.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let h1 = std::thread::spawn(move || rx.recv().unwrap());
            let h2 = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let mut got = vec![h1.join().unwrap(), h2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn disconnect_surfaces() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
