//! Offline stand-in for `serde_derive`.
//!
//! The in-repo `serde` stub defines `Serialize`/`Deserialize` as marker
//! traits, so these derives only need to locate the type name after the
//! `struct`/`enum` keyword and emit an empty impl. Sufficient because the
//! workspace derives exclusively on non-generic items with no
//! `#[serde(...)]` attributes.

use proc_macro::{TokenStream, TokenTree};

fn target_ident(input: &TokenStream) -> String {
    let mut iter = input.clone().into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find struct/enum name in derive input");
}

/// Derive the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = target_ident(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Derive the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = target_ident(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}
