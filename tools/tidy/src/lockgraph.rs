//! Check 7: static lock-graph verification (`cargo run -p tidy -- lockgraph`).
//!
//! A lightweight scope-tracking scanner over the workspace sources that
//! turns the lock-hierarchy prose into hard failures:
//!
//! 1. **Class resolution.** Every `OrderedMutex::new` / `OrderedRwLock::new`
//!    site must name a `hvac_sync::classes` constant. String-literal
//!    classes are allowed only under the `test.` / `example.` prefixes
//!    (unit tests, doctests); anything else is an ad-hoc class that the
//!    runtime checker would happily order but no human placed in the
//!    hierarchy.
//! 2. **Static acquisition edges.** Guard live ranges are tracked per
//!    brace scope (`.lock()`/`.read()`/`.write()`/`.try_lock()` through
//!    `drop()` or end of scope); acquiring class `B` while a class-`A`
//!    guard is live records static edge `A → B`. Every edge must be legal
//!    under [`hvac_sync::classes::HIERARCHY`] — strictly outer level to
//!    inner level, never touching a [`hvac_sync::classes::LEAVES`] class —
//!    and a violation reports the file:line of *both* acquisitions.
//! 3. **Blocking boundaries.** RPC calls (`.call(`/`.call_with_deadline(`),
//!    channel receives, thread `join`/`spawn`, and `sleep` are flagged
//!    while a `VIEW`, inflight-stripe, or store-shard guard is live —
//!    the doc-only "never held across an RPC" invariants, machine-checked.
//!
//! The scanner is textual and intentionally conservative. Two annotation
//! forms extend the model where text alone cannot (they are model
//! declarations, not suppressions — there is no ignore escape hatch):
//!
//! - `// lockgraph: <name> -> <CONST>` binds receiver `<name>` to a class
//!   for the current file (e.g. a guard-returning helper method).
//! - `// lockgraph: acquires <CONST>` marks a call that acquires the class
//!   internally, so cross-function holds still contribute edges.
//!
//! Approximations, all in the safe direction (static ⊇ observed): a `let`
//! binding whose initializer takes a lock is assumed to keep the guard for
//! the whole scope even if a chained call releases it immediately;
//! closure bodies are scanned inline, so guards live at a `spawn` site
//! pair with the closure's acquisitions; a guard returned from a bare
//! `match` expression is treated as released at end of line (callers
//! rebind it by name, which re-enters tracking).

use crate::scan::{non_test_lines, SourceFile};
use crate::Violation;
use hvac_sync::classes;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Pinned location of the canonical class table. Moving the module
/// requires updating this constant — tidy errors otherwise.
pub const CLASSES_MODULE: &str = "crates/hvac-sync/src/classes.rs";

/// Classes whose guards must never be held across a blocking boundary.
fn no_block_classes() -> [&'static str; 3] {
    [
        classes::VIEW,
        classes::SERVER_INFLIGHT_STRIPE,
        classes::STORE_SHARD,
    ]
}

/// Tokens that can park the calling thread. Matched on comment- and
/// string-blanked code, so prose mentions never trip the lint. `.call(`
/// and `.call_with_deadline(` are the fabric RPC entry points; `.recv()` /
/// `.recv_timeout(` are channel waits; `.join()` / `spawn(` are thread
/// lifecycle; `sleep(` covers backoff loops.
const BLOCKING_TOKENS: &[&str] = &[
    ".call_with_deadline(",
    ".call(",
    ".recv()",
    ".recv_timeout(",
    ".join()",
    "::spawn(",
    ".spawn(",
    "sleep(",
];

/// Empty-argument acquisition tokens, longest first so `.try_lock()` wins
/// over `.lock(`.
const ACQUIRE_TOKENS: &[&str] = &[".try_lock()", ".lock()", ".read()", ".write()"];

/// The two constructor patterns resolved by the class lint.
const CONSTRUCTORS: &[&str] = &["OrderedMutex::new(", "OrderedRwLock::new("];

/// Canonical class table: `pub const` ident → label, parsed from
/// [`CLASSES_MODULE`] and cross-checked against the compiled-in
/// [`classes::HIERARCHY`] / [`classes::LEAVES`] placement data.
#[derive(Debug, Default)]
pub struct ClassTable {
    consts: BTreeMap<String, String>,
}

impl ClassTable {
    /// Parse the class table out of the collected sources.
    pub fn build(files: &[SourceFile]) -> (Self, Vec<Violation>) {
        let mut table = Self::default();
        let mut violations = Vec::new();
        let Some(file) = files
            .iter()
            .find(|f| f.rel_path == Path::new(CLASSES_MODULE))
        else {
            violations.push(Violation {
                path: PathBuf::from(CLASSES_MODULE),
                line: 0,
                message: "canonical class module is missing; if it moved, update \
                          lockgraph::CLASSES_MODULE in tools/tidy"
                    .into(),
            });
            return (table, violations);
        };
        for (idx, line) in file.lines() {
            let t = line.trim_start();
            let Some(rest) = t.strip_prefix("pub const ") else {
                continue;
            };
            let Some((name, rest)) = rest.split_once(':') else {
                continue;
            };
            // Only plain `&str` labels; HIERARCHY/LEAVES have slice types.
            if !rest.trim_start().starts_with("&str") {
                continue;
            }
            let Some((_, value)) = rest.split_once('=') else {
                continue;
            };
            let Some(label) = value
                .trim()
                .strip_prefix('"')
                .and_then(|v| v.find('"').map(|end| &v[..end]))
            else {
                continue;
            };
            let name = name.trim().to_string();
            if classes::level_of(label).is_none() && !classes::LEAVES.contains(&label) {
                violations.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx,
                    message: format!(
                        "class {name} (\"{label}\") is not placed in classes::HIERARCHY \
                         or classes::LEAVES; every class needs exactly one placement"
                    ),
                });
            }
            if table
                .consts
                .insert(name.clone(), label.to_string())
                .is_some()
            {
                violations.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx,
                    message: format!("duplicate class constant {name}"),
                });
            }
        }
        (table, violations)
    }

    /// Label of a class constant by ident, if declared.
    pub fn label_of(&self, const_name: &str) -> Option<&str> {
        self.consts.get(const_name).map(String::as_str)
    }

    /// All `(const ident, label)` pairs, sorted by ident.
    pub fn consts(&self) -> &BTreeMap<String, String> {
        &self.consts
    }
}

/// One resolved acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// Class label acquired.
    pub class: String,
    /// Workspace-relative file.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
}

/// One static class-acquisition edge: `outer` was live when `inner` was
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// The guard that was already held.
    pub outer: Acquisition,
    /// The acquisition made under it.
    pub inner: Acquisition,
}

/// Full result of a lockgraph run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every edge event with both sites (one entry per acquisition pair).
    pub edges: Vec<Edge>,
    /// Resolved acquisition-site count per class label.
    pub class_sites: BTreeMap<String, usize>,
    /// Lint failures: ad-hoc classes, unresolved receivers, hierarchy
    /// contradictions, guards across blocking boundaries.
    pub violations: Vec<Violation>,
}

impl Analysis {
    /// Deduplicated `(outer, inner)` class pairs.
    pub fn edge_pairs(&self) -> BTreeSet<(String, String)> {
        self.edges
            .iter()
            .map(|e| (e.outer.class.clone(), e.inner.class.clone()))
            .collect()
    }
}

/// Whether a file participates in guard live-range tracking: first-party
/// library sources (`crates/*/src`), except `hvac-sync` itself (it
/// implements the wrappers over raw std locks).
fn guard_scan_scope(rel: &Path) -> bool {
    rel.starts_with("crates")
        && !rel.starts_with("crates/hvac-sync")
        && rel.iter().any(|c| c == "src")
}

/// Whether ad-hoc (non-`classes::`) constructor arguments are tolerated:
/// test/bench/example trees construct throwaway locks from variables.
fn is_testish(rel: &Path) -> bool {
    rel.iter()
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Run the whole pass over already-collected sources.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let (table, mut violations) = ClassTable::build(files);
    let mut edges = Vec::new();
    let mut class_sites: BTreeMap<String, usize> = BTreeMap::new();
    for file in files {
        if file.rel_path.starts_with(crate::SELF_EXEMPT) {
            continue;
        }
        let names = resolve_names(file, &table, &mut violations);
        if guard_scan_scope(&file.rel_path) {
            extract_file(
                file,
                &names,
                &table,
                &mut edges,
                &mut class_sites,
                &mut violations,
            );
        }
    }
    for edge in &edges {
        if let Some(v) = check_edge_against_hierarchy(edge) {
            violations.push(v);
        }
    }
    Analysis {
        edges,
        class_sites,
        violations,
    }
}

/// Collect the workspace and run [`analyze`].
pub fn analyze_workspace(root: &Path) -> Analysis {
    analyze(&crate::collect_sources(root))
}

/// Hierarchy legality of one edge, with both sites in the message.
fn check_edge_against_hierarchy(edge: &Edge) -> Option<Violation> {
    let (outer, inner) = (&edge.outer, &edge.inner);
    if classes::edge_allowed(&outer.class, &inner.class) {
        return None;
    }
    let reason = if classes::LEAVES.contains(&outer.class.as_str())
        || classes::LEAVES.contains(&inner.class.as_str())
    {
        "leaf classes never nest"
    } else if classes::level_of(&outer.class) == classes::level_of(&inner.class) {
        "same hierarchy level never nests"
    } else {
        "the hierarchy orders them the other way"
    };
    Some(Violation {
        path: inner.path.clone(),
        line: inner.line,
        message: format!(
            "lock-order violation: acquiring '{}' while holding '{}' (acquired at \
             {}:{}) contradicts classes::HIERARCHY — {reason}",
            inner.class,
            outer.class,
            outer.path.display(),
            outer.line,
        ),
    })
}

/// Per-file receiver-name → class-label resolution, plus the constructor
/// lints (ad-hoc literals, unknown constants, unresolvable bindings).
fn resolve_names(
    file: &SourceFile,
    table: &ClassTable,
    violations: &mut Vec<Violation>,
) -> BTreeMap<String, String> {
    let mut names = BTreeMap::new();
    let lines: Vec<&str> = file.text.lines().collect();
    let mask = non_test_lines(&file.text);
    let testish = is_testish(&file.rel_path);
    for (idx0, raw) in lines.iter().enumerate() {
        // Annotation form 1: `// lockgraph: <name> -> <CONST>`.
        if let Some(directive) = annotation(raw) {
            if let Some((name, const_name)) = directive.split_once("->") {
                let (name, const_name) = (name.trim(), const_name.trim());
                match table.label_of(const_name) {
                    Some(label) => {
                        names.insert(name.to_string(), label.to_string());
                    }
                    None => violations.push(Violation {
                        path: file.rel_path.clone(),
                        line: idx0 + 1,
                        message: format!(
                            "lockgraph annotation names unknown class constant {const_name}"
                        ),
                    }),
                }
            }
        }
        for pat in CONSTRUCTORS {
            let mut search = 0;
            while let Some(rel) = raw[search..].find(pat) {
                let at = search + rel;
                search = at + pat.len();
                let arg = raw[at + pat.len()..].trim_start();
                if let Some(lit) = arg.strip_prefix('"') {
                    let Some(end) = lit.find('"') else { continue };
                    let lit = &lit[..end];
                    if !lit.starts_with("test.") && !lit.starts_with("example.") {
                        violations.push(Violation {
                            path: file.rel_path.clone(),
                            line: idx0 + 1,
                            message: format!(
                                "ad-hoc lock class \"{lit}\"; first-party locks must \
                                 use a hvac_sync::classes constant (tests and doc \
                                 examples may use `test.` / `example.` labels)"
                            ),
                        });
                    }
                } else if let Some(const_name) = classes_const_in(arg) {
                    let Some(label) = table.label_of(&const_name) else {
                        violations.push(Violation {
                            path: file.rel_path.clone(),
                            line: idx0 + 1,
                            message: format!(
                                "unknown class constant classes::{const_name}; declare \
                                 it in {CLASSES_MODULE} and place it in HIERARCHY"
                            ),
                        });
                        continue;
                    };
                    match binder_for(&lines, idx0, at) {
                        Some(binder) => {
                            names.insert(binder, label.to_string());
                        }
                        None if guard_scan_scope(&file.rel_path) => {
                            violations.push(Violation {
                                path: file.rel_path.clone(),
                                line: idx0 + 1,
                                message: format!(
                                    "cannot determine the binding holding this lock; \
                                     add `// lockgraph: <name> -> {const_name}`"
                                ),
                            });
                        }
                        None => {}
                    }
                } else {
                    // Variable / expression class: only test trees may.
                    let in_test_code = testish || !mask.get(idx0).copied().unwrap_or(true);
                    if !in_test_code {
                        violations.push(Violation {
                            path: file.rel_path.clone(),
                            line: idx0 + 1,
                            message: "lock class must be a hvac_sync::classes constant \
                                      (or a `test.`/`example.` literal in test code)"
                                .into(),
                        });
                    }
                }
            }
        }
    }
    names
}

/// The directive text after `// lockgraph:`, if the line carries one.
fn annotation(raw: &str) -> Option<&str> {
    raw.split("// lockgraph:").nth(1).map(str::trim)
}

/// Extract `classes::CONST` (optionally `hvac_sync::classes::CONST`) from
/// the head of a constructor argument list.
fn classes_const_in(arg: &str) -> Option<String> {
    let head = arg.split([',', ')']).next()?;
    let pos = head.find("classes::")?;
    let ident: String = head[pos + "classes::".len()..]
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// Binder of a constructor: same-line `let x =` / struct-field `x:`
/// prefix, else up to three preceding lines (builder chains like
/// `let shards = (0..n)` / `.map(|_| OrderedRwLock::new(...))`).
fn binder_for(lines: &[&str], idx0: usize, col: usize) -> Option<String> {
    if let Some(b) = binder_in_prefix(&lines[idx0][..col]) {
        return Some(b);
    }
    for back in 1..=3 {
        let line = lines.get(idx0.checked_sub(back)?)?;
        if let Some(b) = binder_in_line(line) {
            return Some(b);
        }
    }
    None
}

/// Binder from the text left of an expression: `... let [mut] NAME =` or
/// struct-field `NAME:`.
fn binder_in_prefix(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    if let Some(t) = t.strip_suffix('=') {
        return last_ident(t);
    }
    if let Some(t) = t.strip_suffix(':') {
        return last_ident(t);
    }
    None
}

/// Binder when a whole line introduces one: `let [mut] NAME ...` or a
/// struct-field line `NAME: ...`.
fn binder_in_line(line: &str) -> Option<String> {
    let t = line.trim();
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        return leading_ident(rest);
    }
    let id = leading_ident(t)?;
    t[id.len()..].trim_start().starts_with(':').then_some(id)
}

fn last_ident(text: &str) -> Option<String> {
    let end = text.rfind(|c: char| c.is_alphanumeric() || c == '_')? + 1;
    let start = text[..end]
        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
        .map_or(0, |p| p + 1);
    let id = &text[start..end];
    (!id.is_empty() && !id.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| id.to_string())
}

fn leading_ident(text: &str) -> Option<String> {
    let id: String = text
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!id.is_empty()).then_some(id)
}

/// Blank string/char-literal contents, line comments, and block comments
/// with spaces, preserving length and newlines, so brace counting and
/// token matching never see prose.
pub fn blank_noncode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = vec![0u8; 0];
    out.reserve(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment: blank through `*/`, keeping newlines.
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        out.extend_from_slice(b"  ");
                        i += 2;
                        break;
                    }
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'"' => {
                // String literal: keep the quotes, blank the contents.
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal (`'x'`, `'\n'`) vs lifetime (`'a`): a
                // closing quote within a few bytes means char literal.
                let lit_len =
                    if bytes.get(i + 1) == Some(&b'\\') && bytes.get(i + 3) == Some(&b'\'') {
                        Some(4)
                    } else if bytes.get(i + 1).is_some() && bytes.get(i + 2) == Some(&b'\'') {
                        Some(3)
                    } else {
                        None
                    };
                match lit_len {
                    Some(n) => {
                        out.push(b'\'');
                        out.extend(std::iter::repeat_n(b' ', n - 2));
                        out.push(b'\'');
                        i += n;
                    }
                    None => {
                        out.push(b'\'');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    out.truncate(bytes.len());
    String::from_utf8(out).unwrap_or_else(|_| text.to_string())
}

/// One tracked guard.
#[derive(Debug)]
struct LiveGuard {
    /// `let` binding name, or `None` for a statement temporary.
    binding: Option<String>,
    class: String,
    line: usize,
}

/// Scan one file's guard live ranges, recording edges, resolved-site
/// counts, and blocking-boundary violations.
fn extract_file(
    file: &SourceFile,
    names: &BTreeMap<String, String>,
    table: &ClassTable,
    edges: &mut Vec<Edge>,
    class_sites: &mut BTreeMap<String, usize>,
    violations: &mut Vec<Violation>,
) {
    let blanked = blank_noncode(&file.text);
    let raw_lines: Vec<&str> = file.text.lines().collect();
    let code_lines: Vec<&str> = blanked.lines().collect();
    let mask = non_test_lines(&file.text);
    let mut scopes: Vec<Vec<LiveGuard>> = vec![Vec::new()];
    let no_block = no_block_classes();
    // Byte offset of each line start within `blanked`, for receiver
    // resolution across rustfmt-wrapped method chains.
    let mut line_starts = Vec::with_capacity(code_lines.len());
    let mut offset = 0;
    for line in &code_lines {
        line_starts.push(offset);
        offset += line.len() + 1;
    }

    for (idx0, code) in code_lines.iter().enumerate() {
        if !mask.get(idx0).copied().unwrap_or(true) {
            continue;
        }
        let lineno = idx0 + 1;
        let line_start = line_starts[idx0];
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    scopes.push(Vec::new());
                    i += 1;
                    continue;
                }
                b'}' => {
                    if scopes.len() > 1 {
                        scopes.pop();
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if let Some(tok) = ACQUIRE_TOKENS.iter().find(|t| code[i..].starts_with(**t)) {
                handle_acquisition(
                    file,
                    names,
                    &blanked,
                    line_start + i,
                    lineno,
                    &mut scopes,
                    edges,
                    class_sites,
                    violations,
                );
                i += tok.len();
                continue;
            }
            // Guard-returning helpers with arguments (`inflight.lock(idx,
            // m)`): only when the receiver is already mapped to a class.
            if code[i..].starts_with(".lock(") && !code[i..].starts_with(".lock()") {
                let recv = receiver_before(&blanked, line_start + i);
                if recv
                    .as_deref()
                    .and_then(|r| resolve_receiver(r, names))
                    .is_some()
                {
                    handle_acquisition(
                        file,
                        names,
                        &blanked,
                        line_start + i,
                        lineno,
                        &mut scopes,
                        edges,
                        class_sites,
                        violations,
                    );
                }
                i += ".lock(".len();
                continue;
            }
            if code[i..].starts_with("drop(") && !prev_is_ident(bytes, i) {
                let inner = code[i + "drop(".len()..]
                    .split(')')
                    .next()
                    .unwrap_or("")
                    .trim();
                if let Some((si, gi)) = find_binding(&scopes, inner) {
                    scopes[si].remove(gi);
                }
                i += "drop(".len();
                continue;
            }
            if let Some(tok) = BLOCKING_TOKENS.iter().find(|t| code[i..].starts_with(**t)) {
                for guard in scopes.iter().flatten() {
                    if no_block.contains(&guard.class.as_str()) {
                        violations.push(Violation {
                            path: file.rel_path.clone(),
                            line: lineno,
                            message: format!(
                                "blocking call `{}` while holding '{}' (acquired at \
                                 {}:{}); release the guard before blocking — see \
                                 DESIGN.md §Static lock-graph verification",
                                tok.trim_matches(['.', ':', '(']),
                                guard.class,
                                file.rel_path.display(),
                                guard.line,
                            ),
                        });
                    }
                }
                i += tok.len();
                continue;
            }
            i += 1;
        }
        // Statement temporaries die at end of line.
        for scope in scopes.iter_mut() {
            scope.retain(|g| g.binding.is_some() || g.line != lineno);
        }
        // Annotation form 2: `// lockgraph: acquires <CONST>` — a call on
        // this line acquires the class internally (cross-function hold).
        if let Some(directive) = raw_lines.get(idx0).and_then(|r| annotation(r)) {
            if let Some(const_name) = directive.strip_prefix("acquires ") {
                match table.label_of(const_name.trim()) {
                    Some(label) => {
                        record_acquire(file, label, lineno, &scopes, edges, class_sites);
                    }
                    None => violations.push(Violation {
                        path: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "lockgraph annotation names unknown class constant {const_name}"
                        ),
                    }),
                }
            }
        }
    }
}

/// Record one resolved acquisition: edges from every live guard of a
/// different class, plus the per-class site count.
fn record_acquire(
    file: &SourceFile,
    class: &str,
    lineno: usize,
    scopes: &[Vec<LiveGuard>],
    edges: &mut Vec<Edge>,
    class_sites: &mut BTreeMap<String, usize>,
) {
    *class_sites.entry(class.to_string()).or_default() += 1;
    for guard in scopes.iter().flatten() {
        if guard.class != class {
            edges.push(Edge {
                outer: Acquisition {
                    class: guard.class.clone(),
                    path: file.rel_path.clone(),
                    line: guard.line,
                },
                inner: Acquisition {
                    class: class.to_string(),
                    path: file.rel_path.clone(),
                    line: lineno,
                },
            });
        }
    }
}

/// Resolve and register one textual acquisition at byte `at` of `code`.
#[allow(clippy::too_many_arguments)]
fn handle_acquisition(
    file: &SourceFile,
    names: &BTreeMap<String, String>,
    blanked: &str,
    at: usize,
    lineno: usize,
    scopes: &mut [Vec<LiveGuard>],
    edges: &mut Vec<Edge>,
    class_sites: &mut BTreeMap<String, usize>,
    violations: &mut Vec<Violation>,
) {
    let Some(recv) = receiver_before(blanked, at) else {
        violations.push(Violation {
            path: file.rel_path.clone(),
            line: lineno,
            message: "cannot parse the receiver of this lock acquisition".into(),
        });
        return;
    };
    let Some(class) = resolve_receiver(&recv, names) else {
        violations.push(Violation {
            path: file.rel_path.clone(),
            line: lineno,
            message: format!(
                "cannot resolve lock receiver `{recv}` to a class; construct it \
                 from a hvac_sync::classes constant in this file or add \
                 `// lockgraph: {recv} -> <CONST>`"
            ),
        });
        return;
    };
    record_acquire(file, &class, lineno, scopes, edges, class_sites);
    // Binder, if any, sits left of the receiver on the line where the
    // (possibly wrapped) receiver chain begins.
    let recv_start = receiver_span_start(blanked, at);
    let prefix = &blanked[..recv_start];
    let prefix_line = prefix.rsplit('\n').next().unwrap_or(prefix);
    let binding = binder_in_prefix(prefix_line);
    let guard = LiveGuard {
        binding,
        class,
        line: lineno,
    };
    scopes
        .last_mut()
        .expect("scope stack is never empty")
        .push(guard);
}

/// Start byte of the receiver chain ending at `at` in the blanked buffer.
/// Walks backwards over idents, `.`, and `[..]` index groups, and crosses
/// whitespace (including newlines) only where it joins a rustfmt-wrapped
/// method chain — `self\n    .fds\n    .lock()` resolves like
/// `self.fds.lock()`.
fn receiver_span_start(text: &str, at: usize) -> usize {
    let bytes = text.as_bytes();
    let mut j = at;
    loop {
        // Whitespace run before the current span start?
        let mut k = j;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k < j {
            // Cross it only when the span so far is chain-shaped (empty —
            // the token itself starts with `.` — or beginning with `.`)
            // and the far side continues a chain.
            let span_ok = j == at || bytes.get(j).copied() == Some(b'.');
            let prev_ok = k > 0
                && (bytes[k - 1].is_ascii_alphanumeric()
                    || bytes[k - 1] == b'_'
                    || bytes[k - 1] == b']');
            if span_ok && prev_ok {
                j = k;
            } else {
                break;
            }
        }
        if j == 0 {
            break;
        }
        let c = bytes[j - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            j -= 1;
        } else if c == b']' {
            // Skip an index expression to its matching bracket.
            let mut depth = 0usize;
            while j > 0 {
                match bytes[j - 1] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
        } else {
            break;
        }
    }
    j
}

/// The dotted receiver chain textually before byte `at`, index
/// expressions and wrapping whitespace stripped
/// (`self.stripes[idx]` → `self.stripes`).
fn receiver_before(text: &str, at: usize) -> Option<String> {
    let span = &text[receiver_span_start(text, at)..at];
    let mut cleaned = String::with_capacity(span.len());
    let mut depth = 0usize;
    for c in span.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 && !c.is_whitespace() => cleaned.push(c),
            _ => {}
        }
    }
    let cleaned = cleaned.trim_matches('.').to_string();
    (!cleaned.is_empty()).then_some(cleaned)
}

/// Map a receiver chain to a class: try the chain minus `self.`, its last
/// segment, then the last segment pluralized (`shard` → the `shards`
/// collection it was iterated out of).
fn resolve_receiver(recv: &str, names: &BTreeMap<String, String>) -> Option<String> {
    let chain = recv.strip_prefix("self.").unwrap_or(recv);
    if let Some(c) = names.get(chain) {
        return Some(c.clone());
    }
    let last = chain.rsplit('.').next()?;
    if let Some(c) = names.get(last) {
        return Some(c.clone());
    }
    names.get(&format!("{last}s")).cloned()
}

fn prev_is_ident(bytes: &[u8], at: usize) -> bool {
    at > 0
        && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_' || bytes[at - 1] == b'.')
}

/// Locate the most recently registered live guard bound to `name`.
fn find_binding(scopes: &[Vec<LiveGuard>], name: &str) -> Option<(usize, usize)> {
    if name.is_empty() {
        return None;
    }
    for (si, scope) in scopes.iter().enumerate().rev() {
        for (gi, guard) in scope.iter().enumerate().rev() {
            if guard.binding.as_deref() == Some(name) {
                return Some((si, gi));
            }
        }
    }
    None
}

/// Render the analysis as the `tidy lockgraph` dump: hierarchy levels,
/// per-class site counts, and the deduplicated edge set with one witness
/// site pair each.
pub fn render(analysis: &Analysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# HVAC static lock graph (tidy lockgraph)");
    let _ = writeln!(out, "# declared hierarchy, outermost first");
    for (level, (name, labels)) in classes::HIERARCHY.iter().enumerate() {
        let _ = writeln!(out, "level {level} ({name}): {}", labels.join(", "));
    }
    let _ = writeln!(out, "leaves (never nest): {}", classes::LEAVES.join(", "));
    let _ = writeln!(out, "# resolved acquisition sites per class");
    for (class, count) in &analysis.class_sites {
        let _ = writeln!(out, "class {class}: {count} site(s)");
    }
    let _ = writeln!(out, "# static edges (outer -> inner)");
    let mut witnesses: BTreeMap<(String, String), (usize, &Edge)> = BTreeMap::new();
    for edge in &analysis.edges {
        let key = (edge.outer.class.clone(), edge.inner.class.clone());
        let entry = witnesses.entry(key).or_insert((0, edge));
        entry.0 += 1;
    }
    for ((outer, inner), (count, witness)) in &witnesses {
        let _ = writeln!(out, "edge {outer} -> {inner} [{count} site pair(s)]");
        let _ = writeln!(
            out,
            "  witness outer {}:{} inner {}:{}",
            witness.outer.path.display(),
            witness.outer.line,
            witness.inner.path.display(),
            witness.inner.line,
        );
    }
    let _ = writeln!(
        out,
        "# {} class(es) with sites, {} distinct edge(s), {} violation(s)",
        analysis.class_sites.len(),
        witnesses.len(),
        analysis.violations.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal stand-in for the canonical class module: real labels (so
    /// the compiled-in HIERARCHY placement accepts them) under the pinned
    /// path.
    fn classes_fixture() -> SourceFile {
        SourceFile::new(
            PathBuf::from(CLASSES_MODULE),
            concat!(
                "//! doc\n",
                "pub const VIEW: &str = \"core.view\";\n",
                "pub const SERVER_INFLIGHT_STRIPE: &str = \"core.server.inflight_stripe\";\n",
                "pub const CACHE_POLICY: &str = \"core.cache.policy\";\n",
                "pub const STORE_SHARD: &str = \"storage.localstore.shard\";\n",
                "pub const CLIENT_FDS: &str = \"core.client.fds\";\n",
            )
            .to_string(),
        )
    }

    fn src(path: &str, body: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), body.to_string())
    }

    fn run(files: Vec<SourceFile>) -> Analysis {
        let mut all = vec![classes_fixture()];
        all.extend(files);
        analyze(&all)
    }

    #[test]
    fn class_table_parses_and_places() {
        let (table, violations) = ClassTable::build(&[classes_fixture()]);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(table.label_of("VIEW"), Some("core.view"));
        assert_eq!(table.label_of("NOPE"), None);
    }

    #[test]
    fn unplaced_class_is_flagged() {
        let mut fixture = classes_fixture();
        fixture
            .text
            .push_str("pub const ROGUE: &str = \"core.rogue\";\n");
        let (_, violations) = ClassTable::build(&[fixture]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("not placed"));
        assert_eq!(violations[0].line, 7);
    }

    /// Seeded violation 1: a reversed acquisition (store shard held while
    /// taking the cache policy) fails with both file:line sites.
    #[test]
    fn seeded_reversed_acquisition_fails() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    struct S {\n\
                    \x20   shard: OrderedMutex<u32>,\n\
                    \x20   policy: OrderedMutex<u32>,\n\
                    }\n\
                    fn build() -> S {\n\
                    \x20   S {\n\
                    \x20       shard: OrderedMutex::new(classes::STORE_SHARD, 0),\n\
                    \x20       policy: OrderedMutex::new(classes::CACHE_POLICY, 0),\n\
                    \x20   }\n\
                    }\n\
                    fn bad(s: &S) {\n\
                    \x20   let g = s.shard.lock();\n\
                    \x20   let p = s.policy.lock();\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/seeded.rs", body)]);
        let v = analysis
            .violations
            .iter()
            .find(|v| v.message.contains("lock-order violation"))
            .expect("reversed acquisition must fail");
        assert_eq!(v.path, PathBuf::from("crates/hvac-core/src/seeded.rs"));
        assert_eq!(v.line, 15, "inner acquisition line");
        assert!(
            v.message.contains("seeded.rs:14"),
            "outer site in message: {}",
            v.message
        );
        assert!(v.message.contains("core.cache.policy"));
        assert!(v.message.contains("storage.localstore.shard"));
    }

    /// Seeded violation 2: an ad-hoc class string outside `test.` /
    /// `example.` fails with file:line.
    #[test]
    fn seeded_ad_hoc_class_fails() {
        let body = "//! doc\n\
                    use hvac_sync::OrderedMutex;\n\
                    fn sneaky() {\n\
                    \x20   let m = OrderedMutex::new(\"core.sneaky\", 0u32);\n\
                    \x20   drop(m);\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/adhoc.rs", body)]);
        let v = analysis
            .violations
            .iter()
            .find(|v| v.message.contains("ad-hoc lock class"))
            .expect("ad-hoc class must fail");
        assert_eq!(v.line, 4);
        assert!(v.message.contains("core.sneaky"));
        // The allow-listed prefixes pass, even in library code (doctests).
        let ok = "//! doc\n\
                  use hvac_sync::OrderedMutex;\n\
                  fn f() {\n\
                  \x20   let m = OrderedMutex::new(\"example.demo\", 0u32);\n\
                  \x20   let t = OrderedMutex::new(\"test.demo\", 0u32);\n\
                  \x20   drop((m, t));\n\
                  }\n";
        let analysis = run(vec![src("crates/hvac-core/src/adhoc_ok.rs", ok)]);
        assert!(
            !analysis
                .violations
                .iter()
                .any(|v| v.message.contains("ad-hoc")),
            "{:?}",
            analysis.violations
        );
    }

    /// Seeded violation 3: a guard held across an RPC fails with the
    /// blocking site and the acquisition site.
    #[test]
    fn seeded_guard_across_rpc_fails() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedRwLock};\n\
                    struct S { view: OrderedRwLock<u32> }\n\
                    fn build() -> S {\n\
                    \x20   S { view: OrderedRwLock::new(classes::VIEW, 0) }\n\
                    }\n\
                    fn bad(s: &S, c: &Client) {\n\
                    \x20   let v = s.view.read();\n\
                    \x20   c.call(*v);\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/rpcbad.rs", body)]);
        let v = analysis
            .violations
            .iter()
            .find(|v| v.message.contains("blocking call"))
            .expect("guard across RPC must fail");
        assert_eq!(v.line, 9);
        assert!(v.message.contains("core.view"));
        assert!(v.message.contains("rpcbad.rs:8"), "{}", v.message);
    }

    /// `drop()` ends the live range: no blocking violation, no edge.
    #[test]
    fn early_drop_releases_guard() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedRwLock};\n\
                    fn build() {\n\
                    \x20   let view = OrderedRwLock::new(classes::VIEW, 0);\n\
                    \x20   let v = view.read();\n\
                    \x20   drop(v);\n\
                    \x20   do_rpc.call(1);\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/dropok.rs", body)]);
        assert!(
            !analysis
                .violations
                .iter()
                .any(|v| v.message.contains("blocking")),
            "{:?}",
            analysis.violations
        );
    }

    /// A statement temporary dies at end of line; the next line holds
    /// nothing.
    #[test]
    fn temporaries_die_at_end_of_statement() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    fn f() {\n\
                    \x20   let stripe = OrderedMutex::new(classes::SERVER_INFLIGHT_STRIPE, 0);\n\
                    \x20   stripe.lock();\n\
                    \x20   rx.recv();\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/temp.rs", body)]);
        assert!(
            !analysis
                .violations
                .iter()
                .any(|v| v.message.contains("blocking")),
            "{:?}",
            analysis.violations
        );
    }

    /// Scope exit releases guards: a block-scoped stripe guard is gone by
    /// the time the blocking call runs (the ensure_cached shape).
    #[test]
    fn scope_exit_releases_guard() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    fn f() {\n\
                    \x20   let stripe = OrderedMutex::new(classes::SERVER_INFLIGHT_STRIPE, 0);\n\
                    \x20   {\n\
                    \x20       let g = stripe.lock();\n\
                    \x20   }\n\
                    \x20   rx.recv();\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/scope.rs", body)]);
        assert!(
            !analysis
                .violations
                .iter()
                .any(|v| v.message.contains("blocking")),
            "{:?}",
            analysis.violations
        );
    }

    /// The `acquires` annotation records a cross-function edge from every
    /// live guard.
    #[test]
    fn acquires_annotation_records_edge() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    fn f() {\n\
                    \x20   let policy = OrderedMutex::new(classes::CACHE_POLICY, 0);\n\
                    \x20   let g = policy.lock();\n\
                    \x20   store.insert(1); // lockgraph: acquires STORE_SHARD\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/xfn.rs", body)]);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert!(analysis.edge_pairs().contains(&(
            "core.cache.policy".to_string(),
            "storage.localstore.shard".to_string()
        )));
    }

    /// Leaf classes never nest: holding one while locking anything (or
    /// vice versa) is a violation.
    #[test]
    fn leaf_nesting_is_flagged() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    fn f() {\n\
                    \x20   let fds = OrderedMutex::new(classes::CLIENT_FDS, 0);\n\
                    \x20   let shard = OrderedMutex::new(classes::STORE_SHARD, 0);\n\
                    \x20   let a = fds.lock();\n\
                    \x20   let b = shard.lock();\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/leaf.rs", body)]);
        let v = analysis
            .violations
            .iter()
            .find(|v| v.message.contains("leaf"))
            .expect("leaf nesting must fail");
        assert_eq!(v.line, 7);
    }

    /// Receivers the scanner cannot resolve are hard errors pointing at
    /// the annotation to add.
    #[test]
    fn unresolved_receiver_is_flagged() {
        let body = "//! doc\n\
                    fn f(mystery: &M) {\n\
                    \x20   let g = mystery.lock();\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/mystery.rs", body)]);
        let v = analysis
            .violations
            .iter()
            .find(|v| v.message.contains("cannot resolve"))
            .expect("unresolved receiver must fail");
        assert!(v.message.contains("lockgraph: mystery ->"));
    }

    /// Wrapped method chains resolve across lines.
    #[test]
    fn wrapped_chain_resolves() {
        let body = "//! doc\n\
                    use hvac_sync::{classes, OrderedMutex};\n\
                    struct S { fds: OrderedMutex<u32> }\n\
                    fn build() -> S {\n\
                    \x20   S { fds: OrderedMutex::new(classes::CLIENT_FDS, 0) }\n\
                    }\n\
                    fn f(s: &S) {\n\
                    \x20   let of = s\n\
                    \x20       .fds\n\
                    \x20       .lock()\n\
                    \x20       .wrapping_add(1);\n\
                    }\n";
        let analysis = run(vec![src("crates/hvac-core/src/chain.rs", body)]);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert_eq!(analysis.class_sites.get("core.client.fds"), Some(&1));
    }

    /// Blanking strips strings, chars, and comments but keeps structure.
    #[test]
    fn blanking_preserves_structure() {
        let out = blank_noncode("let x = \"a { b\"; // }\nlet c = '{'; /* \"s\" */ f();\n");
        assert_eq!(
            out.len(),
            "let x = \"a { b\"; // }\nlet c = '{'; /* \"s\" */ f();\n".len()
        );
        assert!(!out.contains("a { b"));
        assert!(!out.contains("'{'"));
        assert!(out.contains("f();"));
        assert_eq!(out.matches('{').count(), 0);
    }

    #[test]
    fn vendored_and_test_trees_may_use_variable_classes() {
        let body = "//! doc\n\
                    use hvac_sync::OrderedMutex;\n\
                    fn f(c: &'static str) {\n\
                    \x20   let m = OrderedMutex::new(c, 0u32);\n\
                    \x20   drop(m);\n\
                    }\n";
        // In a tests tree: allowed.
        let analysis = run(vec![src("crates/hvac-core/tests/vars.rs", body)]);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        // In library code: rejected.
        let analysis = run(vec![src("crates/hvac-core/src/vars.rs", body)]);
        assert!(analysis
            .violations
            .iter()
            .any(|v| v.message.contains("must be a hvac_sync::classes constant")));
    }
}
