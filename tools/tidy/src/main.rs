//! `cargo run -p tidy` — run the repo lints and exit non-zero on failure.
//!
//! `cargo run -p tidy -- lockgraph` dumps the static lock graph (declared
//! hierarchy, per-class acquisition sites, extracted edges with witness
//! file:line pairs) and exits non-zero if the lockgraph pass found
//! violations. CI archives this dump next to the runtime-coverage report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = tidy::workspace_root();
    if std::env::args().nth(1).as_deref() == Some("lockgraph") {
        let analysis = tidy::lockgraph::analyze_workspace(&root);
        print!("{}", tidy::lockgraph::render(&analysis));
        return if analysis.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            for v in &analysis.violations {
                eprintln!("tidy error: {v}");
            }
            eprintln!("tidy: {} lockgraph error(s)", analysis.violations.len());
            ExitCode::FAILURE
        };
    }
    let report = match tidy::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tidy: failed to read workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    for note in &report.notes {
        println!("tidy note: {note}");
    }
    if report.is_clean() {
        println!("tidy: all checks passed");
        ExitCode::SUCCESS
    } else {
        for err in &report.errors {
            eprintln!("tidy error: {err}");
        }
        eprintln!("tidy: {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}
