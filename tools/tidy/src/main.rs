//! `cargo run -p tidy` — run the repo lints and exit non-zero on failure.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = tidy::workspace_root();
    let report = match tidy::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tidy: failed to read workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    for note in &report.notes {
        println!("tidy note: {note}");
    }
    if report.is_clean() {
        println!("tidy: all checks passed");
        ExitCode::SUCCESS
    } else {
        for err in &report.errors {
            eprintln!("tidy error: {err}");
        }
        eprintln!("tidy: {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}
