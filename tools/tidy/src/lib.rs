//! Repo-local source lints for the HVAC workspace, in the style of
//! rust-lang's `tidy`: fast, regex-free line scans with no external
//! dependencies, run as `cargo run -p tidy` and from a tier-1 test.
//!
//! Checks enforced:
//!
//! 1. **Unwrap/expect ratchet** — per-crate caps on `.unwrap()` /
//!    `.expect(` in non-test library code, stored in `ratchet.toml`.
//!    Counts may only go down: exceeding a cap is an error, dropping below
//!    it prints a note asking for the cap to be lowered.
//! 2. **Raw sync primitives banned** — `std::sync::Mutex`, its `RwLock`,
//!    and `parking_lot` may not be named outside `crates/hvac-sync`
//!    (which wraps them with lock-order checking) and `vendor/`.
//! 3. **Marker macros banned** — `todo!`, `unimplemented!`, and `dbg!`
//!    may not appear anywhere, tests included.
//! 4. **Module docs required** — every `.rs` file under a `src/` tree
//!    must open with a `//!` doc comment.
//! 5. **Stripe modules are hvac-sync-only** — the lock-striped hot-path
//!    modules (sharded store, striped inflight table, bulk pipeline) must
//!    synchronize exclusively through `hvac_sync` ordered primitives or
//!    `std::sync::atomic`; unordered blocking primitives (`Condvar`,
//!    `Barrier`, `OnceLock`, ...) are banned there, and each module must
//!    show evidence of the checked regime. The file list is pinned, so a
//!    rename that silently drops a module from the check is itself an
//!    error.
//! 6. **View/rebalancer modules are hvac-sync-only** — the membership
//!    machinery (epoch-versioned view handle, cache rebalancer) holds
//!    locks across view swaps and background migration, so it is pinned
//!    to the same regime as check 5: `hvac_sync` ordered primitives or
//!    `std::sync::atomic` only, with the unordered blocking primitives
//!    banned and the file list pinned against renames.
//! 7. **Static lock-graph verification** — see [`lockgraph`]: every lock
//!    constructor must name a `hvac_sync::classes` constant, guard live
//!    ranges are tracked to extract the static class-acquisition edge set
//!    (checked against `classes::HIERARCHY`), and guards held across
//!    blocking boundaries (RPC, recv, join, spawn, sleep) are rejected.
//!    `cargo run -p tidy -- lockgraph` dumps the graph.
//!
//! The library form exists so the tier-1 suite can run the exact same
//! checks in-process (`tidy::check_workspace`) without shelling out.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod lockgraph;
pub mod ratchet;

pub mod scan;

pub use ratchet::Ratchet;
pub use scan::{non_test_lines, SourceFile};

/// One lint violation, formatted `path:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line number; 0 for whole-file/whole-crate findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.path.display(), self.message)
        } else {
            write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
        }
    }
}

/// Result of a tidy run: hard errors plus informational notes.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the run.
    pub errors: Vec<Violation>,
    /// Non-fatal observations (e.g. ratchet caps that can be lowered).
    pub notes: Vec<String>,
}

impl Report {
    /// Whether the tree passed every check.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Directories under the workspace root that contain first-party sources.
const SOURCE_ROOTS: &[&str] = &["crates", "tools", "examples", "tests"];

/// Crates allowed to name raw std sync primitives: hvac-sync wraps them,
/// and tidy itself spells the banned tokens in its check patterns.
const SYNC_ALLOWLIST: &[&str] = &["crates/hvac-sync", "tools/tidy"];

/// Tidy's own sources spell the banned macros and `.unwrap()` as string
/// patterns, so the content checks skip them (module docs still apply).
const SELF_EXEMPT: &str = "tools/tidy";

/// Run every check against the workspace rooted at `root`, using the
/// ratchet file at `root/tools/tidy/ratchet.toml`.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let ratchet = Ratchet::load(&root.join("tools/tidy/ratchet.toml"))?;
    Ok(check_workspace_with(root, &ratchet))
}

/// Run every check with an explicit ratchet (test hook).
pub fn check_workspace_with(root: &Path, ratchet: &Ratchet) -> Report {
    let mut report = Report::default();
    let files = collect_sources(root);
    check_sync_primitives(&files, &mut report);
    check_stripe_modules(&files, &mut report);
    check_view_modules(&files, &mut report);
    check_marker_macros(&files, &mut report);
    check_module_docs(&files, &mut report);
    check_unwrap_ratchet(&files, ratchet, &mut report);
    report.errors.extend(lockgraph::analyze(&files).violations);
    report
}

/// Gather all first-party `.rs` files, with contents, workspace-relative.
/// Skips `target/` and `vendor/` trees at any depth so generated and
/// vendored code never reaches a check.
pub fn collect_sources(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for dir in SOURCE_ROOTS {
        walk(root, &root.join(dir), &mut files);
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    files
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                let rel_path = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push(SourceFile::new(rel_path, text));
            }
        }
    }
}

fn in_allowlist(rel: &Path, allowlist: &[&str]) -> bool {
    allowlist.iter().any(|a| rel.starts_with(a))
}

/// Check 2: raw sync primitives outside hvac-sync.
fn check_sync_primitives(files: &[SourceFile], report: &mut Report) {
    for file in files {
        if in_allowlist(&file.rel_path, SYNC_ALLOWLIST) {
            continue;
        }
        for (idx, line) in file.lines() {
            let banned = line.contains("std::sync::Mutex")
                || line.contains("std::sync::RwLock")
                || line.contains("parking_lot")
                || is_std_sync_import_of_locks(line);
            if banned {
                report.errors.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx,
                    message: "raw sync primitive; use hvac_sync::{OrderedMutex, OrderedRwLock} \
                              (lock-order checked, poison-recovering)"
                        .into(),
                });
            }
        }
    }
}

/// Detect `use std::sync::{..., Mutex, ...}` style imports of the locks.
fn is_std_sync_import_of_locks(line: &str) -> bool {
    let trimmed = line.trim_start();
    if !trimmed.starts_with("use std::sync") && !trimmed.starts_with("use ::std::sync") {
        return false;
    }
    [
        "Mutex",
        "RwLock",
        "MutexGuard",
        "RwLockReadGuard",
        "RwLockWriteGuard",
    ]
    .iter()
    .any(|tok| {
        line.split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == *tok)
    })
}

/// The lock-striped hot-path modules held to check 5. Renaming or moving
/// one of these files requires updating this list — tidy errors otherwise,
/// so the stricter rules can't be dodged by a rename.
const STRIPE_MODULES: &[&str] = &[
    "crates/hvac-storage/src/localstore.rs",
    "crates/hvac-core/src/server.rs",
    "crates/hvac-net/src/pipeline.rs",
];

/// Blocking sync primitives with no lock-order story; banned in stripe
/// modules (matched as whole identifiers, outside comments).
const STRIPE_BANNED_TOKENS: &[&str] = &["Condvar", "Barrier", "OnceLock", "LazyLock"];

/// Check 5: stripe modules synchronize via hvac-sync or atomics only.
fn check_stripe_modules(files: &[SourceFile], report: &mut Report) {
    check_pinned_modules(files, STRIPE_MODULES, "stripe", "STRIPE_MODULES", report);
}

/// The membership machinery held to check 6: the epoch-versioned view
/// handle, the online rebalancer, and the anti-entropy repair scrubber.
/// Same pinning rule as `STRIPE_MODULES` — renames must update this list
/// or tidy errors.
const VIEW_MODULES: &[&str] = &[
    "crates/hvac-core/src/view.rs",
    "crates/hvac-core/src/rebalance.rs",
    "crates/hvac-core/src/repair.rs",
];

// Check 6: view/rebalancer modules synchronize via hvac-sync or atomics
// only — they sit above every other lock class, so an unordered blocking
// primitive there can deadlock the whole view-swap path.
fn check_view_modules(files: &[SourceFile], report: &mut Report) {
    check_pinned_modules(files, VIEW_MODULES, "view", "VIEW_MODULES", report);
}

/// Shared engine for checks 5 and 6: each pinned module must exist, must
/// not name an unordered blocking primitive outside comments, and must show
/// evidence of the checked regime (`hvac_sync` or `std::sync::atomic`).
fn check_pinned_modules(
    files: &[SourceFile],
    modules: &[&str],
    label: &str,
    list_name: &str,
    report: &mut Report,
) {
    for module in modules {
        let Some(file) = files.iter().find(|f| f.rel_path == Path::new(module)) else {
            report.errors.push(Violation {
                path: PathBuf::from(module),
                line: 0,
                message: format!(
                    "{label} module is missing; if it was renamed, update \
                     {list_name} in tools/tidy so the hvac-sync-only \
                     rule follows it"
                ),
            });
            continue;
        };
        for (idx, line) in file.lines() {
            let code = line.split("//").next().unwrap_or(line);
            let has_banned = STRIPE_BANNED_TOKENS.iter().any(|tok| {
                code.split(|c: char| !c.is_alphanumeric() && c != '_')
                    .any(|w| w == *tok)
            });
            if has_banned {
                report.errors.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx,
                    message: format!(
                        "unordered blocking primitive in a {label} module; \
                         use hvac_sync ordered locks or std atomics"
                    ),
                });
            }
        }
        let checked_regime =
            file.text.contains("hvac_sync") || file.text.contains("std::sync::atomic");
        if !checked_regime {
            report.errors.push(Violation {
                path: file.rel_path.clone(),
                line: 0,
                message: format!(
                    "{label} module shows no hvac_sync or std::sync::atomic \
                     usage; its state must be guarded by lock-order \
                     checked primitives"
                ),
            });
        }
    }
}

/// Check 3: marker macros anywhere.
fn check_marker_macros(files: &[SourceFile], report: &mut Report) {
    for file in files {
        if file.rel_path.starts_with(SELF_EXEMPT) {
            continue;
        }
        for (idx, line) in file.lines() {
            for mac in ["todo!", "unimplemented!", "dbg!"] {
                if let Some(pos) = line.find(mac) {
                    // Skip when the match is inside a line comment.
                    if line.find("//").is_some_and(|c| c < pos) {
                        continue;
                    }
                    // `dbg!` must be the macro, not e.g. `xdbg!`.
                    let pre = &line[..pos];
                    if pre
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        continue;
                    }
                    report.errors.push(Violation {
                        path: file.rel_path.clone(),
                        line: idx,
                        message: format!("`{mac}` is banned in committed code"),
                    });
                }
            }
        }
    }
}

/// Check 4: `//!` module docs at the top of every src file.
fn check_module_docs(files: &[SourceFile], report: &mut Report) {
    for file in files {
        if !file.rel_path.iter().any(|c| c == "src") {
            continue;
        }
        let has_doc = file
            .text
            .lines()
            .take(10)
            .any(|l| l.trim_start().starts_with("//!"));
        if !has_doc {
            report.errors.push(Violation {
                path: file.rel_path.clone(),
                line: 0,
                message: "missing `//!` module doc comment in the first 10 lines".into(),
            });
        }
    }
}

/// Check 1: per-crate unwrap/expect ratchet over non-test library code.
fn check_unwrap_ratchet(files: &[SourceFile], ratchet: &Ratchet, report: &mut Report) {
    let mut unwraps: BTreeMap<String, usize> = BTreeMap::new();
    let mut expects: BTreeMap<String, usize> = BTreeMap::new();
    for file in files {
        if file.rel_path.starts_with(SELF_EXEMPT) {
            continue;
        }
        let Some(crate_name) = library_crate_of(&file.rel_path) else {
            continue;
        };
        let mask = non_test_lines(&file.text);
        for ((_, line), counted) in file.lines().zip(mask) {
            if !counted || line.trim_start().starts_with("//") {
                // Comment lines include `//!` doc examples, which compile
                // as doctests — test code, not library code.
                continue;
            }
            *unwraps.entry(crate_name.clone()).or_default() += line.matches(".unwrap()").count();
            *expects.entry(crate_name.clone()).or_default() += line.matches(".expect(").count();
        }
    }
    for (kind, counts, caps) in [
        ("unwrap", &unwraps, &ratchet.unwrap_caps),
        ("expect", &expects, &ratchet.expect_caps),
    ] {
        for (krate, &count) in counts {
            let cap = caps.get(krate).copied().unwrap_or(0);
            if count > cap {
                report.errors.push(Violation {
                    path: PathBuf::from("tools/tidy/ratchet.toml"),
                    line: 0,
                    message: format!(
                        "{krate}: {count} `.{kind}` calls in non-test code exceed the \
                         ratchet cap of {cap}; convert them to error returns or poison \
                         recovery (raising the cap is not allowed)"
                    ),
                });
            } else if count < cap {
                report.notes.push(format!(
                    "{krate}: `.{kind}` count is {count}, below the cap of {cap} — \
                     lower the cap in tools/tidy/ratchet.toml to lock in the progress"
                ));
            }
        }
    }
}

/// Map a workspace-relative path to the crate it belongs to, if the file
/// is non-test library code (under `src/`, not `tests/` or `benches/`).
fn library_crate_of(rel: &Path) -> Option<String> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let src_idx = parts.iter().position(|&p| p == "src")?;
    // examples/src/... => crate "examples"; crates/hvac-core/src => "hvac-core".
    let crate_name = parts.get(src_idx.checked_sub(1)?)?;
    if parts[..src_idx]
        .iter()
        .any(|&p| p == "tests" || p == "benches")
    {
        return None;
    }
    Some((*crate_name).to_string())
}

/// Locate the workspace root from this crate's own manifest dir.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/tidy sits two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), text.to_string())
    }

    #[test]
    fn raw_mutex_flagged_outside_hvac_sync() {
        let files = vec![
            file(
                "crates/hvac-core/src/bad.rs",
                "//! doc\nuse std::sync::Mutex;\n",
            ),
            file(
                "crates/hvac-sync/src/lib.rs",
                "//! doc\nuse std::sync::Mutex;\n",
            ),
        ];
        let mut report = Report::default();
        check_sync_primitives(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(
            report.errors[0].path,
            PathBuf::from("crates/hvac-core/src/bad.rs")
        );
        assert_eq!(report.errors[0].line, 2);
    }

    #[test]
    fn parking_lot_flagged() {
        let files = vec![file(
            "crates/hvac-net/src/x.rs",
            "//! doc\nuse parking_lot::RwLock;\n",
        )];
        let mut report = Report::default();
        check_sync_primitives(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
    }

    #[test]
    fn grouped_std_sync_import_flagged() {
        let files = vec![file(
            "crates/hvac-core/src/x.rs",
            "//! doc\nuse std::sync::{Arc, Mutex};\n",
        )];
        let mut report = Report::default();
        check_sync_primitives(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        // Arc alone is fine.
        let files = vec![file(
            "crates/hvac-core/src/y.rs",
            "//! doc\nuse std::sync::Arc;\n",
        )];
        let mut report = Report::default();
        check_sync_primitives(&files, &mut report);
        assert!(report.is_clean());
    }

    #[test]
    fn stripe_modules_must_exist_and_stay_hvac_sync_only() {
        // All three modules absent: three missing-module errors.
        let mut report = Report::default();
        check_stripe_modules(&[], &mut report);
        assert_eq!(report.errors.len(), 3);
        assert!(report.errors[0].message.contains("missing"));

        // Present, ordered locks, no banned tokens: clean.
        let clean = |path: &str, body: &str| {
            vec![
                file(path, body),
                file(
                    "crates/hvac-core/src/server.rs",
                    "//! doc\nuse hvac_sync::OrderedMutex;\n",
                ),
                file(
                    "crates/hvac-storage/src/localstore.rs",
                    "//! doc\nuse hvac_sync::OrderedRwLock;\n",
                ),
                file(
                    "crates/hvac-net/src/pipeline.rs",
                    "//! doc\nuse std::sync::atomic::AtomicUsize;\n",
                ),
            ]
        };
        let mut report = Report::default();
        check_stripe_modules(
            &clean("crates/hvac-core/src/other.rs", "//! doc\n"),
            &mut report,
        );
        assert!(report.is_clean(), "{:?}", report.errors);

        // A Condvar in a stripe module is flagged; in comments it is not.
        let files = vec![
            file(
                "crates/hvac-core/src/server.rs",
                "//! doc\nuse hvac_sync::OrderedMutex;\n\
                 use std::sync::Condvar;\n// Condvar in a comment is fine\n",
            ),
            file(
                "crates/hvac-storage/src/localstore.rs",
                "//! doc\nuse hvac_sync::OrderedRwLock;\n",
            ),
            file(
                "crates/hvac-net/src/pipeline.rs",
                "//! doc\nuse std::sync::atomic::AtomicBool;\n",
            ),
        ];
        let mut report = Report::default();
        check_stripe_modules(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].line, 3);
        assert!(report.errors[0].message.contains("unordered"));

        // A stripe module with no hvac_sync/atomic evidence is flagged.
        let files = vec![
            file("crates/hvac-core/src/server.rs", "//! doc\nfn f() {}\n"),
            file(
                "crates/hvac-storage/src/localstore.rs",
                "//! doc\nuse hvac_sync::OrderedRwLock;\n",
            ),
            file(
                "crates/hvac-net/src/pipeline.rs",
                "//! doc\nuse std::sync::atomic::AtomicBool;\n",
            ),
        ];
        let mut report = Report::default();
        check_stripe_modules(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("no hvac_sync"));
    }

    #[test]
    fn view_modules_must_exist_and_stay_hvac_sync_only() {
        // All modules absent: one missing-module error each, naming
        // VIEW_MODULES.
        let mut report = Report::default();
        check_view_modules(&[], &mut report);
        assert_eq!(report.errors.len(), 3);
        assert!(report.errors[0].message.contains("VIEW_MODULES"));

        // hvac_sync in one and bare std::sync::atomic in the others are both
        // accepted evidence (the rebalancer and repairer use only atomics).
        let files = vec![
            file(
                "crates/hvac-core/src/view.rs",
                "//! doc\nuse hvac_sync::OrderedRwLock;\n",
            ),
            file(
                "crates/hvac-core/src/rebalance.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
            file(
                "crates/hvac-core/src/repair.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
        ];
        let mut report = Report::default();
        check_view_modules(&files, &mut report);
        assert!(report.is_clean(), "{:?}", report.errors);

        // A OnceLock in a view module is flagged; in comments it is not.
        let files = vec![
            file(
                "crates/hvac-core/src/view.rs",
                "//! doc\nuse hvac_sync::OrderedRwLock;\n\
                 use std::sync::OnceLock;\n// OnceLock in a comment is fine\n",
            ),
            file(
                "crates/hvac-core/src/rebalance.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
            file(
                "crates/hvac-core/src/repair.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
        ];
        let mut report = Report::default();
        check_view_modules(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].line, 3);
        assert!(report.errors[0].message.contains("view module"));

        // No evidence of the checked regime is flagged.
        let files = vec![
            file("crates/hvac-core/src/view.rs", "//! doc\nfn f() {}\n"),
            file(
                "crates/hvac-core/src/rebalance.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
            file(
                "crates/hvac-core/src/repair.rs",
                "//! doc\nuse std::sync::atomic::Ordering;\n",
            ),
        ];
        let mut report = Report::default();
        check_view_modules(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("no hvac_sync"));
    }

    #[test]
    fn marker_macros_flagged_but_not_in_comments() {
        let files = vec![file(
            "crates/hvac-core/src/x.rs",
            "//! doc\nfn f() { todo!() }\n// a comment about todo!\nfn g() { crate::xdbg!(); }\n",
        )];
        let mut report = Report::default();
        check_marker_macros(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].line, 2);
    }

    #[test]
    fn module_doc_required_under_src_only() {
        let files = vec![
            file("crates/hvac-core/src/x.rs", "fn f() {}\n"),
            file("crates/hvac-core/tests/t.rs", "fn f() {}\n"),
        ];
        let mut report = Report::default();
        check_module_docs(&files, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(
            report.errors[0].path,
            PathBuf::from("crates/hvac-core/src/x.rs")
        );
    }

    #[test]
    fn ratchet_blocks_new_unwraps_and_notes_progress() {
        let files = vec![file(
            "crates/hvac-core/src/x.rs",
            "//! doc\nfn f() { x.unwrap(); y.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n",
        )];
        // Cap of 1: the two non-test unwraps exceed it (test one ignored).
        let mut ratchet = Ratchet::default();
        ratchet.unwrap_caps.insert("hvac-core".into(), 1);
        let mut report = Report::default();
        check_unwrap_ratchet(&files, &ratchet, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("exceed"));
        // Cap of 5: below cap, so a note but no error.
        let mut ratchet = Ratchet::default();
        ratchet.unwrap_caps.insert("hvac-core".into(), 5);
        let mut report = Report::default();
        check_unwrap_ratchet(&files, &ratchet, &mut report);
        assert!(report.is_clean());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn bench_and_test_files_exempt_from_ratchet() {
        let files = vec![
            file("crates/hvac-core/tests/t.rs", "fn f() { x.unwrap(); }\n"),
            file("crates/hvac-bench/benches/b.rs", "fn f() { x.unwrap(); }\n"),
        ];
        let ratchet = Ratchet::default();
        let mut report = Report::default();
        check_unwrap_ratchet(&files, &ratchet, &mut report);
        assert!(report.is_clean());
    }

    #[test]
    fn collect_sources_skips_target_and_vendor() {
        // Build a throwaway workspace shape on disk: one real source plus
        // decoys under target/ and vendor/ at different depths.
        let root = std::env::temp_dir().join(format!("tidy-skip-test-{}", std::process::id()));
        let mk = |rel: &str, text: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, text).expect("write");
        };
        mk("crates/hvac-x/src/lib.rs", "//! doc\n");
        mk("crates/hvac-x/target/debug/gen.rs", "fn generated() {}\n");
        mk("crates/vendor/proptest/src/lib.rs", "fn vendored() {}\n");
        mk("tools/t/src/main.rs", "//! doc\nfn main() {}\n");
        mk("tools/t/vendor/dep.rs", "fn vendored() {}\n");
        mk("target/release/build/out.rs", "fn generated() {}\n");
        let files = collect_sources(&root);
        let paths: Vec<_> = files
            .iter()
            .map(|f| f.rel_path.to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            paths,
            vec!["crates/hvac-x/src/lib.rs", "tools/t/src/main.rs"],
            "target/ and vendor/ trees must never reach a check"
        );
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}
