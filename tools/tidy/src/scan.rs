//! Source-file model and the `#[cfg(test)]`-block mask.

use std::path::PathBuf;

/// A first-party source file with its contents in memory.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// Full file contents.
    pub text: String,
}

impl SourceFile {
    /// Build from a relative path and contents.
    pub fn new(rel_path: PathBuf, text: String) -> Self {
        Self { rel_path, text }
    }

    /// Iterate `(1-based line number, line)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.text.lines().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Per-line mask that is `false` inside `#[cfg(test)]` items.
///
/// Heuristic brace tracking: from a `#[cfg(test)]` attribute line, skip
/// either to the end of a braced item (typically `mod tests { ... }`) or,
/// for brace-less items, through the terminating `;`. String literals
/// containing braces can skew the count, which is acceptable for a lint
/// ratchet — counts are reviewed by a human when the ratchet moves.
pub fn non_test_lines(text: &str) -> Vec<bool> {
    let lines: Vec<&str> = text.lines().collect();
    let mut mask = vec![true; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Mask from the attribute through the end of the annotated item.
        let mut depth: i32 = 0;
        let mut seen_open = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = false;
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    ';' if !seen_open => {
                        // Brace-less item, e.g. `#[cfg(test)] use x;`.
                        depth = 0;
                        seen_open = true;
                    }
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::non_test_lines;

    #[test]
    fn masks_test_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        assert_eq!(
            non_test_lines(src),
            vec![true, false, false, false, false, true]
        );
    }

    #[test]
    fn masks_braceless_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn a() {}\n";
        assert_eq!(non_test_lines(src), vec![false, false, true]);
    }

    #[test]
    fn no_test_blocks_all_true() {
        let src = "fn a() {}\nfn b() {}\n";
        assert_eq!(non_test_lines(src), vec![true, true]);
    }
}
