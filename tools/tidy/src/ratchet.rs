//! Ratchet storage: per-crate caps that may only decrease over time.
//!
//! The on-disk format is a TOML subset parsed by hand (tidy takes no
//! dependencies): `[unwrap]` and `[expect]` tables of
//! `crate-name = count` lines, `[lockgraph]` and `[repair]` tables of
//! floors for the conformance workloads, `#` comments allowed.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed ratchet caps.
#[derive(Debug, Default, Clone)]
pub struct Ratchet {
    /// Max `.unwrap()` calls allowed per crate in non-test code.
    pub unwrap_caps: BTreeMap<String, usize>,
    /// Max `.expect(` calls allowed per crate in non-test code.
    pub expect_caps: BTreeMap<String, usize>,
    /// Lockgraph floors (may only increase): `min-edge-coverage-pct` is
    /// the minimum percentage of static edges the conformance workload
    /// must observe at runtime.
    pub lockgraph_floors: BTreeMap<String, usize>,
    /// Crash-recovery floors (may only increase), consumed by the
    /// crash-recovery test suite: `min-warm-hit-rate-pct` is the minimum
    /// post-repair warm hit rate, `max-under-replicated-remaining` the
    /// most open replica slots a converged pass may leave behind.
    pub repair_floors: BTreeMap<String, usize>,
}

impl Ratchet {
    /// Load from `path`; a missing file means zero caps everywhere.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Parse the TOML subset. Unknown sections are ignored; malformed
    /// lines are skipped (tidy reports on counts, not on its own config).
    pub fn parse(text: &str) -> Self {
        let mut ratchet = Self::default();
        let mut section = String::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let Ok(value) = value.trim().parse::<usize>() else {
                continue;
            };
            match section.as_str() {
                "unwrap" => {
                    ratchet.unwrap_caps.insert(key, value);
                }
                "expect" => {
                    ratchet.expect_caps.insert(key, value);
                }
                "lockgraph" => {
                    ratchet.lockgraph_floors.insert(key, value);
                }
                "repair" => {
                    ratchet.repair_floors.insert(key, value);
                }
                _ => {}
            }
        }
        ratchet
    }
}

#[cfg(test)]
mod tests {
    use super::Ratchet;

    #[test]
    fn parses_sections_and_comments() {
        let r = Ratchet::parse(
            "# caps\n[unwrap]\nhvac-core = 3 # shrinking\n\"hvac-net\" = 0\n\n[expect]\nhvac-core = 1\n\
             \n[lockgraph]\nmin-edge-coverage-pct = 100\n\
             \n[repair]\nmin-warm-hit-rate-pct = 95\nmax-under-replicated-remaining = 0\n",
        );
        assert_eq!(r.unwrap_caps["hvac-core"], 3);
        assert_eq!(r.unwrap_caps["hvac-net"], 0);
        assert_eq!(r.expect_caps["hvac-core"], 1);
        assert_eq!(r.lockgraph_floors["min-edge-coverage-pct"], 100);
        assert_eq!(r.repair_floors["min-warm-hit-rate-pct"], 95);
        assert_eq!(r.repair_floors["max-under-replicated-remaining"], 0);
    }

    #[test]
    fn missing_file_is_zero_caps() {
        let r = Ratchet::load(std::path::Path::new("/nonexistent/ratchet.toml"))
            .expect("missing file is not an error");
        assert!(r.unwrap_caps.is_empty());
    }
}
