//! Placeholder library target for the `hvac-integration-tests` package.
//!
//! The integration tests live in `tests/tests/*.rs` and exercise the public
//! APIs of several HVAC crates together.
