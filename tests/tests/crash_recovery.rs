//! Crash-stop recovery: 16 training ranks read a 4-node allocation
//! byte-exact while a node **crash-stops mid-epoch** — its endpoints latch
//! down and its cache, queued copy jobs, and in-flight single-flight
//! waiters are wiped — and then **restarts empty** at the same endpoints
//! while the ranks are still reading.
//!
//! What this certifies: replicated reads survive a crash with zero PFS
//! degradation (the survivor replica serves them warm), the anti-entropy
//! repair scrubber kicked by the restart re-clones the crashed node's
//! share from surviving holders until nothing is under-replicated, and the
//! first full epoch after convergence runs at a warm hit rate above the
//! `[repair]` ratchet floor. Hedged reads get their own section: a slow
//! (delay-faulted) primary is raced by a backup request to the next
//! replica, and the backup wins without doubling load on tripped replicas.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use hvac_types::{PlacementKind, RetryPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const NODES: u32 = 4;
const CLIENTS_PER_NODE: u32 = 4;
const RANKS: usize = (NODES * CLIENTS_PER_NODE) as usize;
const N_FILES: u64 = 48;
const FILE_SIZE: usize = 256;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// Small deadline so a crashed endpoint costs milliseconds; enough
/// attempts that the failover ladder never degrades to the PFS (this test
/// forbids degraded reads — the survivor replica must serve everything).
fn crash_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: Duration::from_millis(50),
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 8,
        breaker_cooldown: Duration::from_millis(200),
        jitter_seed: 0x4352_5348, // "CRSH"
        ..RetryPolicy::default()
    }
}

/// The `[repair]` ratchet floors from tools/tidy/ratchet.toml.
fn repair_floors() -> (u64, u64) {
    let ratchet = tidy::Ratchet::load(&tidy::workspace_root().join("tools/tidy/ratchet.toml"))
        .expect("ratchet");
    let hit_floor = ratchet
        .repair_floors
        .get("min-warm-hit-rate-pct")
        .copied()
        .unwrap_or(0) as u64;
    let max_under = ratchet
        .repair_floors
        .get("max-under-replicated-remaining")
        .copied()
        .unwrap_or(usize::MAX) as u64;
    (hit_floor, max_under)
}

/// One full seeded-shuffled pass over the dataset for every rank, joined
/// as a barrier. Asserts byte-exactness on every read.
fn epoch_pass(clients: &[Arc<hvac_core::HvacClient>], tag: u64) {
    let mut joins = Vec::new();
    for (rank, client) in clients.iter().enumerate() {
        let client = client.clone();
        joins.push(std::thread::spawn(move || {
            let mut order: Vec<u64> = (0..N_FILES).collect();
            let mut rng = StdRng::seed_from_u64(0x5EED ^ ((rank as u64) << 16) ^ tag);
            order.shuffle(&mut rng);
            for i in order {
                let data = client
                    .read_file(&sample(i))
                    .unwrap_or_else(|e| panic!("rank {rank} pass {tag} file {i}: {e}"));
                assert_eq!(
                    data,
                    MemStore::sample_content(i, FILE_SIZE),
                    "rank {rank} pass {tag}: corrupted bytes for file {i}"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn crash_and_restart_mid_epoch_stay_byte_exact_and_repair_reconverges() {
    let (hit_floor, max_under) = repair_floors();
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/train")
            .clients_per_node(CLIENTS_PER_NODE)
            .placement(PlacementKind::Ring)
            .replication(2)
            .retry_policy(crash_retry()),
    )
    .unwrap();
    let clients: Vec<_> = (0..RANKS).map(|r| cluster.client(r).clone()).collect();

    // Pass 0: warm the allocation (one copy per file, on its home), then
    // let the scrubber seed full 2x replication.
    epoch_pass(&clients, 0);
    cluster.start_repair();
    let seed_pass = cluster.wait_repair().expect("seed pass ran");
    assert!(seed_pass.files_repaired > 0, "{seed_pass:?}");
    assert_eq!(cluster.under_replicated_count(), 0, "{seed_pass:?}");

    // Pass 1: node 1 crash-stops *mid-pass* while every rank is reading —
    // cache wiped, in-flight state disowned, endpoints down — and then
    // restarts *empty* a few milliseconds later, still mid-pass.
    let readers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(rank, client)| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut order: Vec<u64> = (0..N_FILES).collect();
                let mut rng = StdRng::seed_from_u64(0xD00D ^ (rank as u64) << 8);
                order.shuffle(&mut rng);
                for i in order {
                    let data = client
                        .read_file(&sample(i))
                        .unwrap_or_else(|e| panic!("rank {rank} mid-crash file {i}: {e}"));
                    assert_eq!(data, MemStore::sample_content(i, FILE_SIZE));
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(3));
    cluster.crash_node(1).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    cluster.restart_node(1).unwrap(); // kicks the scrubber (repair default-on)
    for j in readers {
        j.join().unwrap();
    }

    // The restart-kicked repair pass converges: the crashed node's share
    // is re-cloned from survivors, within the ratchet's allowance.
    let report = cluster.wait_repair().expect("restart kicked a repair pass");
    assert!(report.files_repaired > 0, "{report:?}");
    assert!(
        report.under_replicated_remaining <= max_under,
        "repair left {} slots open, ratchet allows {max_under}: {report:?}",
        report.under_replicated_remaining
    );
    // A follow-up audit agrees nothing is missing (organic refaults during
    // the pass can only add copies, never remove them).
    assert_eq!(cluster.under_replicated_count(), 0);

    // Pass 2: the first full epoch after convergence is warm again — the
    // hit rate clears the `[repair]` ratchet floor.
    let before = cluster.aggregate_metrics();
    epoch_pass(&clients, 2);
    let after = cluster.aggregate_metrics();
    let reads = after.reads - before.reads;
    let hits = after.cache_hits - before.cache_hits;
    let hit_rate_pct = 100 * hits / reads.max(1);
    assert!(
        hit_rate_pct >= hit_floor,
        "post-repair warm hit rate {hit_rate_pct}% fell below the ratchet floor \
         {hit_floor}% (tools/tidy/ratchet.toml [repair]): {hits}/{reads}"
    );

    // Nothing ever degraded to the PFS: the survivor replica (pre-repair)
    // and the re-cloned copies (post-repair) carried every read.
    for (rank, client) in clients.iter().enumerate() {
        let s = client.metrics().full_snapshot();
        assert_eq!(s.degraded_reads, 0, "rank {rank} degraded: {s:?}");
    }
    // Ledgers balance: donor-side repair counters equal the two reports.
    let agg = cluster.aggregate_metrics();
    assert_eq!(
        agg.repaired_files,
        seed_pass.files_repaired + report.files_repaired,
        "{agg:?}"
    );
    assert_eq!(
        agg.repaired_bytes,
        seed_pass.bytes_copied + report.bytes_copied,
        "{agg:?}"
    );
    assert_eq!(agg.cache_hits + agg.cache_misses, agg.reads, "{agg:?}");
}

#[test]
fn hedged_reads_win_against_a_delay_faulted_primary() {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let cluster = Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/train")
            .placement(PlacementKind::Ring)
            .replication(2)
            .retry_policy(RetryPolicy {
                rpc_timeout: Duration::from_millis(200),
                hedge_delay_percent: 5,   // hedge after 10 ms
                jitter_seed: 0x4845_4447, // "HEDG"
                ..RetryPolicy::default()
            }),
    )
    .unwrap();
    let client = cluster.client(0).clone();

    // Pick a file and delay-fault its primary far past the hedge delay
    // (but well inside the deadline, so without hedging the read would
    // *succeed slowly* — this isolates hedging from failover).
    let p = sample(0);
    let addrs = client.replica_addrs(&p);
    assert_eq!(addrs.len(), 2);
    cluster.fabric().fault_injector().set(
        &addrs[0],
        hvac_net::FaultSpec {
            delay_prob: 1.0,
            delay: Duration::from_millis(60),
            seed: 0x4845_4447,
            ..hvac_net::FaultSpec::default()
        },
    );
    for _ in 0..4 {
        let data = client.read_file(&p).unwrap();
        assert_eq!(data, MemStore::sample_content(0, FILE_SIZE));
    }
    let s = client.metrics().full_snapshot();
    assert!(
        s.hedges >= 1,
        "hedges fired against the slow primary: {s:?}"
    );
    assert!(
        s.hedge_wins >= 1,
        "the backup replica won at least once: {s:?}"
    );
    assert_eq!(s.degraded_reads, 0, "{s:?}");
    assert!(
        cluster.fabric().fault_injector().injected_for(&addrs[0]) > 0,
        "the delay plan really fired"
    );
}
