//! Cache-pressure tests: the dataset outgrows the aggregate node-local
//! capacity (paper §III-G), so the allocation must keep serving correct
//! bytes while evicting — with every policy.

use bytes::Bytes;
use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, EvictionPolicyKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const N_FILES: u64 = 96;
const FILE_SIZE: usize = 1_000;

fn pressured_cluster(policy: EvictionPolicyKind, fraction_cached: f64) -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let nodes = 4u64;
    let total_bytes = N_FILES * FILE_SIZE as u64;
    let per_node = (total_bytes as f64 * fraction_cached / nodes as f64) as u64;
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(nodes as u32, 1)
            .dataset_dir("/gpfs/train")
            .cache_capacity(ByteSize(per_node))
            .eviction(policy),
    )
    .unwrap();
    (pfs, cluster)
}

fn read_epoch(cluster: &Cluster, epoch: u64) {
    for i in 0..N_FILES {
        let idx = (i * 31 + epoch * 7) % N_FILES; // cheap shuffle
        let path = format!("/gpfs/train/sample_{idx:08}.bin");
        let data = cluster
            .client((idx % 4) as usize)
            .read_file(Path::new(&path))
            .unwrap_or_else(|e| panic!("epoch {epoch} file {idx}: {e}"));
        assert_eq!(
            data,
            MemStore::sample_content(idx, FILE_SIZE),
            "corrupted bytes under eviction pressure (file {idx})"
        );
    }
}

#[test]
fn all_policies_serve_correct_bytes_under_pressure() {
    let mut hit_rates = Vec::new();
    for policy in [
        EvictionPolicyKind::Random,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu,
    ] {
        let (_pfs, cluster) = pressured_cluster(policy, 0.5);
        for epoch in 0..3 {
            read_epoch(&cluster, epoch);
        }
        let agg = cluster.aggregate_metrics();
        assert!(agg.evictions > 0, "{policy:?}: no evictions under pressure");
        assert!(
            agg.hit_rate() < 0.9,
            "{policy:?}: hit rate {} implausibly high at 50% capacity",
            agg.hit_rate()
        );
        // Capacity is never exceeded on any node.
        let cap = cluster.options().cache_capacity.bytes();
        for used in cluster.per_node_bytes() {
            assert!(used <= cap, "{policy:?}: node over capacity");
        }
        hit_rates.push((policy, agg.hit_rate()));
    }
    // The epoch access pattern is a full cyclic scan — FIFO/LRU's worst
    // case (they evict exactly what is needed next and can hit 0 %), while
    // random eviction is scan-resistant. This is precisely why the paper's
    // default policy (§III-G) is random.
    let rate = |k: EvictionPolicyKind| hit_rates.iter().find(|(p, _)| *p == k).unwrap().1;
    assert!(
        rate(EvictionPolicyKind::Random) > 0.05,
        "random eviction should salvage hits from a scan: {hit_rates:?}"
    );
    assert!(
        rate(EvictionPolicyKind::Random) >= rate(EvictionPolicyKind::Fifo),
        "random must not lose to FIFO on cyclic scans: {hit_rates:?}"
    );
}

#[test]
fn no_pressure_means_no_evictions() {
    let (_pfs, cluster) = pressured_cluster(EvictionPolicyKind::Random, 4.0);
    for epoch in 0..3 {
        read_epoch(&cluster, epoch);
    }
    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.evictions, 0);
    assert_eq!(agg.pfs_copies, N_FILES, "each file fetched exactly once");
}

#[test]
fn tighter_cache_means_lower_hit_rate() {
    let mut rates = Vec::new();
    for fraction in [0.25, 0.5, 1.5] {
        let (_pfs, cluster) = pressured_cluster(EvictionPolicyKind::Random, fraction);
        for epoch in 0..3 {
            read_epoch(&cluster, epoch);
        }
        rates.push(cluster.aggregate_metrics().hit_rate());
    }
    assert!(
        rates[0] < rates[1] && rates[1] < rates[2],
        "hit rates should grow with capacity: {rates:?}"
    );
    assert!(rates[2] > 0.6, "ample cache should mostly hit: {rates:?}");
}

#[test]
fn file_larger_than_node_cache_is_served_via_pfs_bypass() {
    let pfs = Arc::new(MemStore::new());
    pfs.put("/gpfs/train/small.bin", MemStore::sample_content(1, 100));
    pfs.put("/gpfs/train/huge.bin", MemStore::sample_content(2, 10_000));
    let cluster = Cluster::new(
        pfs,
        ClusterOptions::new(2, 1)
            .dataset_dir("/gpfs/train")
            .cache_capacity(ByteSize(1_000)),
    )
    .unwrap();
    // The oversized file cannot be cached, but it is still served (CoorDL
    // semantics: un-admitted files read straight from the PFS).
    let huge = cluster
        .client(0)
        .read_file(Path::new("/gpfs/train/huge.bin"))
        .unwrap();
    assert_eq!(huge, MemStore::sample_content(2, 10_000));
    // It never entered any cache...
    assert_eq!(cluster.per_node_file_counts().iter().sum::<u64>(), 0);
    let agg = cluster.aggregate_metrics();
    assert!(agg.pfs_bypass_reads >= 1);
    // ...and cacheable files still cache normally.
    let data = cluster
        .client(1)
        .read_file(Path::new("/gpfs/train/small.bin"))
        .unwrap();
    assert_eq!(data, MemStore::sample_content(1, 100));
    assert_eq!(cluster.per_node_file_counts().iter().sum::<u64>(), 1);
}

/// The striped store's CAS-reserved accounting under true parallel writers:
/// 8 threads blast inserts (many more bytes than fit) while the store is
/// striped across its default shard count. `used()` may never exceed
/// `capacity()` at any observation point, the survivors' accounting is
/// exact, and `purge()` returns it to zero.
#[test]
fn concurrent_writers_never_overshoot_capacity_and_purge_zeroes() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 200;
    const ITEM: u64 = 10;
    let store = Arc::new(LocalStore::in_memory(ByteSize(1_000)));
    assert!(store.shard_count() > 1, "default store must be striped");
    let mut joins = Vec::new();
    for t in 0..WRITERS {
        let store = store.clone();
        joins.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            for i in 0..PER_WRITER {
                let p = PathBuf::from(format!("/gpfs/stripe/w{t}/f{i}"));
                if store
                    .insert(&p, Bytes::from(vec![t as u8; ITEM as usize]))
                    .is_ok()
                {
                    ok += 1;
                }
                // Invariant holds at every interleaving point, not just at
                // the end: reservation happens before bytes land.
                assert!(
                    store.used().bytes() <= store.capacity().bytes(),
                    "writer {t} observed used > capacity"
                );
            }
            ok
        }));
    }
    let accepted: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(accepted * ITEM, store.used().bytes(), "exact accounting");
    assert_eq!(accepted, 100, "exactly capacity/item inserts admitted");
    assert_eq!(store.len() as u64, accepted);
    store.purge();
    assert_eq!(store.used(), ByteSize::ZERO, "purge returns used to zero");
    assert!(store.is_empty());
}

#[test]
fn minio_policy_pins_a_stable_subset() {
    // CoorDL's MinIO: the cache fills once and never churns; overflow is
    // served from the PFS. Over a cyclic scan this guarantees a *stable*
    // hit fraction ≈ capacity share — better than FIFO/LRU's 0 %.
    let (pfs, cluster) = pressured_cluster(EvictionPolicyKind::MinIo, 0.5);
    for epoch in 0..3 {
        read_epoch(&cluster, epoch);
    }
    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.evictions, 0, "MinIO never evicts");
    assert!(
        agg.pfs_bypass_reads > 0,
        "overflow must be served via bypass"
    );
    assert!(
        agg.hit_rate() > 0.25,
        "pinned half of the dataset should hit ~ its capacity share: {}",
        agg.hit_rate()
    );
    // The resident set is exactly the pinned prefix; capacity respected.
    let cap = cluster.options().cache_capacity.bytes();
    for used in cluster.per_node_bytes() {
        assert!(used <= cap);
    }
    let _ = pfs;
}
