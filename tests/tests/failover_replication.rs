//! Replication & fail-over integration tests (the paper's §III-H extension).

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::{FileStore, MemStore};
use hvac_types::HvacError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const N_FILES: u64 = 60;

fn cluster_with_replication(k: u32) -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| 512);
    // Degradation off: these tests probe pure RPC failover semantics — a
    // lost file must surface as `ServerDown`, not silently come from the
    // PFS. Client-side degradation has its own coverage in hung_server.rs.
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(5, 1)
            .dataset_dir("/gpfs/train")
            .replication(k)
            .pfs_fallback(false),
    )
    .unwrap();
    (pfs, cluster)
}

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

#[test]
fn replicas_live_on_distinct_servers() {
    let (_pfs, cluster) = cluster_with_replication(3);
    let client = cluster.client(0);
    for i in 0..N_FILES {
        let addrs = client.replica_addrs(&sample(i));
        assert_eq!(addrs.len(), 3);
        let mut sorted = addrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas of file {i} collide: {addrs:?}");
    }
}

#[test]
fn single_node_failure_is_masked_with_k2() {
    let (pfs, cluster) = cluster_with_replication(2);
    // Warm epoch.
    for i in 0..N_FILES {
        cluster.client(0).read_file(&sample(i)).unwrap();
    }
    let pfs_reads_warm = pfs.stats().snapshot().1;

    for dead in 0..5u32 {
        cluster.set_node_down(dead, true);
        for i in 0..N_FILES {
            let data = cluster
                .client(((dead + 1) % 5) as usize)
                .read_file(&sample(i))
                .unwrap_or_else(|e| panic!("node {dead} down, file {i}: {e}"));
            assert_eq!(data.len(), 512);
        }
        cluster.set_node_down(dead, false);
    }
    // Fail-over reads may re-fetch from the PFS on the replica (the replica
    // only caches lazily), but never corrupt. PFS traffic stays bounded.
    let pfs_reads_after = pfs.stats().snapshot().1;
    assert!(pfs_reads_after >= pfs_reads_warm);
    assert!(pfs_reads_after <= pfs_reads_warm + 5 * N_FILES);
}

#[test]
fn double_failure_beats_k2_but_not_k3() {
    let (_pfs, cluster) = cluster_with_replication(3);
    for i in 0..N_FILES {
        cluster.client(0).read_file(&sample(i)).unwrap();
    }
    cluster.set_node_down(1, true);
    cluster.set_node_down(3, true);
    for i in 0..N_FILES {
        assert!(
            cluster.client(0).read_file(&sample(i)).is_ok(),
            "k=3 must survive two dead nodes (file {i})"
        );
    }
    cluster.set_node_down(1, false);
    cluster.set_node_down(3, false);

    // k=2 with two dead *adjacent* nodes must lose some files: modulo
    // placement puts a file's replica on the cyclically-next server, so a
    // file homed on node 1 has both copies on {1, 2}.
    let (_pfs2, weak) = cluster_with_replication(2);
    for i in 0..N_FILES {
        weak.client(0).read_file(&sample(i)).unwrap();
    }
    weak.set_node_down(1, true);
    weak.set_node_down(2, true);
    let mut lost = 0;
    let mut served = 0;
    for i in 0..N_FILES {
        match weak.client(0).read_file(&sample(i)) {
            Ok(_) => served += 1,
            Err(HvacError::ServerDown(_)) => lost += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(served > 0, "files homed on live nodes must survive");
    assert!(lost > 0, "k=2 cannot mask two failures for every file");
}

#[test]
fn failover_metrics_are_recorded() {
    let (_pfs, cluster) = cluster_with_replication(2);
    for i in 0..N_FILES {
        cluster.client(2).read_file(&sample(i)).unwrap();
    }
    cluster.set_node_down(0, true);
    for i in 0..N_FILES {
        cluster.client(2).read_file(&sample(i)).unwrap();
    }
    let (_, _, _, _, failovers, _) = cluster.client(2).metrics().snapshot();
    assert!(failovers > 0, "reads homed on node 0 must have failed over");
    assert!(failovers < N_FILES, "only node-0 homes fail over");
}

#[test]
fn close_succeeds_even_when_home_is_down() {
    let (_pfs, cluster) = cluster_with_replication(1);
    let client = cluster.client(0);
    let fd = client.open(&sample(7)).unwrap();
    // Find the home and kill it mid-file.
    let addrs = client.replica_addrs(&sample(7));
    cluster.fabric().set_down(&addrs[0], true);
    // Close is advisory (out-of-band teardown): it must not error.
    client.close(fd).unwrap();
}
