//! Segment-level caching (the §III-E alternative to file granularity):
//! huge files are cut into segments, each homed on its own server, so one
//! multi-gigabyte file no longer lands on a single NVMe.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::{FileStore, MemStore};
use hvac_types::ByteSize;
use std::path::Path;
use std::sync::Arc;

const BIG: usize = 1 << 20; // a 1 MiB "huge" file for test purposes
const SEG: u64 = 64 * 1024; // 64 KiB segments -> 16 segments

fn setup(nodes: u32, capacity: ByteSize) -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.put("/gpfs/train/huge.h5", MemStore::sample_content(7, BIG));
    pfs.put(
        "/gpfs/train/odd.h5",
        MemStore::sample_content(8, BIG + 12_345),
    );
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(nodes, 1)
            .dataset_dir("/gpfs/train")
            .cache_capacity(capacity),
    )
    .unwrap();
    (pfs, cluster)
}

#[test]
fn segmented_read_reassembles_correctly() {
    let (_pfs, cluster) = setup(8, ByteSize::mib(16));
    for (path, size) in [
        ("/gpfs/train/huge.h5", BIG),
        ("/gpfs/train/odd.h5", BIG + 12_345),
    ] {
        let via_segments = cluster
            .client(0)
            .read_file_segmented(Path::new(path), SEG)
            .unwrap();
        let whole = cluster.client(1).read_file(Path::new(path)).unwrap();
        assert_eq!(via_segments.len(), size);
        assert_eq!(via_segments, whole, "{path} reassembly mismatch");
    }
}

#[test]
fn segments_spread_one_file_across_many_nodes() {
    let (_pfs, cluster) = setup(8, ByteSize::mib(16));
    cluster
        .client(0)
        .read_file_segmented(Path::new("/gpfs/train/huge.h5"), SEG)
        .unwrap();
    // File-granular caching would put everything on one node; segment
    // caching spreads the 16 segments.
    let populated = cluster.per_node_bytes().iter().filter(|&&b| b > 0).count();
    assert!(
        populated >= 4,
        "segments should spread over many nodes, only {populated} populated"
    );
    // And the distinct homes match the client's own placement prediction.
    let client = cluster.client(0);
    let mut homes: Vec<String> = (0..16)
        .map(|i| client.segment_replica_addrs(Path::new("/gpfs/train/huge.h5"), i)[0].clone())
        .collect();
    homes.sort();
    homes.dedup();
    assert!(homes.len() >= 4, "placement predicts {} homes", homes.len());
}

#[test]
fn repeat_segmented_reads_hit_the_cache() {
    let (pfs, cluster) = setup(4, ByteSize::mib(16));
    let p = Path::new("/gpfs/train/huge.h5");
    cluster.client(0).read_file_segmented(p, SEG).unwrap();
    let (_, pfs_reads_cold, pfs_bytes_cold) = pfs.stats().snapshot();
    // The coalescer may merge adjacent same-home segments into one ranged
    // read, so the cold pass costs *at most* one PFS read per segment —
    // and with 16 segments over 4 nodes, strictly fewer than 16.
    assert!(
        pfs_reads_cold <= 16,
        "at most one ranged PFS read per segment, got {pfs_reads_cold}"
    );
    assert!(pfs_reads_cold >= 4, "one read per node at minimum");
    assert_eq!(
        pfs_bytes_cold, BIG as u64,
        "ranged reads fetch exactly the file, no re-fetch overlap"
    );
    cluster.client(1).read_file_segmented(p, SEG).unwrap();
    assert_eq!(
        pfs.stats().snapshot().1,
        pfs_reads_cold,
        "second pass never touches the PFS"
    );
    let agg = cluster.aggregate_metrics();
    assert_eq!(
        agg.cache_misses, pfs_reads_cold,
        "every cold range was a cache miss"
    );
    assert_eq!(
        agg.cache_hits, agg.cache_misses,
        "the warm pass hit every range the cold pass populated"
    );
}

#[test]
fn file_bigger_than_any_single_node_cache_is_servable_via_segments() {
    // Per-node cache: 256 KiB. The 1 MiB file cannot be cached whole
    // anywhere, but its 64 KiB segments spread over 8 nodes fit comfortably.
    let (_pfs, cluster) = setup(8, ByteSize::kib(256));
    let p = Path::new("/gpfs/train/huge.h5");
    // Whole-file caching cannot admit it — served via PFS bypass instead
    // (no acceleration, nothing cached).
    cluster.client(0).read_file(p).unwrap();
    assert_eq!(cluster.per_node_bytes().iter().sum::<u64>(), 0);
    assert!(cluster.aggregate_metrics().pfs_bypass_reads >= 1);
    // Segment-level caching actually serves it *from the cache*.
    let data = cluster.client(0).read_file_segmented(p, SEG).unwrap();
    assert_eq!(data.len(), BIG);
    let data2 = cluster.client(3).read_file_segmented(p, SEG).unwrap();
    assert_eq!(data, data2);
}

#[test]
fn zero_segment_size_is_rejected() {
    let (_pfs, cluster) = setup(2, ByteSize::mib(4));
    assert!(cluster
        .client(0)
        .read_file_segmented(Path::new("/gpfs/train/huge.h5"), 0)
        .is_err());
}

#[test]
fn segment_size_larger_than_file_degenerates_to_one_segment() {
    let (pfs, cluster) = setup(2, ByteSize::mib(8));
    let p = Path::new("/gpfs/train/huge.h5");
    let data = cluster.client(0).read_file_segmented(p, 100 << 20).unwrap();
    assert_eq!(data.len(), BIG);
    assert_eq!(pfs.stats().snapshot().1, 1, "a single ranged read");
}
