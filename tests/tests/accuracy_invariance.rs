//! Fig. 14 end-to-end: the *actual byte streams* delivered by GPFS and by
//! HVAC are identical in content and order, so a model trained on either
//! follows the same accuracy trajectory — while class-skewed static
//! sharding (the strawman the paper warns about) lags.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_dl::accuracy::{sharded_order, shuffled_order, train_with_order, SyntheticDataset};
use hvac_dl::loader::{BatchLoader, HvacReader, PfsReader};
use hvac_dl::DatasetSpec;
use hvac_pfs::MemStore;
use std::sync::Arc;

#[test]
fn training_order_through_hvac_equals_pfs_order() {
    let n_files = 64u64;
    let mut spec = DatasetSpec::imagenet21k();
    spec.train_samples = n_files;
    let pfs = Arc::new(MemStore::new());
    for i in 0..n_files {
        pfs.put(
            spec.path_of("/gpfs/train", i),
            MemStore::sample_content(i, 256),
        );
    }
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    let loader = BatchLoader::new("/gpfs/train", spec, 4, 8, 1414);

    for epoch in 0..2 {
        for rank in 0..4u64 {
            let hvac_stream: Vec<(u64, Vec<u8>)> = loader
                .load_epoch(
                    &HvacReader(cluster.client(rank as usize)),
                    epoch,
                    rank,
                    usize::MAX,
                )
                .unwrap()
                .into_iter()
                .flatten()
                .map(|(i, b)| (i, b.to_vec()))
                .collect();
            let pfs_stream: Vec<(u64, Vec<u8>)> = loader
                .load_epoch(&PfsReader(pfs.as_ref()), epoch, rank, usize::MAX)
                .unwrap()
                .into_iter()
                .flatten()
                .map(|(i, b)| (i, b.to_vec()))
                .collect();
            assert_eq!(hvac_stream, pfs_stream, "epoch {epoch}, rank {rank}");
        }
    }
}

#[test]
fn identical_orders_give_bitwise_identical_accuracy_curves() {
    let data = SyntheticDataset::generate(10, 20, 2_500, 600, 0.85, 77);
    let order_a = shuffled_order(data.n_train() as u64, 8, 2, 1234);
    let order_b = shuffled_order(data.n_train() as u64, 8, 2, 1234);
    assert_eq!(order_a, order_b);
    let curve_a = train_with_order(&data, &order_a, 0.05, 400);
    let curve_b = train_with_order(&data, &order_b, 0.05, 400);
    assert_eq!(curve_a, curve_b, "same order must give the same trajectory");
    // ...and both converge.
    assert!(curve_a.last().unwrap().top1 > 0.6);
    assert!(curve_a.last().unwrap().top5 > 0.9);
}

#[test]
fn hash_lookup_does_not_change_the_epoch_permutation() {
    // The sampler, not the storage system, decides order: generate the order
    // with different "placements" of the same sampler state and check the
    // storage seed plays no role.
    let order_seed_42_a = shuffled_order(1000, 4, 3, 42);
    let order_seed_42_b = shuffled_order(1000, 4, 3, 42);
    let order_seed_43 = shuffled_order(1000, 4, 3, 43);
    assert_eq!(order_seed_42_a, order_seed_42_b);
    assert_ne!(
        order_seed_42_a, order_seed_43,
        "epochs do reshuffle by seed"
    );
}

#[test]
fn class_skewed_sharding_degrades_convergence() {
    let data = SyntheticDataset::generate(10, 20, 2_500, 600, 0.85, 99);
    let epochs = 2;
    let global = shuffled_order(data.n_train() as u64, 8, epochs, 5);
    let skewed = sharded_order(&data, 8, epochs);
    assert_eq!(global.len(), skewed.len(), "same training budget");
    let final_top1 = |order: &[u64]| {
        train_with_order(&data, order, 0.05, u64::MAX)
            .last()
            .unwrap()
            .top1
    };
    let a = final_top1(&global);
    let b = final_top1(&skewed);
    assert!(
        a > b + 0.02,
        "global shuffle ({a:.3}) must beat class-skewed shards ({b:.3})"
    );
}

#[test]
fn hvac_reaches_accuracy_earlier_in_wall_clock() {
    // The paper's closing point on Fig. 14: same accuracy per iteration +
    // faster iterations = accuracy reached earlier. Pair the accuracy curve
    // with per-iteration times from the simulator.
    use hvac_dl::{simulate_training, DnnModel, TrainingConfig};
    use hvac_sim::gpfs::GpfsModel;
    use hvac_sim::iostack::{GpfsBackend, HvacBackend};
    use hvac_types::{ClusterConfig, GpfsConfig};

    let nodes = 256;
    let mut cfg = TrainingConfig::new(DatasetSpec::imagenet21k(), DnnModel::resnet50(), nodes)
        .batch_size(32)
        .epochs(3);
    cfg.max_sim_iters = 2;

    let mut gpfs = GpfsBackend::new(GpfsModel::new(GpfsConfig::shared_alpine()));
    let rg = simulate_training(&mut gpfs, &cfg);
    let mut cc = ClusterConfig::with_nodes(nodes);
    cc.gpfs = GpfsConfig::shared_alpine();
    let mut hvac = HvacBackend::new(&cc, 3);
    let rh = simulate_training(&mut hvac, &cfg);

    // Same iteration count; a fixed iteration budget (i.e. a fixed accuracy
    // level) is reached strictly earlier on HVAC once the cache is warm.
    assert!(
        rh.best_random_epoch() < rg.best_random_epoch(),
        "warm HVAC epochs must be faster: {} vs {}",
        rh.best_random_epoch(),
        rg.best_random_epoch()
    );
}
