//! The §IV-C prefetching extension, end-to-end: staging the dataset before
//! training removes the cold-epoch PFS traffic from the training path.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::{FileStore, MemStore};
use std::path::Path;
use std::sync::Arc;

const N_FILES: u64 = 48;

fn setup() -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| 1024);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    (pfs, cluster)
}

#[test]
fn prefetch_stages_the_whole_dataset() {
    let (pfs, cluster) = setup();
    let n = cluster.prefetch_dataset(Path::new("/gpfs/train")).unwrap();
    assert_eq!(n as u64, N_FILES);
    // Everything is resident, distributed across nodes.
    assert_eq!(cluster.per_node_file_counts().iter().sum::<u64>(), N_FILES);
    assert_eq!(pfs.stats().snapshot().1, N_FILES, "each file copied once");
    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.prefetches, N_FILES);

    // "Epoch 1" after staging is now a pure cache-hit epoch.
    for i in 0..N_FILES {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        let data = cluster
            .client((i % 4) as usize)
            .read_file(Path::new(&path))
            .unwrap();
        assert_eq!(data, MemStore::sample_content(i, 1024));
    }
    assert_eq!(
        pfs.stats().snapshot().1,
        N_FILES,
        "no PFS reads after staging"
    );
    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.cache_hits, N_FILES);
    assert_eq!(agg.cache_misses, 0);
}

#[test]
fn prefetch_is_idempotent() {
    let (pfs, cluster) = setup();
    cluster.prefetch_dataset(Path::new("/gpfs/train")).unwrap();
    cluster.prefetch_dataset(Path::new("/gpfs/train")).unwrap();
    assert_eq!(
        pfs.stats().snapshot().1,
        N_FILES,
        "re-staging copies nothing"
    );
    // Only the first round actually enqueued copies.
    assert_eq!(cluster.aggregate_metrics().prefetches, N_FILES);
}

#[test]
fn demand_reads_race_safely_with_prefetch() {
    let (pfs, cluster) = setup();
    let cluster = Arc::new(cluster);
    // Kick off staging and immediately hammer reads from another thread.
    let c2 = cluster.clone();
    let reader = std::thread::spawn(move || {
        for round in 0..3 {
            for i in 0..N_FILES {
                let path = format!("/gpfs/train/sample_{i:08}.bin");
                let data = c2
                    .client(((i + round) % 4) as usize)
                    .read_file(Path::new(&path))
                    .unwrap();
                assert_eq!(data, MemStore::sample_content(i, 1024));
            }
        }
    });
    cluster.prefetch_dataset(Path::new("/gpfs/train")).unwrap();
    reader.join().unwrap();
    // The single-flight dedup still guarantees one copy per file.
    assert_eq!(pfs.stats().snapshot().1, N_FILES);
}

#[test]
fn prefetch_of_missing_prefix_is_empty_not_an_error() {
    let (_pfs, cluster) = setup();
    let n = cluster.prefetch_dataset(Path::new("/gpfs/absent")).unwrap();
    assert_eq!(n, 0);
}

#[test]
fn client_prefetch_skips_paths_outside_dataset_dir() {
    let (_pfs, cluster) = setup();
    let inside = Path::new("/gpfs/train/sample_00000001.bin");
    let outside = Path::new("/etc/passwd");
    let n = cluster.client(0).prefetch([inside, outside]).unwrap();
    assert_eq!(n, 1, "only the dataset path is submitted");
}
