//! Differential hot-path tier: the zero-copy data plane (pooled buffers,
//! coalesced ranges, batched RPCs) and the legacy path must be
//! byte-identical for **every read shape** — whole-file, pipelined bulk,
//! segmented, coalesced, batched — on every transport, clean and under
//! drop/delay/crash faults.
//!
//! Every assertion compares three ways: against the synthesized ground
//! truth, and between the two arms, so a bug that corrupts both arms the
//! same way still trips the ground-truth check.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_types::{RetryPolicy, TransportKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const SEG: u64 = 16 * 1024;

/// File sizes chosen to hit every tiling case: sub-segment, exact
/// segment multiple, straddling remainders, and multi-batch spans.
const SIZES: [usize; 6] = [
    1,
    100,
    SEG as usize,
    3 * SEG as usize + 17,
    96 * 1024,
    256 * 1024 + 12_345,
];

const TRANSPORTS: [TransportKind; 3] = [
    TransportKind::Loopback,
    TransportKind::Tcp,
    TransportKind::Unix,
];

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

fn dataset() -> Arc<MemStore> {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), SIZES.len() as u64, |i| {
        SIZES[i as usize]
    });
    pfs
}

fn build(
    transport: TransportKind,
    zero_copy: bool,
    tweak: impl FnOnce(ClusterOptions) -> ClusterOptions,
) -> (Arc<MemStore>, Cluster) {
    let pfs = dataset();
    let options = tweak(
        ClusterOptions::new(4, 1)
            .dataset_dir("/gpfs/train")
            .transport(transport)
            .zero_copy(zero_copy),
    );
    let cluster = Cluster::new(pfs.clone(), options).unwrap();
    (pfs, cluster)
}

/// Read every file through both shapes on `cluster` and return the bytes
/// so the caller can difference the two arms.
fn read_all(cluster: &Cluster, rank: usize, tag: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    let client = cluster.client(rank);
    SIZES
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let p = sample(i as u64);
            let whole = client.read_file(&p).unwrap_or_else(|e| {
                panic!("{tag}: whole-file read of {} failed: {e}", p.display())
            });
            let segmented = client
                .read_file_segmented(&p, SEG)
                .unwrap_or_else(|e| panic!("{tag}: segmented read of {} failed: {e}", p.display()));
            let expected = MemStore::sample_content(i as u64, size);
            assert_eq!(whole, expected, "{tag}: whole-file bytes of file {i}");
            assert_eq!(segmented, expected, "{tag}: segmented bytes of file {i}");
            (whole.to_vec(), segmented.to_vec())
        })
        .collect()
}

/// Clean differential sweep: whole-file + pipelined bulk (8 KiB chunks) +
/// segmented (coalesced/batched vs sequential) on every transport.
#[test]
fn all_read_shapes_agree_across_arms_and_transports() {
    for transport in TRANSPORTS {
        // Small bulk chunks force the pipelined multi-chunk path on
        // whole-file reads; segmented reads batch per destination.
        let (_p1, zc) = build(transport, true, |o| o.bulk_transfer(8 * 1024, 4));
        let (_p2, legacy) = build(transport, false, |o| o.bulk_transfer(8 * 1024, 4));
        let a = read_all(&zc, 0, &format!("{transport:?}/zero-copy"));
        let b = read_all(&legacy, 0, &format!("{transport:?}/legacy"));
        assert_eq!(a, b, "{transport:?}: arms disagree");
        assert!(
            zc.client(0).metrics().full_snapshot().batch_rpcs >= 1,
            "{transport:?}: zero-copy arm never batched"
        );
        assert_eq!(
            legacy.client(0).metrics().full_snapshot().batch_rpcs,
            0,
            "{transport:?}: legacy arm must not batch"
        );
    }
}

/// A single-node allocation homes every segment on the same server, so the
/// planner's adjacent-range coalescing collapses a whole file into one
/// request — the pure-coalescing shape.
#[test]
fn coalesced_single_destination_reads_are_exact() {
    for transport in TRANSPORTS {
        let pfs = dataset();
        let mk = |zero_copy| {
            Cluster::new(
                pfs.clone(),
                ClusterOptions::new(1, 1)
                    .dataset_dir("/gpfs/train")
                    .transport(transport)
                    .zero_copy(zero_copy),
            )
            .unwrap()
        };
        let (zc, legacy) = (mk(true), mk(false));
        let a = read_all(&zc, 0, &format!("{transport:?}/coalesced/zero-copy"));
        let b = read_all(&legacy, 0, &format!("{transport:?}/coalesced/legacy"));
        assert_eq!(a, b, "{transport:?}: single-node arms disagree");
    }
}

/// Coalescing disabled and a tiny `batch_max` force many small batches per
/// destination — the pure-batching shape.
#[test]
fn batched_reads_with_coalescing_disabled_are_exact() {
    for transport in TRANSPORTS {
        let (_p1, zc) = build(transport, true, |o| o.coalesce_batch(0, 2));
        let (_p2, legacy) = build(transport, false, |o| o.coalesce_batch(0, 2));
        let a = read_all(&zc, 1, &format!("{transport:?}/batched/zero-copy"));
        let b = read_all(&legacy, 1, &format!("{transport:?}/batched/legacy"));
        assert_eq!(a, b, "{transport:?}: batching arms disagree");
    }
}

/// Small deadlines so injected drops cost milliseconds, enough attempts
/// that a few-percent drop rate cannot exhaust a replica ladder.
fn fault_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: Duration::from_millis(50),
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 16,
        breaker_cooldown: Duration::from_millis(100),
        jitter_seed: 0x4845_5854, // "HXT"
        ..RetryPolicy::default()
    }
}

fn arm_drop_delay(cluster: &Cluster) {
    for (i, addr) in cluster.fabric().endpoint_names().into_iter().enumerate() {
        cluster.fabric().fault_injector().set(
            &addr,
            FaultSpec {
                delay_prob: 0.25,
                delay: Duration::from_millis(1),
                drop_prob: 0.03,
                seed: 0xD1FF ^ ((i as u64) << 8),
                ..FaultSpec::default()
            },
        );
    }
}

/// Drop + delay faults on every endpoint: the zero-copy arm's batch RPCs
/// fail probabilistically and must fall back to the per-segment ladder
/// without ever returning wrong bytes.
#[test]
fn drop_and_delay_faults_stay_byte_exact_on_both_arms() {
    for transport in TRANSPORTS {
        for zero_copy in [true, false] {
            let (_pfs, cluster) = build(transport, zero_copy, |o| {
                o.replication(2).retry_policy(fault_retry())
            });
            // Warm pass (clean) so the dataset is cached, then arm faults.
            read_all(&cluster, 0, &format!("{transport:?}/warm"));
            arm_drop_delay(&cluster);
            for pass in 0..3 {
                read_all(
                    &cluster,
                    pass % 2,
                    &format!("{transport:?}/faulted/zc={zero_copy}/pass{pass}"),
                );
            }
            assert!(
                cluster.fabric().fault_injector().injected() > 0,
                "{transport:?}: the fault plan never fired"
            );
        }
    }
}

/// Crash-stop a node mid-workload: with k=2 replication the surviving
/// replica (or the PFS rung) must keep every shape byte-exact on both arms.
#[test]
fn crash_faults_stay_byte_exact_on_both_arms() {
    for transport in TRANSPORTS {
        for zero_copy in [true, false] {
            let (_pfs, cluster) = build(transport, zero_copy, |o| {
                o.replication(2).retry_policy(fault_retry()).repair(false)
            });
            read_all(&cluster, 0, &format!("{transport:?}/pre-crash"));
            cluster.crash_node(1).unwrap();
            for pass in 0..2 {
                read_all(
                    &cluster,
                    pass,
                    &format!("{transport:?}/crashed/zc={zero_copy}/pass{pass}"),
                );
            }
            cluster.restart_node(1).unwrap();
            read_all(
                &cluster,
                1,
                &format!("{transport:?}/post-restart/zc={zero_copy}"),
            );
        }
    }
}
