//! Cross-crate assertions that the simulator reproduces the paper's
//! headline *shapes* (who wins, where the crossovers sit). The full-scale
//! numbers live in EXPERIMENTS.md; these tests pin the qualitative claims
//! so a refactor cannot silently break the reproduction.

use hvac_dl::{simulate_training, DatasetSpec, DnnModel, TrainingConfig};
use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{FileAccess, GpfsBackend, HvacBackend, IoBackend, XfsLocalBackend};
use hvac_sim::mdtest::{run_mdtest, MdtestConfig};
use hvac_types::{ByteSize, ClusterConfig, GpfsConfig, SimTime};

fn hvac(nodes: u32, instances: u32, seed: u64) -> HvacBackend {
    let mut cc = ClusterConfig::with_nodes(nodes);
    cc.hvac.instances_per_node = instances;
    cc.gpfs = GpfsConfig::shared_alpine();
    HvacBackend::new(&cc, seed)
}

fn shared_gpfs() -> GpfsBackend {
    GpfsBackend::new(GpfsModel::new(GpfsConfig::shared_alpine()))
}

fn resnet_cfg(nodes: u32) -> TrainingConfig {
    let mut cfg = TrainingConfig::new(DatasetSpec::imagenet21k(), DnnModel::resnet50(), nodes)
        .batch_size(32)
        .epochs(4);
    cfg.max_sim_iters = 2;
    cfg
}

#[test]
fn fig3_shape_gpfs_saturates_xfs_scales() {
    let tps = |nodes: u32, xfs: bool| -> f64 {
        let cfg = MdtestConfig {
            nodes,
            procs_per_node: 2,
            txns_per_proc: 16,
            file_size: ByteSize::kib(32),
        };
        if xfs {
            run_mdtest(XfsLocalBackend::summit(nodes), cfg).tps
        } else {
            run_mdtest(GpfsBackend::new(GpfsModel::summit()), cfg).tps
        }
    };
    // XFS: ~linear from 64 to 1024 nodes. GPFS: saturated well below that.
    let xfs_growth = tps(1024, true) / tps(64, true);
    let gpfs_growth = tps(1024, false) / tps(64, false);
    assert!(xfs_growth > 12.0, "xfs growth {xfs_growth}");
    assert!(gpfs_growth < xfs_growth / 2.0, "gpfs growth {gpfs_growth}");
}

#[test]
fn fig4_shape_crossover_at_scale_for_large_files() {
    let run = |nodes: u32, xfs: bool| -> f64 {
        let cfg = MdtestConfig {
            nodes,
            procs_per_node: 2,
            txns_per_proc: 8,
            file_size: ByteSize::mib(8),
        };
        if xfs {
            run_mdtest(XfsLocalBackend::summit(nodes), cfg).tps
        } else {
            run_mdtest(GpfsBackend::new(GpfsModel::summit()), cfg).tps
        }
    };
    // The XFS:GPFS gap must widen dramatically with scale (Fig. 4's
    // message: the bottleneck becomes aggregate bandwidth, which is fixed
    // for GPFS and grows linearly for node-local NVMe).
    let ratio_small = run(8, true) / run(8, false);
    let ratio_large = run(2048, true) / run(2048, false);
    assert!(ratio_large > 3.0, "at scale NVMe wins big: {ratio_large}");
    assert!(
        ratio_large > ratio_small * 2.0,
        "the gap must grow with node count: {ratio_small} -> {ratio_large}"
    );
}

#[test]
fn fig8_shape_hvac_between_gpfs_and_xfs_at_scale() {
    let cfg = resnet_cfg(256);
    let tg = simulate_training(&mut shared_gpfs(), &cfg).total;
    let th = simulate_training(&mut hvac(256, 1, 1), &cfg).total;
    let tx = simulate_training(&mut XfsLocalBackend::summit(256), &cfg).total;
    assert!(tx < th, "XFS {tx} must lower-bound HVAC {th}");
    assert!(th < tg, "HVAC {th} must beat GPFS {tg} at 256 nodes");
}

#[test]
fn fig8_shape_gpfs_stops_scaling_hvac_continues() {
    let total = |nodes: u32, make: &dyn Fn(u32) -> Box<dyn IoBackend>| {
        let cfg = resnet_cfg(nodes);
        let mut b = make(nodes);
        simulate_training(b.as_mut(), &cfg).total.as_secs_f64()
    };
    let gpfs_of = |_n: u32| -> Box<dyn IoBackend> { Box::new(shared_gpfs()) };
    let hvac_of = |n: u32| -> Box<dyn IoBackend> { Box::new(hvac(n, 1, 1)) };
    // Quadrupling nodes 256 -> 1024:
    let gpfs_speedup = total(256, &gpfs_of) / total(1024, &gpfs_of);
    let hvac_speedup = total(256, &hvac_of) / total(1024, &hvac_of);
    assert!(
        hvac_speedup > gpfs_speedup * 1.3,
        "HVAC should keep scaling where GPFS saturates: hvac {hvac_speedup:.2}x vs gpfs {gpfs_speedup:.2}x"
    );
}

#[test]
fn fig9_shape_variant_ordering_at_scale() {
    let cfg = resnet_cfg(512);
    let t1 = simulate_training(&mut hvac(512, 1, 9), &cfg).total;
    let t2 = simulate_training(&mut hvac(512, 2, 9), &cfg).total;
    let t4 = simulate_training(&mut hvac(512, 4, 9), &cfg).total;
    assert!(t4 <= t2, "4x1 {t4} <= 2x1 {t2}");
    assert!(t2 <= t1, "2x1 {t2} <= 1x1 {t1}");
}

#[test]
fn fig11_shape_epoch1_cold_then_3x_faster_warm() {
    let cfg = resnet_cfg(512);
    let rg = simulate_training(&mut shared_gpfs(), &cfg);
    let rh = simulate_training(&mut hvac(512, 4, 2), &cfg);
    // Epoch 1: HVAC pays the PFS like GPFS does (within 25%).
    let e1_ratio = rh.first_epoch().as_secs_f64() / rg.first_epoch().as_secs_f64();
    assert!((0.8..1.6).contains(&e1_ratio), "epoch-1 ratio {e1_ratio}");
    // Warm epochs: multiple times faster than GPFS (paper: ~3x for 4x1).
    let warm_gain = rg.best_random_epoch().as_secs_f64() / rh.best_random_epoch().as_secs_f64();
    assert!(warm_gain > 2.0, "warm epoch gain {warm_gain}, want > 2x");
}

#[test]
fn fig13_shape_locality_split_is_negligible() {
    let sizes = ByteSize(163_000);
    let time_for = |local_frac: f64| -> SimTime {
        let mut b = hvac(64, 1, 4).with_locality_split(local_frac);
        b.assume_all_cached();
        // One serial chain per node (half the paper's rank density) keeps
        // the servers out of saturation, as in the paper's Fig. 13 runs.
        let mut heap = std::collections::BinaryHeap::new();
        for rank in 0..64u64 {
            heap.push(std::cmp::Reverse((SimTime::ZERO, rank, 0u32)));
        }
        let mut last = SimTime::ZERO;
        while let Some(std::cmp::Reverse((t, rank, i))) = heap.pop() {
            let done = b.access(
                t,
                rank as u32,
                FileAccess {
                    index: rank * 1000 + i as u64,
                    size: sizes,
                },
            );
            if done > last {
                last = done;
            }
            if i < 63 {
                heap.push(std::cmp::Reverse((done, rank, i + 1)));
            }
        }
        last
    };
    let all_local = time_for(1.0).as_secs_f64();
    let all_remote = time_for(0.0).as_secs_f64();
    assert!(
        all_remote / all_local < 1.35,
        "remote serving should cost little: local {all_local}, remote {all_remote}"
    );
}

#[test]
fn cosmoflow_is_more_io_bound_than_resnet() {
    // The paper picks CosmoFlow precisely because its tiny model makes I/O
    // dominate; the simulator must agree: GPFS hurts CosmoFlow (relative to
    // its XFS bound) more than it hurts ResNet50.
    let relative_pain = |dataset: DatasetSpec, model: DnnModel, bs: u32| -> f64 {
        let mut cfg = TrainingConfig::new(dataset, model, 512)
            .batch_size(bs)
            .epochs(3);
        cfg.max_sim_iters = 2;
        let tg = simulate_training(&mut shared_gpfs(), &cfg)
            .total
            .as_secs_f64();
        let tx = simulate_training(&mut XfsLocalBackend::summit(512), &cfg)
            .total
            .as_secs_f64();
        tg / tx
    };
    let resnet = relative_pain(DatasetSpec::imagenet21k(), DnnModel::resnet50(), 32);
    let cosmo = relative_pain(DatasetSpec::cosmouniverse(), DnnModel::cosmoflow(), 8);
    assert!(
        cosmo > resnet,
        "CosmoFlow should suffer more from GPFS: cosmo {cosmo:.2}x vs resnet {resnet:.2}x"
    );
}
