//! Tier-1 gate: the in-repo lint suite must pass on the committed tree.
//!
//! `cargo test` therefore fails on the same violations `cargo run -p tidy`
//! reports — raw `std::sync` primitives outside `hvac-sync`, above-ratchet
//! `unwrap()`/`expect(` counts, `todo!`/`unimplemented!`/`dbg!` markers,
//! and missing module docs — so CI and local workflows cannot drift.

#[test]
fn workspace_passes_tidy() {
    let root = tidy::workspace_root();
    let report = tidy::check_workspace(&root).expect("workspace sources are readable");
    assert!(
        report.is_clean(),
        "tidy violations (run `cargo run -p tidy` for details):\n{}",
        report
            .errors
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}
