//! Elastic membership under fire: 16 training ranks read a 4-node
//! allocation byte-exact while a node is **removed mid-epoch**, and again
//! after another node is **added** at the next epoch — with delay + drop
//! fault injection armed on every endpoint the whole time.
//!
//! What this certifies: the stale-view redirect protocol (not timeouts, not
//! PFS degradation) is how clients cross a view change. The retired node
//! answers as a tombstone until every client has re-resolved, the
//! background rebalancer migrates exactly the minority of files whose home
//! moved, and the migration ledger balances between the per-server
//! counters and the rebalance reports.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_types::{NodeId, PlacementKind, RetryPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const NODES: u32 = 4;
const CLIENTS_PER_NODE: u32 = 4;
const RANKS: usize = (NODES * CLIENTS_PER_NODE) as usize;
const N_FILES: u64 = 48;
const FILE_SIZE: usize = 256;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// Small deadline so injected drops cost milliseconds; one extra attempt
/// over the stripe harness so a 2 % drop rate cannot plausibly exhaust a
/// replica ladder (that would degrade to the PFS, which this test forbids).
fn churn_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: Duration::from_millis(50),
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 8,
        breaker_cooldown: Duration::from_millis(200),
        jitter_seed: 0x4348_5552, // "CHUR"
        ..RetryPolicy::default()
    }
}

/// One full seeded-shuffled pass over the dataset for every rank, joined as
/// a barrier. Asserts byte-exactness on every read.
fn epoch_pass(clients: &[Arc<hvac_core::HvacClient>], tag: u64) {
    let mut joins = Vec::new();
    for (rank, client) in clients.iter().enumerate() {
        let client = client.clone();
        joins.push(std::thread::spawn(move || {
            let mut order: Vec<u64> = (0..N_FILES).collect();
            let mut rng = StdRng::seed_from_u64(0x5EED ^ ((rank as u64) << 16) ^ tag);
            order.shuffle(&mut rng);
            for i in order {
                let data = client
                    .read_file(&sample(i))
                    .unwrap_or_else(|e| panic!("rank {rank} pass {tag} file {i}: {e}"));
                assert_eq!(
                    data,
                    MemStore::sample_content(i, FILE_SIZE),
                    "rank {rank} pass {tag}: corrupted bytes for file {i}"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn membership_changes_under_faults_stay_byte_exact_and_redirect() {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let mut cluster = Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/train")
            .clients_per_node(CLIENTS_PER_NODE)
            .placement(PlacementKind::Ring)
            .retry_policy(churn_retry()),
    )
    .unwrap();
    for (i, addr) in cluster.fabric().endpoint_names().into_iter().enumerate() {
        cluster.fabric().fault_injector().set(
            &addr,
            FaultSpec {
                delay_prob: 0.3,
                delay: Duration::from_millis(1),
                drop_prob: 0.02,
                seed: 0xC0FF_EE00 ^ i as u64,
                ..FaultSpec::default()
            },
        );
    }
    let clients: Vec<_> = (0..RANKS).map(|r| cluster.client(r).clone()).collect();

    // Pass 0: warm the allocation-wide cache.
    epoch_pass(&clients, 0);
    assert_eq!(cluster.epoch(), 0);

    // Pass 1: remove node 1 *mid-pass* while every rank is reading. The
    // readers started on epoch 0; the tombstone bounces them to epoch 1.
    let readers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(rank, client)| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut order: Vec<u64> = (0..N_FILES).collect();
                let mut rng = StdRng::seed_from_u64(0xD00D ^ (rank as u64) << 8);
                order.shuffle(&mut rng);
                for i in order {
                    let data = client
                        .read_file(&sample(i))
                        .unwrap_or_else(|e| panic!("rank {rank} mid-churn file {i}: {e}"));
                    assert_eq!(data, MemStore::sample_content(i, FILE_SIZE));
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(3));
    cluster.remove_node(NodeId(1)).unwrap();
    assert_eq!(cluster.epoch(), 1);
    for j in readers {
        j.join().unwrap();
    }
    let leave_report = cluster.wait_rebalance().expect("leave pass ran");
    assert!(
        leave_report.migrated_files > 0,
        "the victim's files must be migrated: {leave_report:?}"
    );

    // Pass 2 (quiescent): add a node at the next epoch, let the rebalance
    // finish, then read everything again.
    let joiner = cluster.add_node().unwrap();
    assert_eq!(joiner, NodeId(4));
    assert_eq!(cluster.epoch(), 2);
    let join_report = cluster.wait_rebalance().expect("join pass ran");
    assert!(join_report.migrated_files > 0, "{join_report:?}");
    epoch_pass(&clients, 2);

    // Every client crossed both view changes via redirect, never via the
    // PFS: zero degraded reads, and every view handle converged on epoch 2.
    let mut refreshes = 0u64;
    for (rank, client) in clients.iter().enumerate() {
        let s = client.metrics().full_snapshot();
        assert_eq!(s.degraded_reads, 0, "rank {rank} degraded: {s:?}");
        assert_eq!(
            client.view().epoch(),
            2,
            "rank {rank} stuck on a stale view"
        );
        refreshes += s.view_refreshes;
    }
    assert!(
        refreshes >= RANKS as u64,
        "every rank refreshed at least once"
    );

    // The ledgers balance: per-server migration counters sum to the two
    // reports, redirects were actually served, and the faults really fired.
    let agg = cluster.aggregate_metrics();
    assert!(agg.stale_view_redirects >= RANKS as u64, "{agg:?}");
    assert_eq!(
        agg.migrated_files,
        leave_report.migrated_files + join_report.migrated_files,
        "{agg:?}"
    );
    assert_eq!(
        agg.migrated_bytes,
        leave_report.migrated_bytes + join_report.migrated_bytes,
        "{agg:?}"
    );
    assert_eq!(agg.cache_hits + agg.cache_misses, agg.reads, "{agg:?}");
    assert!(
        cluster.fabric().fault_injector().injected() > 0,
        "fault plan never fired"
    );
}
