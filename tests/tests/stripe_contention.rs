//! Lock-stripe contention stress: 16 training ranks hammer a 4-node
//! allocation's read hot path — the striped inflight table and the sharded
//! `LocalStore` — through three epochs of seeded-shuffled access, with
//! delay + drop fault injection armed on every endpoint the whole time.
//!
//! What this certifies, beyond the throughput the stripe benchmark
//! measures: striping changes *who contends*, never *what is served*.
//! Every read is byte-exact against the PFS ground truth, the second and
//! third epochs are pure cache hits, the hit/miss ledgers balance, and the
//! run completes (no deadlock between stripes, device queues, and the
//! retry machinery under injected faults).

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_types::RetryPolicy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const NODES: u32 = 4;
const CLIENTS_PER_NODE: u32 = 4;
const RANKS: usize = (NODES * CLIENTS_PER_NODE) as usize;
const N_FILES: u64 = 48;
const FILE_SIZE: usize = 256;
const EPOCHS: u64 = 3;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// Small deadline so injected drops cost milliseconds, not the defaults.
fn stress_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: Duration::from_millis(50),
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 5,
        breaker_cooldown: Duration::from_millis(200),
        jitter_seed: 0x57121BE5,
        ..RetryPolicy::default()
    }
}

#[test]
fn sixteen_ranks_three_epochs_byte_exact_under_faults() {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let cluster = Arc::new(
        Cluster::new(
            pfs,
            ClusterOptions::new(NODES, 1)
                .dataset_dir("/gpfs/train")
                .clients_per_node(CLIENTS_PER_NODE)
                .retry_policy(stress_retry()),
        )
        .unwrap(),
    );
    // Arm every endpoint: 30 % of calls delayed 1 ms (jitters the interleave
    // so stripes actually contend), 2 % dropped outright (exercises the
    // deadline/retry path concurrently with stripe traffic).
    for (i, addr) in cluster.fabric().endpoint_names().into_iter().enumerate() {
        cluster.fabric().fault_injector().set(
            &addr,
            FaultSpec {
                delay_prob: 0.3,
                delay: Duration::from_millis(1),
                drop_prob: 0.02,
                seed: 0xC0FF_EE00 ^ i as u64,
                ..FaultSpec::default()
            },
        );
    }

    let mut misses_after_first_epoch = 0u64;
    for epoch in 0..EPOCHS {
        let mut joins = Vec::new();
        for rank in 0..RANKS {
            let cluster = cluster.clone();
            joins.push(std::thread::spawn(move || {
                let client = cluster.client(rank);
                let mut order: Vec<u64> = (0..N_FILES).collect();
                // Each (rank, epoch) walks its own seeded shuffle — the
                // cross-rank interleave varies, the workload is reproducible.
                let mut rng = StdRng::seed_from_u64(0x5EED ^ ((rank as u64) << 16) ^ epoch);
                order.shuffle(&mut rng);
                for i in order {
                    let data = client
                        .read_file(&sample(i))
                        .unwrap_or_else(|e| panic!("rank {rank} epoch {epoch} file {i}: {e}"));
                    assert_eq!(
                        data,
                        MemStore::sample_content(i, FILE_SIZE),
                        "rank {rank} epoch {epoch}: corrupted bytes for file {i}"
                    );
                }
            }));
        }
        // Joining every rank is the epoch barrier.
        for j in joins {
            j.join().unwrap();
        }
        if epoch == 0 {
            misses_after_first_epoch = cluster.aggregate_metrics().cache_misses;
        }
    }

    let agg = cluster.aggregate_metrics();
    // Epochs 2 and 3 never missed: the whole dataset was resident after
    // epoch 1 (no eviction pressure in this configuration), so the miss
    // counter froze there.
    assert_eq!(
        agg.cache_misses, misses_after_first_epoch,
        "epochs >= 2 must be pure cache hits: {agg:?}"
    );
    assert!(agg.cache_hits > 0);
    // The ledgers balance: every server-side read was classified exactly
    // once, both by the cache counters and by the stripe counters.
    assert_eq!(agg.cache_hits + agg.cache_misses, agg.reads, "{agg:?}");
    assert_eq!(agg.stripe_hits + agg.stripe_misses, agg.reads, "{agg:?}");
    // Each file admitted through a stripe at least once, and the hot path
    // (epochs 2-3 plus epoch-1 re-reads) went through the fast hit arm.
    assert!(agg.stripe_misses >= N_FILES, "{agg:?}");
    assert!(agg.stripe_hits >= (EPOCHS - 1) * N_FILES, "{agg:?}");
    // The faults were genuinely armed — this run raced real injected
    // delays and drops, it did not just pass in fair weather.
    assert!(
        cluster.fabric().fault_injector().injected() > 0,
        "fault plan never fired"
    );
}
