//! End-to-end functional tests: a real multi-node HVAC allocation serving a
//! real DL-style workload, byte-for-byte.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_dl::loader::{BatchLoader, HvacReader, PfsReader};
use hvac_dl::DatasetSpec;
use hvac_pfs::{FileStore, MemStore};
use std::path::Path;
use std::sync::Arc;

fn synthetic_dataset(n_files: u64) -> (Arc<MemStore>, DatasetSpec) {
    let mut spec = DatasetSpec::imagenet21k();
    spec.train_samples = n_files;
    let pfs = Arc::new(MemStore::new());
    for i in 0..n_files {
        let size = (spec.size_of(i).bytes() as usize % 8_192).max(64);
        pfs.put(
            spec.path_of("/gpfs/train", i),
            MemStore::sample_content(i, size),
        );
    }
    (pfs, spec)
}

#[test]
fn hvac_stream_is_byte_identical_to_pfs_stream() {
    let (pfs, spec) = synthetic_dataset(48);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 2)
            .dataset_dir("/gpfs/train")
            .clients_per_node(1),
    )
    .unwrap();

    let loader = BatchLoader::new("/gpfs/train", spec, 4, 4, 0xACC);
    for epoch in 0..3 {
        for rank in 0..4u64 {
            let via_hvac = loader
                .load_epoch(
                    &HvacReader(cluster.client(rank as usize)),
                    epoch,
                    rank,
                    usize::MAX,
                )
                .expect("hvac epoch");
            let via_pfs = loader
                .load_epoch(&PfsReader(pfs.as_ref()), epoch, rank, usize::MAX)
                .expect("pfs epoch");
            assert_eq!(
                via_hvac, via_pfs,
                "epoch {epoch} rank {rank}: HVAC must deliver the PFS stream verbatim"
            );
        }
    }
}

#[test]
fn pfs_data_traffic_stops_after_first_epoch() {
    let (pfs, spec) = synthetic_dataset(40);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(5, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    let loader = BatchLoader::new("/gpfs/train", spec, 5, 4, 7);

    for rank in 0..5u64 {
        loader
            .load_epoch(
                &HvacReader(cluster.client(rank as usize)),
                0,
                rank,
                usize::MAX,
            )
            .unwrap();
    }
    let (_, reads_after_e1, _) = pfs.stats().snapshot();
    assert_eq!(reads_after_e1, 40, "epoch 1 fetches each file exactly once");

    for epoch in 1..4 {
        for rank in 0..5u64 {
            loader
                .load_epoch(
                    &HvacReader(cluster.client(rank as usize)),
                    epoch,
                    rank,
                    usize::MAX,
                )
                .unwrap();
        }
    }
    let (_, reads_final, _) = pfs.stats().snapshot();
    assert_eq!(reads_final, 40, "warm epochs never touch the PFS");

    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.pfs_copies, 40);
    assert_eq!(agg.cache_misses, 40);
    assert_eq!(agg.cache_hits, 3 * 40);
    assert!(agg.hit_rate() > 0.74 && agg.hit_rate() < 0.76);
}

#[test]
fn files_land_on_their_hash_homes_and_nowhere_else() {
    let (pfs, _spec) = synthetic_dataset(64);
    let cluster = Cluster::new(pfs, ClusterOptions::new(8, 1).dataset_dir("/gpfs/train")).unwrap();
    for i in 0..64u64 {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        cluster.client(0).read_file(Path::new(&path)).unwrap();
    }
    // Each file is resident exactly once across the allocation (one home).
    let counts = cluster.per_node_file_counts();
    assert_eq!(counts.iter().sum::<u64>(), 64);
    // And the predicted home holds it: recompute placement client-side.
    let client = cluster.client(0);
    for i in 0..64u64 {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        let addrs = client.replica_addrs(Path::new(&path));
        assert_eq!(addrs.len(), 1);
    }
}

#[test]
fn multiple_instances_share_one_node_cache() {
    let (pfs, _spec) = synthetic_dataset(30);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(2, 4).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    assert_eq!(cluster.n_servers(), 8);
    for i in 0..30u64 {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        cluster.client(1).read_file(Path::new(&path)).unwrap();
    }
    // 8 server instances, but only 2 physical caches.
    assert_eq!(cluster.per_node_file_counts().len(), 2);
    assert_eq!(cluster.per_node_file_counts().iter().sum::<u64>(), 30);
    assert_eq!(pfs.stats().snapshot().1, 30);
}

#[test]
fn purge_couples_cache_lifetime_to_job() {
    let (pfs, _spec) = synthetic_dataset(16);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(2, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    for i in 0..16u64 {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        cluster.client(0).read_file(Path::new(&path)).unwrap();
    }
    cluster.purge();
    assert_eq!(cluster.per_node_bytes().iter().sum::<u64>(), 0);
    // A new "job" re-fetches from the PFS.
    let path = "/gpfs/train/sample_00000003.bin";
    cluster.client(1).read_file(Path::new(path)).unwrap();
    assert_eq!(pfs.stats().snapshot().1, 17);
}
