//! Lock-order conformance: observed ⊆ static ⊆ declared hierarchy.
//!
//! Drives a real cluster workload — byte-exact reads under delay/drop
//! faults (cache misses, inflight coalescing, evictions), then membership
//! churn with online rebalancing — and compares three lock graphs:
//!
//! 1. **Observed**: the class-acquisition edges the hvac-sync debug
//!    tracker actually recorded while the workload ran
//!    ([`hvac_sync::dump_observed_edges`]).
//! 2. **Static**: the edges tidy's lockgraph scanner extracts from the
//!    workspace sources ([`tidy::lockgraph::analyze_workspace`]).
//! 3. **Declared**: [`hvac_sync::classes::HIERARCHY`].
//!
//! Every observed edge must be statically predicted (otherwise the
//! scanner has a blind spot — fix an annotation, not this test), and the
//! static graph must be hierarchy-clean. Coverage (fraction of static
//! edges the workload exercised) is printed, written to
//! `target/lockgraph/conformance.txt` for CI to archive, and ratcheted
//! against `[lockgraph] min-edge-coverage-pct` in tools/tidy/ratchet.toml.

#![cfg(debug_assertions)] // the runtime order tracker only records in debug builds

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_sync::classes;
use hvac_types::{NodeId, PlacementKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const NODES: u32 = 3;
const CLIENTS_PER_NODE: u32 = 2;
const RANKS: usize = (NODES * CLIENTS_PER_NODE) as usize;
const N_FILES: u64 = 32;
const FILE_SIZE: usize = 256;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// One pass over the dataset from every rank, all ranks in parallel.
fn epoch_pass(clients: &[Arc<hvac_core::HvacClient>]) {
    let joins: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(rank, client)| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..N_FILES {
                    let shifted = (i + rank as u64) % N_FILES;
                    let data = client
                        .read_file(&sample(shifted))
                        .unwrap_or_else(|e| panic!("rank {rank} file {shifted}: {e}"));
                    assert_eq!(data, MemStore::sample_content(shifted, FILE_SIZE));
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn observed_edges_are_statically_predicted_and_hierarchy_clean() {
    // --- Drive the workload: faulted reads, then churn + rebalance. ---
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let mut cluster = Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 2)
            .dataset_dir("/gpfs/train")
            .clients_per_node(CLIENTS_PER_NODE)
            .placement(PlacementKind::Ring),
    )
    .unwrap();
    for (i, addr) in cluster.fabric().endpoint_names().into_iter().enumerate() {
        cluster.fabric().fault_injector().set(
            &addr,
            FaultSpec {
                delay_prob: 0.2,
                delay: Duration::from_millis(1),
                seed: 0x10C_C0DE ^ i as u64,
                ..FaultSpec::default()
            },
        );
    }
    let clients: Vec<_> = (0..RANKS).map(|r| cluster.client(r).clone()).collect();
    epoch_pass(&clients); // cold: misses, inflight coalescing, inserts
    epoch_pass(&clients); // warm: hits
    cluster.remove_node(NodeId(1)).unwrap();
    cluster.wait_rebalance().expect("leave rebalance");
    cluster.add_node().unwrap();
    cluster.wait_rebalance().expect("join rebalance");
    epoch_pass(&clients);
    drop(cluster);

    // --- Observed: runtime edges between canonical classes only (unit
    // tests elsewhere in this process would use test.* labels). ---
    let canonical: BTreeSet<&str> = classes::all().into_iter().collect();
    let observed: BTreeSet<(String, String)> = hvac_sync::dump_observed_edges()
        .into_iter()
        .filter(|(a, b)| canonical.contains(a) && canonical.contains(b))
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    assert!(
        !observed.is_empty(),
        "workload recorded no nested acquisitions; the tracker or the workload is broken"
    );

    // --- Static: scan the live workspace sources. ---
    let root = tidy::workspace_root();
    let analysis = tidy::lockgraph::analyze_workspace(&root);
    assert!(
        analysis.violations.is_empty(),
        "static lock graph must be hierarchy-clean: {:?}",
        analysis.violations
    );
    let static_edges = analysis.edge_pairs();
    for (outer, inner) in &static_edges {
        assert!(
            classes::edge_allowed(outer, inner),
            "static edge {outer} -> {inner} contradicts classes::HIERARCHY"
        );
    }

    // --- Conformance: observed ⊆ static, with coverage ratchet. ---
    let unpredicted: Vec<_> = observed.difference(&static_edges).collect();
    assert!(
        unpredicted.is_empty(),
        "runtime observed edges the static scanner missed (add a \
         `// lockgraph: acquires <CONST>` annotation at the call site): \
         {unpredicted:?}"
    );
    let exercised = static_edges.intersection(&observed).count();
    let coverage_pct = 100 * exercised / static_edges.len().max(1);

    let mut report = String::new();
    report.push_str(&format!(
        "lockgraph conformance: {exercised}/{} static edges observed ({coverage_pct}%)\n",
        static_edges.len()
    ));
    for (outer, inner) in &static_edges {
        let mark = if observed.contains(&(outer.clone(), inner.clone())) {
            "observed"
        } else {
            "unexercised"
        };
        report.push_str(&format!("  {outer} -> {inner}: {mark}\n"));
    }
    print!("{report}");
    let artifact_dir = root.join("target/lockgraph");
    std::fs::create_dir_all(&artifact_dir).expect("create target/lockgraph");
    std::fs::write(artifact_dir.join("conformance.txt"), &report).expect("write report");

    let ratchet = tidy::Ratchet::load(&root.join("tools/tidy/ratchet.toml")).expect("ratchet");
    let floor = ratchet
        .lockgraph_floors
        .get("min-edge-coverage-pct")
        .copied()
        .unwrap_or(0);
    assert!(
        coverage_pct >= floor,
        "static-edge coverage {coverage_pct}% fell below the ratchet floor {floor}% \
         (tools/tidy/ratchet.toml [lockgraph]); the workload stopped exercising a \
         known nesting"
    );
}
