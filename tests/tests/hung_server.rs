//! Hung-server resilience (paper §III-H, the failure-semantics extension).
//!
//! A *hung* server is worse than a dead one: the fabric accepts the request
//! and simply never answers, so only a per-call deadline can unblock the
//! client. These tests inject hangs with the seeded [`FaultInjector`] and
//! verify the full degradation ladder — typed timeout → same-replica retry
//! → replica failover → circuit breaker → direct-PFS degradation — keeps an
//! epoch byte-correct and promptly served, never wedged.

use hvac_core::client::server_addr;
use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_types::RetryPolicy;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_FILES: u64 = 20;
const FILE_SIZE: usize = 256;

/// Tight budgets so a whole epoch against hung servers stays in test time:
/// 40 ms deadline, 2 attempts, 1 ms backoff, breaker after 2 failures.
fn tight_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: Duration::from_millis(40),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(10),
        jitter_seed: 0xDEAD_BEEF,
        ..RetryPolicy::default()
    }
}

fn cluster(nodes: u32, replication: u32) -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(nodes, 1)
            .dataset_dir("/gpfs/train")
            .replication(replication)
            .retry_policy(tight_retry()),
    )
    .unwrap();
    (pfs, cluster)
}

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// One replica hung (k=2): the epoch completes byte-correct via failover,
/// the timeout is typed and counted, and no read ever approaches the
/// 30-second RPC stall the paper's Mercury deployment suffered.
#[test]
fn hung_replica_epoch_completes_via_failover() {
    let (_pfs, cluster) = cluster(3, 2);
    cluster
        .fabric()
        .fault_injector()
        .set(&server_addr(0, 1), FaultSpec::always_hang(42));

    let client = cluster.client(1);
    let mut max_read = Duration::ZERO;
    for i in 0..N_FILES {
        let start = Instant::now();
        let data = client.read_file(&sample(i)).unwrap();
        max_read = max_read.max(start.elapsed());
        assert_eq!(
            data,
            MemStore::sample_content(i, FILE_SIZE),
            "file {i} corrupted under failover"
        );
    }

    let s = client.metrics().full_snapshot();
    assert!(s.timeouts > 0, "hangs surface as typed timeouts: {s:?}");
    assert!(s.failovers > 0, "hung home must fail over: {s:?}");
    assert_eq!(s.degraded_reads, 0, "replicas suffice, no PFS degradation");
    assert!(
        max_read < Duration::from_secs(5),
        "a read stalled {max_read:?}; one hung replica may cost retries \
         plus one failover, never a 30 s wedge"
    );
}

/// Everything hung (k=1): the client trips its breakers and completes the
/// epoch byte-correct straight from the PFS — HVAC degrades, it never
/// fails the application.
#[test]
fn all_servers_hung_epoch_degrades_to_pfs() {
    let (_pfs, cluster) = cluster(2, 1);
    for addr in cluster.fabric().endpoint_names() {
        cluster
            .fabric()
            .fault_injector()
            .set(&addr, FaultSpec::always_hang(7));
    }

    let client = cluster.client(0);
    let start = Instant::now();
    for i in 0..N_FILES {
        let data = client.read_file(&sample(i)).unwrap();
        assert_eq!(
            data,
            MemStore::sample_content(i, FILE_SIZE),
            "degraded read of file {i} corrupted"
        );
    }

    let s = client.metrics().full_snapshot();
    assert!(s.degraded_reads > 0, "PFS degradation engaged: {s:?}");
    assert!(s.timeouts > 0, "hangs were detected by deadline: {s:?}");
    assert!(s.breaker_trips > 0, "breakers tripped on the wedge: {s:?}");
    assert!(
        s.breaker_skips > 0,
        "later reads skipped the wedged servers: {s:?}"
    );
    // Once the breakers are open the epoch runs at PFS speed: the total
    // cost is a handful of initial deadlines, nowhere near one per read.
    let budget = tight_retry().rpc_timeout * 4 * 8;
    assert!(
        start.elapsed() < budget.max(Duration::from_secs(10)),
        "epoch took {:?}; breakers failed to bound the deadline cost",
        start.elapsed()
    );
}

/// The same seeded fault plan and jitter seed produce the same counter
/// values run-to-run — failures are reproducible, which is what makes them
/// debuggable.
#[test]
fn seeded_faults_are_deterministic() {
    let run = || {
        let (_pfs, cluster) = cluster(2, 2);
        cluster
            .fabric()
            .fault_injector()
            .set(&server_addr(1, 1), FaultSpec::always_hang(99));
        let client = cluster.client(0);
        for i in 0..N_FILES {
            client.read_file(&sample(i)).unwrap();
        }
        let s = client.metrics().full_snapshot();
        (
            s.reads,
            s.bytes,
            s.timeouts,
            s.retries,
            s.failovers,
            s.breaker_trips,
            s.breaker_skips,
            s.degraded_reads,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fixed seeds must reproduce the same epoch");
    assert!(first.2 > 0, "the hung replica was actually exercised");
}

/// Drop faults (request lost before the server ever sees it) behave like
/// hangs from the client's perspective: deadline, retry, failover.
#[test]
fn dropped_requests_fail_over_like_hangs() {
    let (_pfs, cluster) = cluster(2, 2);
    cluster
        .fabric()
        .fault_injector()
        .set(&server_addr(0, 1), FaultSpec::always_drop(5));

    let client = cluster.client(0);
    for i in 0..N_FILES {
        let data = client.read_file(&sample(i)).unwrap();
        assert_eq!(data, MemStore::sample_content(i, FILE_SIZE));
    }
    let s = client.metrics().full_snapshot();
    assert!(s.timeouts > 0, "drops surface as deadline misses: {s:?}");
    assert_eq!(s.degraded_reads, 0, "the healthy replica carries the load");
}
