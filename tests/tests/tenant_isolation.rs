//! Multi-tenant isolation tier: two training jobs share one allocation and
//! one of them misbehaves.
//!
//! The victim job runs a normal paced epoch while the aggressor job floods
//! the same nodes with an unbounded read loop. With a weighted-fair plan
//! installed, admission control sheds the aggressor's overflow to the PFS
//! degradation ladder while the victim's reads stay byte-exact — including
//! under injected drop/delay faults. Exporting `HVAC_TRANSPORT=tcp|unix`
//! reruns the whole tier over real sockets, like every other tier.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_core::qos::QosOptions;
use hvac_net::FaultSpec;
use hvac_pfs::MemStore;
use hvac_storage::DeviceModel;
use hvac_types::{ByteSize, JobId, JobWeights, RetryPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N_FILES: u64 = 32;
const FILE_SIZE: usize = 4 * 1024;
const RANKS: usize = 8;
const VICTIM: JobId = JobId(7);
const AGGRESSOR: JobId = JobId(13);

/// Victim gets 4× the device weight and half the cache; the aggressor gets
/// weight 1 and a quarter of the cache.
fn plan() -> JobWeights {
    JobWeights::parse("7=4@0.5,13=1@0.25").unwrap()
}

/// Small queue caps so the aggressor's flood actually overflows its queue
/// (cap = `queue_cap × weight`), and a realistic SSD model so device time —
/// the resource QoS arbitrates — is nonzero.
fn tenant_cluster(retry: RetryPolicy) -> (Arc<MemStore>, Cluster) {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), N_FILES, |_| FILE_SIZE);
    let mut options = ClusterOptions::new(4, 1)
        .dataset_dir("/gpfs/train")
        .clients_per_node(2)
        .cache_capacity(ByteSize(64 * 1024))
        .job_weights(plan())
        .qos(QosOptions {
            max_inflight: 1,
            queue_cap: 1,
            quantum: 64 * 1024,
        })
        .device_model(DeviceModel::sata_ssd())
        .retry_policy(retry);
    // Enough RPC workers per server that concurrent tenant requests pile up
    // on the scheduler (with the default 2 workers nothing ever queues).
    options.rpc_workers = 8;
    let cluster = Cluster::new(pfs.clone(), options).unwrap();
    (pfs, cluster)
}

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

/// Spawn `RANKS` aggressor threads, each hammering its own tenant client
/// with an unbounded read loop until `stop` flips. Reads may be shed to the
/// degradation ladder but must still return correct bytes.
fn flood(cluster: &Cluster, stop: &Arc<AtomicBool>) -> Vec<std::thread::JoinHandle<()>> {
    (0..RANKS)
        .map(|rank| {
            let client = cluster.client_for_job(AGGRESSOR).unwrap();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = rank as u64;
                while !stop.load(Ordering::Relaxed) {
                    let idx = i % N_FILES;
                    let data = client.read_file(&sample(idx)).unwrap();
                    assert_eq!(
                        data,
                        MemStore::sample_content(idx, FILE_SIZE),
                        "aggressor read of file {idx} corrupted"
                    );
                    i += 3; // stride so ranks do not lock-step
                }
            })
        })
        .collect()
}

/// Run one victim epoch across `RANKS` parallel ranks, byte-checking every
/// file, and return when all ranks finish.
fn victim_epoch(cluster: &Cluster) {
    let mut joins = Vec::new();
    for rank in 0..RANKS {
        let client = cluster.client_for_job(VICTIM).unwrap();
        joins.push(std::thread::spawn(move || {
            for i in 0..N_FILES {
                let idx = (i + rank as u64 * 5) % N_FILES; // cheap shuffle
                let data = client.read_file(&sample(idx)).unwrap();
                assert_eq!(
                    data,
                    MemStore::sample_content(idx, FILE_SIZE),
                    "victim rank {rank} read of file {idx} corrupted"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

fn tenant_row(cluster: &Cluster, job: JobId) -> hvac_core::metrics::TenantServerSnapshot {
    cluster
        .tenant_metrics()
        .into_iter()
        .find(|r| r.job == job.0)
        .unwrap_or_else(|| panic!("no tenant row for job {}", job.0))
}

/// The core QoS story: a flooding tenant gets shed, the victim's epoch is
/// byte-exact, and both tenants' reads are accounted to the right job.
#[test]
fn misbehaving_tenant_is_shed_while_victim_stays_byte_exact() {
    let (_pfs, cluster) = tenant_cluster(RetryPolicy::default());
    let stop = Arc::new(AtomicBool::new(false));
    let aggressors = flood(&cluster, &stop);

    // Two epochs so the second one runs against a fully warmed flood.
    victim_epoch(&cluster);
    victim_epoch(&cluster);

    stop.store(true, Ordering::Relaxed);
    for j in aggressors {
        j.join().unwrap();
    }

    let victim = tenant_row(&cluster, VICTIM);
    let aggressor = tenant_row(&cluster, AGGRESSOR);
    assert!(victim.reads > 0, "victim reads accounted: {victim:?}");
    assert!(victim.admitted > 0, "victim admitted: {victim:?}");
    assert!(victim.served_bytes > 0, "victim bytes: {victim:?}");
    assert!(
        aggressor.shed > 0,
        "the flood must overflow the aggressor's queue cap: {aggressor:?}"
    );
    assert!(aggressor.reads > 0, "aggressor still served: {aggressor:?}");
    // Tenant counters are disjoint: job 0 (the built-in legacy ranks) did
    // not read anything in this test.
    assert_eq!(
        cluster
            .tenant_metrics()
            .into_iter()
            .find(|r| r.job == 0)
            .map_or(0, |r| r.reads),
        0,
        "no reads may leak into the default namespace"
    );
}

/// The same contended two-tenant run with drop and delay faults on every
/// server: the victim epoch still completes byte-exact (drops retry or fail
/// over, delays are absorbed by deadlines) on whichever transport
/// `HVAC_TRANSPORT` selects.
#[test]
fn victim_stays_byte_exact_under_drop_and_delay_faults() {
    // Tight deadlines so injected drops cost milliseconds, not the
    // default multi-second RPC budget.
    let retry = RetryPolicy {
        rpc_timeout: Duration::from_millis(80),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 4,
        breaker_cooldown: Duration::from_millis(200),
        jitter_seed: 0x007E_4A17,
        ..RetryPolicy::default()
    };
    let (_pfs, cluster) = tenant_cluster(retry);
    for (i, addr) in cluster.fabric().endpoint_names().iter().enumerate() {
        cluster.fabric().fault_injector().set(
            addr,
            FaultSpec {
                drop_prob: 0.05,
                delay_prob: 0.2,
                delay: Duration::from_millis(2),
                seed: 0x000F_A017 + i as u64,
                ..FaultSpec::default()
            },
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let aggressors = flood(&cluster, &stop);
    victim_epoch(&cluster);
    stop.store(true, Ordering::Relaxed);
    for j in aggressors {
        j.join().unwrap();
    }

    let victim = tenant_row(&cluster, VICTIM);
    assert!(victim.reads > 0 && victim.served_bytes > 0, "{victim:?}");
    assert!(
        cluster.fabric().fault_injector().injected() > 0,
        "the fault plan must actually have fired"
    );
}

/// Backward compatibility inside the tier: with a tenant plan installed,
/// the built-in job-0 ranks (the legacy namespace) still run a byte-exact
/// epoch and their traffic lands on the job-0 row.
#[test]
fn default_namespace_epoch_is_unaffected_by_the_plan() {
    let (_pfs, cluster) = tenant_cluster(RetryPolicy::default());
    for i in 0..N_FILES {
        let data = cluster
            .client((i % RANKS as u64) as usize)
            .read_file(&sample(i))
            .unwrap();
        assert_eq!(data, MemStore::sample_content(i, FILE_SIZE));
    }
    let legacy = tenant_row(&cluster, JobId::DEFAULT);
    assert_eq!(legacy.reads, N_FILES, "every legacy read accounted");
    assert_eq!(legacy.shed, 0, "an uncontended epoch is never shed");
    // Per-tenant cache quotas: the plan carves 50 % + 25 %; job 0 is
    // unlimited, so the epoch caches normally and mostly hits on re-read.
    for i in 0..N_FILES {
        let data = cluster
            .client((i % RANKS as u64) as usize)
            .read_file(&sample(i))
            .unwrap();
        assert_eq!(data, MemStore::sample_content(i, FILE_SIZE));
    }
    let agg = cluster.aggregate_metrics();
    assert!(agg.cache_hits > 0, "warm re-read should hit: {agg:?}");
}
