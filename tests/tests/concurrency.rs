//! Concurrency stress: many application threads hammering one allocation.
//! The single-copy invariant (paper §III-D: "mutex lock on shared queue ...
//! to avoid repeated copying") must hold under real races, and no bytes may
//! be corrupted.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::{FileStore, MemStore};
use hvac_types::ByteSize;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
}

#[test]
fn racing_ranks_fetch_each_file_exactly_once() {
    let n_files = 32u64;
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), n_files, |_| 2048);
    let cluster = Arc::new(
        Cluster::new(
            pfs.clone(),
            ClusterOptions::new(4, 2)
                .dataset_dir("/gpfs/train")
                .clients_per_node(2),
        )
        .unwrap(),
    );

    // 8 ranks all read the SAME files at the same time (worst-case race).
    let mut joins = Vec::new();
    for rank in 0..8usize {
        let cluster = cluster.clone();
        joins.push(std::thread::spawn(move || {
            for round in 0..3u64 {
                for i in 0..n_files {
                    let idx = (i + round * 7) % n_files;
                    let data = cluster.client(rank).read_file(&sample(idx)).unwrap();
                    assert_eq!(data, MemStore::sample_content(idx, 2048));
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Exactly one PFS fetch per file despite 8 x 3 racing epochs.
    assert_eq!(pfs.stats().snapshot().1, n_files);
    let agg = cluster.aggregate_metrics();
    assert_eq!(agg.pfs_copies, n_files);
    assert_eq!(agg.reads, 8 * 3 * n_files);
    assert!(
        agg.dedup_waits > 0,
        "concurrent first reads should have piggybacked on in-flight copies"
    );
}

#[test]
fn concurrent_reads_under_eviction_pressure_never_corrupt() {
    let n_files = 64u64;
    let file_size = 1024usize;
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), n_files, |_| file_size);
    let cluster = Arc::new(
        Cluster::new(
            pfs,
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                // Aggregate cache holds ~40% of the dataset: heavy churn.
                .cache_capacity(ByteSize(n_files * file_size as u64 / 10)),
        )
        .unwrap(),
    );
    let mut joins = Vec::new();
    for t in 0..6usize {
        let cluster = cluster.clone();
        joins.push(std::thread::spawn(move || {
            for round in 0..2u64 {
                for i in 0..n_files {
                    let idx = (i * (t as u64 + 3) + round) % n_files;
                    let data = cluster
                        .client(t % 4)
                        .read_file(&sample(idx))
                        .unwrap_or_else(|e| panic!("thread {t} file {idx}: {e}"));
                    assert_eq!(
                        data,
                        MemStore::sample_content(idx, file_size),
                        "thread {t} got corrupted bytes for file {idx}"
                    );
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let agg = cluster.aggregate_metrics();
    assert!(agg.evictions > 0, "pressure should have forced evictions");
}

#[test]
fn concurrent_open_read_close_cycles_on_shared_fds() {
    // Each thread drives its own descriptors; the client fd table is shared
    // state and must stay consistent.
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), 4, |_| 8192);
    let cluster =
        Arc::new(Cluster::new(pfs, ClusterOptions::new(2, 1).dataset_dir("/gpfs/train")).unwrap());
    let client = cluster.client(0).clone();
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let client = client.clone();
        joins.push(std::thread::spawn(move || {
            for round in 0..40u64 {
                let idx = (t + round) % 4;
                let fd = client.open(&sample(idx)).unwrap();
                let a = client.read(fd, 100).unwrap();
                let b = client.pread(fd, 0, 100).unwrap();
                assert_eq!(a, b);
                assert_eq!(
                    client.lseek(fd, 0, hvac_core::client::Whence::Cur).unwrap(),
                    100
                );
                client.close(fd).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let (opens, _, _, closes, _, _) = client.metrics().snapshot();
    assert_eq!(opens, 8 * 40);
    assert_eq!(closes, 8 * 40);
}
