//! The HVAC server instance (paper §III-C, §III-D).
//!
//! Each instance owns a **shared FIFO queue** drained by dedicated
//! **data-mover threads**. RPC handler threads enqueue copy work and wait;
//! the mover fetches the file from the PFS exactly once even when many
//! clients race for it (the paper's "mutex lock on shared queue to ...
//! avoid repeated copying"), inserts it into the node's cache, and wakes all
//! waiters. Servers never talk to each other — a file's home is computed by
//! every client independently.
//!
//! Multiple instances on one node (HVAC (2×1), (4×1)) share the node's
//! [`CacheManager`] but have private queues and movers, which is exactly the
//! parallelism the paper varies in Fig. 9(b).

use crate::cache::CacheManager;
use crate::metrics::ServerMetrics;
use crate::protocol::{Request, Response};
use crate::qos::{Admit, QosOptions, TenantScheduler};
use crate::view::ViewHandle;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hvac_hash::pathhash::{hash_path, tenant_key};
use hvac_net::fabric::{Fabric, Reply, RpcHandler, ServerEndpoint};
use hvac_net::pool::BufferPool;
use hvac_net::reassemble_bulk_pooled;
use hvac_pfs::FileStore;
use hvac_storage::default_shard_count;
use hvac_sync::{classes, OrderedMutex, OrderedMutexGuard};
use hvac_types::{ClusterView, HvacError, JobId, JobWeights, Result};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct HvacServerOptions {
    /// Data-mover threads draining the FIFO queue (paper default: 1).
    pub movers: usize,
    /// RPC handler threads.
    pub rpc_workers: usize,
    /// Per-tenant weighted-fair-share plan. Empty (the default) disables
    /// QoS entirely: every read is admitted immediately and nothing is
    /// shed, which is the single-tenant behaviour of earlier versions.
    pub job_weights: JobWeights,
    /// Scheduler tuning (only consulted when `job_weights` is non-empty).
    pub qos: QosOptions,
}

impl Default for HvacServerOptions {
    fn default() -> Self {
        Self {
            movers: 1,
            rpc_workers: 4,
            job_weights: JobWeights::default(),
            qos: QosOptions::default(),
        }
    }
}

type CopyResult = std::result::Result<(), Arc<HvacError>>;

struct CopyJob {
    /// Application-space source path on the PFS.
    path: PathBuf,
    /// Cache key: equals `path` for whole-file caching; a synthetic
    /// `path#offset+len` key for segment-level caching (§III-E).
    key: PathBuf,
    /// `Some((offset, len))` restricts the copy to that byte range.
    range: Option<(u64, u64)>,
    /// The mover generation this job was enqueued under; a crash-stop bumps
    /// the generation, so stale jobs are discarded instead of resurrecting
    /// pre-crash state into the wiped cache.
    generation: u64,
}

type Waiters = HashMap<PathBuf, Vec<Sender<CopyResult>>>;

/// The in-flight dedup table, lock-striped by cache-key hash so concurrent
/// first-epoch fetches of *distinct* files admit in parallel instead of
/// funnelling through one global mutex. All stripes share the
/// `SERVER_INFLIGHT_STRIPE` class (a thread holds at most one stripe at a
/// time), and the stripe count mirrors the store's shard count so the two
/// striped layers scale together.
struct InflightTable {
    stripes: Vec<OrderedMutex<Waiters>>,
    /// `stripes.len() - 1`; the count is a power of two.
    mask: u64,
}

impl InflightTable {
    fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Self {
            stripes: (0..n)
                .map(|_| OrderedMutex::new(classes::SERVER_INFLIGHT_STRIPE, HashMap::new()))
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// The stripe index a cache key maps to.
    fn stripe_of(&self, key: &Path) -> usize {
        (hash_path(key).0 & self.mask) as usize
    }

    /// Lock stripe `idx`, counting the acquisition as contended on
    /// `metrics` when another thread holds it at that moment.
    fn lock(&self, idx: usize, metrics: &ServerMetrics) -> OrderedMutexGuard<'_, Waiters> {
        match self.stripes[idx].try_lock() {
            Some(guard) => guard,
            None => {
                metrics.stripe_contended(idx);
                self.stripes[idx].lock()
            }
        }
    }

    /// Whether no copy is in flight anywhere (stripes inspected one at a
    /// time; the answer is advisory, which is all drain polling needs).
    fn is_empty(&self) -> bool {
        self.stripes.iter().all(|stripe| stripe.lock().is_empty())
    }

    /// Crash-stop: drain every stripe (strictly one at a time) and error
    /// out all parked waiters with `ServerDown`. The sends happen with no
    /// stripe lock held.
    fn wipe(&self) {
        let mut victims: Vec<Vec<Sender<CopyResult>>> = Vec::new();
        for stripe in &self.stripes {
            victims.extend(std::mem::take(&mut *stripe.lock()).into_values());
        }
        for senders in victims {
            for w in senders {
                let _ = w.send(Err(Arc::new(HvacError::ServerDown(
                    "crash-stop: in-flight copy aborted".into(),
                ))));
            }
        }
    }
}

/// The data-mover machinery: FIFO queue + threads + striped in-flight
/// dedup table.
struct DataMover {
    queue_tx: Sender<CopyJob>,
    // lockgraph: inflight -> SERVER_INFLIGHT_STRIPE
    inflight: Arc<InflightTable>,
    /// Bumped by a crash-stop; movers discard jobs from older generations.
    generation: Arc<AtomicU64>,
    threads: OrderedMutex<Vec<JoinHandle<()>>>,
}

impl DataMover {
    fn spawn(
        cache: Arc<CacheManager>,
        pfs: Arc<dyn FileStore>,
        metrics: Arc<ServerMetrics>,
        movers: usize,
        name: &str,
    ) -> Result<Self> {
        let (queue_tx, queue_rx) = unbounded::<CopyJob>();
        let inflight = Arc::new(InflightTable::new(default_shard_count()));
        let generation = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::with_capacity(movers.max(1));
        for m in 0..movers.max(1) {
            let rx: Receiver<CopyJob> = queue_rx.clone();
            let cache = cache.clone();
            let pfs = pfs.clone();
            let metrics = metrics.clone();
            let inflight = inflight.clone();
            let generation = generation.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hvac-mover-{name}-{m}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A crash-stop wiped this job's waiters; executing
                        // it would resurrect pre-crash state into the
                        // freshly-emptied cache, so skip it entirely (any
                        // post-crash request for the same key enqueued its
                        // own job under the new generation).
                        if job.generation != generation.load(Ordering::Relaxed) {
                            continue;
                        }
                        // Step ⑥ of §III-D: copy PFS -> node-local store.
                        let result: CopyResult = (|| {
                            let data = match job.range {
                                None => pfs.read_all(&job.path).map_err(Arc::new)?,
                                Some((offset, len)) => pfs
                                    .read_at(&job.path, offset, len as usize)
                                    .map_err(Arc::new)?,
                            };
                            let n = data.len() as u64;
                            let outcome = cache.insert(&job.key, data).map_err(Arc::new)?;
                            metrics.pfs_copies.fetch_add(1, Ordering::Relaxed);
                            metrics.pfs_bytes.fetch_add(n, Ordering::Relaxed);
                            metrics
                                .evictions
                                .fetch_add(outcome.evicted.len() as u64, Ordering::Relaxed);
                            Ok(())
                        })();
                        let idx = inflight.stripe_of(&job.key);
                        let waiters = inflight
                            .lock(idx, &metrics)
                            .remove(&job.key)
                            .unwrap_or_default();
                        for w in waiters {
                            let _ = w.send(result.clone());
                        }
                    }
                });
            match handle {
                Ok(h) => threads.push(h),
                Err(e) => {
                    // Closing the queue lets the already-spawned movers exit.
                    drop(queue_tx);
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(HvacError::Io(e));
                }
            }
        }
        Ok(Self {
            queue_tx,
            inflight,
            generation,
            threads: OrderedMutex::new(classes::SERVER_THREADS, threads),
        })
    }

    /// Crash-stop: discard every queued copy job (by bumping the
    /// generation) and error out all parked waiters.
    fn crash(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.inflight.wipe();
    }

    /// Fire-and-forget staging: enqueue a copy of `path` (cached under
    /// `key`, which namespaces it by tenant) unless it is resident or
    /// already in flight (used by the §IV-C prefetch extension). Returns
    /// whether a new copy job was enqueued.
    fn request_copy(
        &self,
        cache: &CacheManager,
        metrics: &ServerMetrics,
        path: &Path,
        key: &Path,
    ) -> bool {
        if cache.contains(key) {
            return false;
        }
        let idx = self.inflight.stripe_of(key);
        let mut inflight = self.inflight.lock(idx, metrics);
        // lockgraph: acquires STORE_SHARD
        if cache.contains(key) || inflight.contains_key(key) {
            return false;
        }
        inflight.insert(key.to_path_buf(), Vec::new());
        self.queue_tx
            .send(CopyJob {
                path: path.to_path_buf(),
                key: key.to_path_buf(),
                range: None,
                generation: self.generation.load(Ordering::Relaxed),
            })
            .is_ok()
    }

    /// Make sure cache entry `key` (sourced from `path`, optionally a byte
    /// range of it) is resident, returning `true` if it already was (a cache
    /// hit) and `false` if this call had to wait for a PFS copy.
    fn ensure_cached(
        &self,
        cache: &CacheManager,
        metrics: &ServerMetrics,
        path: &Path,
        key: &Path,
        range: Option<(u64, u64)>,
    ) -> Result<bool> {
        let idx = self.inflight.stripe_of(key);
        if cache.contains(key) {
            metrics.stripe_hit(idx);
            return Ok(true);
        }
        let (tx, rx) = bounded::<CopyResult>(1);
        {
            let mut inflight = self.inflight.lock(idx, metrics);
            // Re-check under the lock: the mover may have just finished.
            // lockgraph: acquires STORE_SHARD
            if cache.contains(key) {
                metrics.stripe_hit(idx);
                return Ok(true);
            }
            metrics.stripe_miss(idx);
            match inflight.get_mut(key) {
                Some(waiters) => {
                    // Piggyback on the in-flight copy (§III-D dedup).
                    waiters.push(tx);
                    metrics.dedup_waits.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    inflight.insert(key.to_path_buf(), vec![tx]);
                    self.queue_tx
                        .send(CopyJob {
                            path: path.to_path_buf(),
                            key: key.to_path_buf(),
                            range,
                            generation: self.generation.load(Ordering::Relaxed),
                        })
                        .map_err(|_| HvacError::Rpc("data mover queue closed".into()))?;
                }
            }
        }
        match rx.recv() {
            Ok(Ok(())) => Ok(false),
            Ok(Err(e)) => Err(clone_error(&e)),
            Err(_) => Err(HvacError::Rpc("data mover died".into())),
        }
    }
}

/// Cache key of a file segment: `<path>#<offset>+<len>`.
pub fn segment_key(path: &Path, offset: u64, len: u64) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(format!("#{offset}+{len}"));
    PathBuf::from(s)
}

/// Rebuild an owned error from a shared one (HvacError is not `Clone`
/// because it can wrap `io::Error`).
fn clone_error(e: &HvacError) -> HvacError {
    match e {
        HvacError::NotFound(p) => HvacError::NotFound(p.clone()),
        HvacError::CapacityExhausted {
            requested,
            capacity,
        } => HvacError::CapacityExhausted {
            requested: *requested,
            capacity: *capacity,
        },
        HvacError::ServerDown(s) => HvacError::ServerDown(s.clone()),
        HvacError::RpcTimeout { addr, elapsed } => HvacError::RpcTimeout {
            addr: addr.clone(),
            elapsed: *elapsed,
        },
        HvacError::Remote { code, message } => HvacError::Remote {
            code: *code,
            message: message.clone(),
        },
        HvacError::StaleView { current_epoch } => HvacError::StaleView {
            current_epoch: *current_epoch,
        },
        other => HvacError::Rpc(other.to_string()),
    }
}

/// One HVAC server instance.
pub struct HvacServer {
    cache: Arc<CacheManager>,
    pfs: Arc<dyn FileStore>,
    metrics: Arc<ServerMetrics>,
    mover: DataMover,
    options: HvacServerOptions,
    /// The membership view this instance believes in. Requests carrying an
    /// older epoch are bounced with [`Response::StaleView`] so the sender
    /// can re-resolve ownership (the stale-view redirect protocol).
    view: Arc<ViewHandle>,
    /// Slab pool for batch-reply reassembly: the concatenated bulk buffer is
    /// recycled instead of hitting the allocator once per batch RPC.
    pool: BufferPool,
    /// Weighted-fair admission over the device read path. Pass-through when
    /// no weights plan is configured.
    sched: TenantScheduler,
}

impl HvacServer {
    /// Build a server instance over the node's cache and the shared PFS.
    ///
    /// The server starts on the solo epoch-0 view; a cluster harness (or
    /// deployment agent) installs the real membership via
    /// [`Self::install_view`]. Epoch-0 requests — the static-allocation
    /// wire format — are always accepted.
    pub fn new(
        cache: Arc<CacheManager>,
        pfs: Arc<dyn FileStore>,
        options: HvacServerOptions,
        name: &str,
    ) -> Result<Arc<Self>> {
        let metrics = Arc::new(ServerMetrics::with_stripes(default_shard_count()));
        let mover = DataMover::spawn(
            cache.clone(),
            pfs.clone(),
            metrics.clone(),
            options.movers,
            name,
        )?;
        let sched = TenantScheduler::with_options(options.job_weights.clone(), options.qos);
        Ok(Arc::new(Self {
            cache,
            pfs,
            metrics,
            mover,
            options,
            view: ViewHandle::new(ClusterView::initial(1, 1)?),
            pool: BufferPool::new(),
            sched,
        }))
    }

    /// This instance's metrics.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The node cache shared with sibling instances.
    pub fn cache(&self) -> &Arc<CacheManager> {
        &self.cache
    }

    /// Crash-stop this instance's volatile state: queued copy jobs are
    /// discarded, every parked waiter is errored out with `ServerDown`,
    /// and the node cache is purged. The threads and endpoint survive —
    /// a restarted server answers at the same address but `ENOENT`s
    /// everything it used to own, which is the crash-stop model DESIGN.md
    /// §6.1 describes (the harness-level wrapper is
    /// `Cluster::crash_node`).
    pub fn crash(&self) {
        self.mover.crash();
        self.cache.purge();
    }

    /// Install a (strictly newer) membership view. Returns whether the
    /// view advanced; older or equal epochs are ignored.
    pub fn install_view(&self, view: Arc<ClusterView>) -> bool {
        self.view.install(view)
    }

    /// Snapshot of this instance's current membership view.
    pub fn view(&self) -> Arc<ClusterView> {
        self.view.snapshot()
    }

    /// Register this server on the fabric under `addr`.
    pub fn serve(self: &Arc<Self>, fabric: &Arc<Fabric>, addr: &str) -> Result<ServerEndpoint> {
        let this = self.clone();
        fabric.serve(addr, self.options.rpc_workers, this)
    }

    /// Handle one decoded request under the default (legacy) tenant — the
    /// entry point unit tests and the LD_PRELOAD single-process mode use.
    pub fn handle_request(&self, req: Request) -> (Response, Option<Bytes>) {
        self.handle_request_for(JobId::DEFAULT, req)
    }

    /// Handle one decoded request on behalf of tenant `job`. Cache entries
    /// (and in-flight dedup slots) are keyed under the tenant namespace, so
    /// two jobs never share bytes or eviction fate; PFS operations always
    /// use the raw application path.
    pub fn handle_request_for(&self, job: JobId, req: Request) -> (Response, Option<Bytes>) {
        match req {
            Request::Stat { path } => {
                self.metrics.stats_ops.fetch_add(1, Ordering::Relaxed);
                let size = match self.cache.size_of(&tenant_key(job, &path)) {
                    Some(sz) => Ok(sz.bytes()),
                    None => self.pfs.open_meta(&path).map(|m| m.size),
                };
                match size {
                    Ok(size) => (Response::Stat { size }, None),
                    Err(e) => (Response::from_error(&e), None),
                }
            }
            Request::Read { path, offset, len } => match self.read(job, &path, offset, len) {
                Ok((total_size, cache_hit, data)) => (
                    Response::Data {
                        total_size,
                        cache_hit,
                    },
                    Some(data),
                ),
                Err(e) => (Response::from_error(&e), None),
            },
            Request::Close { path: _ } => {
                // Out-of-band teardown (§III-D step ⑧). The server keeps no
                // per-descriptor state, so this is purely an accounting ping.
                self.metrics.closes.fetch_add(1, Ordering::Relaxed);
                (Response::Ok, None)
            }
            Request::Purge => {
                self.cache.purge();
                (Response::Ok, None)
            }
            Request::ReadSegment { path, offset, len } => {
                match self.read_segment(job, &path, offset, len) {
                    Ok((cache_hit, data)) => (
                        Response::Data {
                            // total_size of the *segment*; the client tracks
                            // whole-file size from its open-time stat.
                            total_size: data.len() as u64,
                            cache_hit,
                        },
                        Some(data),
                    ),
                    Err(e) => (Response::from_error(&e), None),
                }
            }
            Request::Prefetch { paths } => {
                for path in &paths {
                    let key = tenant_key(job, path);
                    if self
                        .mover
                        .request_copy(&self.cache, &self.metrics, path, &key)
                    {
                        self.metrics.prefetches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                (Response::Ok, None)
            }
            Request::Batch { items } => {
                self.metrics.batch_rpcs.fetch_add(1, Ordering::Relaxed);
                let mut lens = Vec::with_capacity(items.len());
                let mut chunks = Vec::with_capacity(items.len());
                for item in &items {
                    match self.read_segment(job, Path::new(&item.path), item.offset, item.len) {
                        Ok((_hit, data)) if data.len() <= u32::MAX as usize => {
                            lens.push(data.len() as u32);
                            chunks.push(data);
                        }
                        Ok(_) => {
                            return (
                                Response::from_error(&HvacError::Protocol(
                                    "batch item payload exceeds the u32 length field".into(),
                                )),
                                None,
                            )
                        }
                        // All-or-nothing: one failed item fails the batch;
                        // the client re-reads every item through the
                        // per-segment retry/failover ladder.
                        Err(e) => return (Response::from_error(&e), None),
                    }
                }
                // lockgraph: acquires NET_POOL
                let bulk = reassemble_bulk_pooled(&chunks, &self.pool);
                (Response::Batch { lens }, Some(bulk))
            }
        }
    }

    /// Block until no prefetch copies are in flight (test/benchmark helper;
    /// production callers just keep training — demand reads piggyback on
    /// in-flight copies via the §III-D dedup).
    pub fn drain_prefetches(&self) {
        loop {
            if self.mover.inflight.is_empty() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Weighted-fair admission for one device read of `cost` bytes on
    /// behalf of `job`. `None` means the read was shed: it must be served
    /// via the PFS-bypass ladder instead of touching the cache/device path.
    /// The returned grant is RAII — dropping it frees the device slot.
    fn admit(&self, job: JobId, cost: u64) -> Option<crate::qos::AdmitGrant<'_>> {
        match self.sched.admit(job, cost) {
            Admit::Granted(grant) => {
                self.metrics.tenant_admit(job.0);
                Some(grant)
            }
            Admit::Shed => {
                self.metrics.tenant_shed(job.0);
                None
            }
        }
    }

    /// Segment-granular read (§III-E alternative): cache and serve only the
    /// requested byte range, keyed separately from whole-file entries (and
    /// per tenant).
    fn read_segment(
        &self,
        job: JobId,
        path: &Path,
        offset: u64,
        len: u64,
    ) -> Result<(bool, Bytes)> {
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        let Some(_grant) = self.admit(job, len) else {
            // Over-limit tenant: degrade to the PFS ladder (§III-G) rather
            // than queueing behind well-behaved tenants' device reads.
            let (_, hit, data) = self.pfs_bypass_read(job, path, offset, len)?;
            return Ok((hit, data));
        };
        let key = segment_key(&tenant_key(job, path), offset, len);
        for _ in 0..4 {
            let was_hit = match self.mover.ensure_cached(
                &self.cache,
                &self.metrics,
                path,
                &key,
                Some((offset, len)),
            ) {
                Ok(hit) => hit,
                Err(HvacError::CapacityExhausted { .. }) => {
                    let (_, hit, data) = self.pfs_bypass_read(job, path, offset, len)?;
                    return Ok((hit, data));
                }
                Err(other) => return Err(other),
            };
            match self.cache.read_all(&key) {
                Some(data) => {
                    if was_hit {
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.metrics
                        .served_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    self.metrics.tenant_read(job.0, data.len() as u64);
                    return Ok((was_hit, data));
                }
                None => continue, // evicted between ensure and read
            }
        }
        // Every retry lost the race to eviction (cache thrashing). Serve
        // from the PFS directly rather than failing the read — degraded,
        // not dead — and count the event honestly instead of guessing a
        // hit/miss classification.
        self.metrics.eviction_races.fetch_add(1, Ordering::Relaxed);
        let (_, hit, data) = self.pfs_bypass_read(job, path, offset, len)?;
        Ok((hit, data))
    }

    /// Serve a read straight from the PFS without caching — the fallback
    /// when the cache refuses admission (file larger than the device, or a
    /// pinned MinIO-style cache that is full) and the destination of shed
    /// over-limit tenants. CoorDL semantics: un-admitted files are still
    /// served, just not accelerated.
    fn pfs_bypass_read(
        &self,
        job: JobId,
        path: &Path,
        offset: u64,
        len: u64,
    ) -> Result<(u64, bool, Bytes)> {
        let total_size = self.pfs.open_meta(path)?.size;
        let data = self.pfs.read_at(path, offset, len as usize)?;
        self.metrics
            .pfs_bypass_reads
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .served_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.metrics.tenant_read(job.0, data.len() as u64);
        Ok((total_size, false, data))
    }

    fn read(&self, job: JobId, path: &Path, offset: u64, len: u64) -> Result<(u64, bool, Bytes)> {
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        let Some(_grant) = self.admit(job, len) else {
            return self.pfs_bypass_read(job, path, offset, len);
        };
        let key = tenant_key(job, path);
        // A freshly-cached file can in principle be evicted before we read
        // it back under heavy churn; retry the ensure+read pair a few times.
        let mut cache_hit = true;
        for _ in 0..4 {
            let was_hit =
                match self
                    .mover
                    .ensure_cached(&self.cache, &self.metrics, path, &key, None)
                {
                    Ok(hit) => hit,
                    Err(HvacError::CapacityExhausted { .. }) => {
                        return self.pfs_bypass_read(job, path, offset, len);
                    }
                    Err(other) => return Err(other),
                };
            cache_hit &= was_hit;
            let total_size = match self.cache.size_of(&key) {
                Some(sz) => sz.bytes(),
                None => continue, // evicted already; refetch
            };
            match self.cache.read_at(&key, offset, len as usize) {
                Some(data) => {
                    if cache_hit {
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.metrics
                        .served_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    self.metrics.tenant_read(job.0, data.len() as u64);
                    return Ok((total_size, cache_hit, data));
                }
                None => continue,
            }
        }
        // All 4 ensure+read attempts lost the eviction race: fall back to a
        // PFS bypass read so the client still gets its bytes, and record
        // the thrash event in its own counter.
        self.metrics.eviction_races.fetch_add(1, Ordering::Relaxed);
        self.pfs_bypass_read(job, path, offset, len)
    }
}

impl RpcHandler for HvacServer {
    fn handle(&self, request: Bytes) -> Reply {
        let mut job = JobId::DEFAULT;
        let (response, bulk) = match Request::decode_with_ctx(request) {
            // A sender on an *older* epoch may be addressing the wrong home
            // — bounce it with the current view so it can re-resolve.
            // Newer-epoch requests are served: this server just hasn't
            // heard yet, and placement only has to be right at the sender.
            Ok((req_epoch, req_job, _)) if req_epoch < self.view.epoch() => {
                job = req_job;
                self.metrics
                    .stale_view_redirects
                    .fetch_add(1, Ordering::Relaxed);
                (
                    Response::StaleView {
                        view: (*self.view.snapshot()).clone(),
                    },
                    None,
                )
            }
            Ok((_, req_job, req)) => {
                job = req_job;
                self.handle_request_for(req_job, req)
            }
            Err(e) => (Response::from_error(&e), None),
        };
        Reply {
            // Echo the sender's job id so the response status byte stays
            // byte-identical to older versions for the default tenant.
            header: response.encode_for(job),
            bulk,
        }
    }
}

impl Drop for DataMover {
    fn drop(&mut self) {
        // Closing the queue lets mover threads drain and exit.
        let (dead_tx, _) = unbounded();
        self.queue_tx = dead_tx;
        for t in std::mem::take(&mut *self.threads.lock()) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::make_policy;
    use hvac_pfs::MemStore;
    use hvac_storage::LocalStore;
    use hvac_types::{ByteSize, EvictionPolicyKind};

    fn setup(cap: u64) -> (Arc<MemStore>, Arc<HvacServer>) {
        let pfs = Arc::new(MemStore::new());
        pfs.synthesize_dataset(Path::new("/data"), 16, |_| 100);
        let cache = Arc::new(CacheManager::new(
            LocalStore::in_memory(ByteSize(cap)),
            make_policy(EvictionPolicyKind::Random, 1),
        ));
        let server =
            HvacServer::new(cache, pfs.clone(), HvacServerOptions::default(), "test").unwrap();
        (pfs, server)
    }

    fn sample(i: u32) -> PathBuf {
        PathBuf::from(format!("/data/sample_{i:08}.bin"))
    }

    #[test]
    fn first_read_misses_then_hits() {
        let (pfs, server) = setup(10_000);
        let p = sample(0);
        let (resp, bulk) = server.handle_request(Request::Read {
            path: p.clone(),
            offset: 0,
            len: 100,
        });
        match resp {
            Response::Data {
                total_size,
                cache_hit,
            } => {
                assert_eq!(total_size, 100);
                assert!(!cache_hit);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(bulk.unwrap().len(), 100);

        let (resp, _) = server.handle_request(Request::Read {
            path: p.clone(),
            offset: 0,
            len: 100,
        });
        assert!(matches!(
            resp,
            Response::Data {
                cache_hit: true,
                ..
            }
        ));

        let snap = server.metrics().snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.pfs_copies, 1);
        // The striped inflight table saw one admit (miss) and one fast-path
        // hit, mirroring the cache counters.
        assert_eq!(snap.stripe_hits, 1);
        assert_eq!(snap.stripe_misses, 1);
        // PFS saw exactly one data read.
        assert_eq!(pfs.stats().snapshot().1, 1);
    }

    #[test]
    fn read_returns_correct_bytes_and_ranges() {
        let (pfs, server) = setup(10_000);
        let p = sample(3);
        let expected = pfs.read_all(&p).unwrap();
        let (_, bulk) = server.handle_request(Request::Read {
            path: p.clone(),
            offset: 10,
            len: 20,
        });
        assert_eq!(bulk.unwrap(), expected.slice(10..30));
        // Reads past EOF return empty bulk.
        let (resp, bulk) = server.handle_request(Request::Read {
            path: p,
            offset: 100,
            len: 10,
        });
        assert!(matches!(resp, Response::Data { .. }));
        assert_eq!(bulk.unwrap().len(), 0);
    }

    #[test]
    fn stat_prefers_cache_but_falls_back_to_pfs() {
        let (pfs, server) = setup(10_000);
        let p = sample(1);
        let (resp, _) = server.handle_request(Request::Stat { path: p.clone() });
        assert_eq!(resp, Response::Stat { size: 100 });
        assert_eq!(pfs.stats().snapshot().0, 1); // PFS open_meta

        // After caching, stat does not touch the PFS again.
        server.handle_request(Request::Read {
            path: p.clone(),
            offset: 0,
            len: 1,
        });
        let (resp, _) = server.handle_request(Request::Stat { path: p });
        assert_eq!(resp, Response::Stat { size: 100 });
        assert_eq!(pfs.stats().snapshot().0, 1);
    }

    #[test]
    fn missing_file_surfaces_not_found() {
        let (_pfs, server) = setup(10_000);
        let (resp, bulk) = server.handle_request(Request::Read {
            path: PathBuf::from("/data/absent"),
            offset: 0,
            len: 1,
        });
        match resp {
            Response::Err { code, .. } => assert_eq!(code, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(bulk.is_none());
    }

    #[test]
    fn concurrent_first_reads_copy_once() {
        let (pfs, server) = setup(100_000);
        let p = sample(5);
        let mut joins = Vec::new();
        for _ in 0..16 {
            let server = server.clone();
            let p = p.clone();
            joins.push(std::thread::spawn(move || {
                let (resp, bulk) = server.handle_request(Request::Read {
                    path: p,
                    offset: 0,
                    len: 100,
                });
                assert!(matches!(resp, Response::Data { .. }));
                bulk.unwrap().len()
            }));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 100);
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.pfs_copies, 1, "exactly one PFS copy under racing");
        assert_eq!(pfs.stats().snapshot().1, 1);
        assert!(
            snap.dedup_waits > 0,
            "racers piggybacked on the in-flight copy"
        );
    }

    #[test]
    fn eviction_under_pressure_keeps_serving() {
        // Cache fits only 3 of the 16 files; every file must still be
        // readable (paper §III-G: random replacement when dataset > cache).
        let (_pfs, server) = setup(350);
        for round in 0..3 {
            for i in 0..16 {
                let (resp, bulk) = server.handle_request(Request::Read {
                    path: sample(i),
                    offset: 0,
                    len: 100,
                });
                assert!(
                    matches!(resp, Response::Data { .. }),
                    "round {round} file {i}: {resp:?}"
                );
                assert_eq!(bulk.unwrap().len(), 100);
            }
        }
        let snap = server.metrics().snapshot();
        assert!(snap.evictions > 0);
        assert!(snap.pfs_copies >= 16);
        assert!(server.cache().store().used().bytes() <= 350);
    }

    #[test]
    fn purge_empties_cache_and_close_is_counted() {
        let (_pfs, server) = setup(10_000);
        server.handle_request(Request::Read {
            path: sample(0),
            offset: 0,
            len: 1,
        });
        assert_eq!(server.cache().resident_count(), 1);
        let (resp, _) = server.handle_request(Request::Close { path: sample(0) });
        assert_eq!(resp, Response::Ok);
        let (resp, _) = server.handle_request(Request::Purge);
        assert_eq!(resp, Response::Ok);
        assert_eq!(server.cache().resident_count(), 0);
        assert_eq!(server.metrics().snapshot().closes, 1);
    }

    #[test]
    fn crash_wipes_cache_and_later_reads_refault() {
        let (pfs, server) = setup(10_000);
        for i in 0..4 {
            server.handle_request(Request::Read {
                path: sample(i),
                offset: 0,
                len: 100,
            });
        }
        assert_eq!(server.cache().resident_count(), 4);
        server.crash();
        assert_eq!(
            server.cache().resident_count(),
            0,
            "crash empties the cache"
        );
        // The instance is still alive: the same file is re-copied from the
        // PFS and served byte-exact.
        let expected = pfs.read_all(&sample(0)).unwrap();
        let (resp, bulk) = server.handle_request(Request::Read {
            path: sample(0),
            offset: 0,
            len: 100,
        });
        assert!(matches!(
            resp,
            Response::Data {
                cache_hit: false,
                ..
            }
        ));
        assert_eq!(bulk.unwrap(), expected);
        assert!(
            server.metrics().snapshot().pfs_copies >= 5,
            "the post-crash read re-faulted from the PFS"
        );
    }

    #[test]
    fn over_fabric_round_trip() {
        let (_pfs, server) = setup(10_000);
        let fabric = Arc::new(Fabric::new());
        let _ep = server.serve(&fabric, "node0/srv0").unwrap();
        let req = Request::Read {
            path: sample(2),
            offset: 0,
            len: 50,
        }
        .encode()
        .unwrap();
        let reply = fabric.call("node0/srv0", req).unwrap();
        let resp = Response::decode(reply.header).unwrap();
        assert!(matches!(
            resp,
            Response::Data {
                total_size: 100,
                ..
            }
        ));
        assert_eq!(reply.bulk.unwrap().len(), 50);
    }

    #[test]
    fn batch_reads_concatenate_in_item_order() {
        use hvac_net::plan::BatchItem;
        let (pfs, server) = setup(100_000);
        let items = vec![
            BatchItem {
                path: sample(0).to_str().unwrap().into(),
                offset: 0,
                len: 40,
            },
            BatchItem {
                path: sample(1).to_str().unwrap().into(),
                offset: 10,
                len: 30,
            },
            BatchItem {
                path: sample(0).to_str().unwrap().into(),
                offset: 60,
                len: 40,
            },
        ];
        let (resp, bulk) = server.handle_request(Request::Batch { items });
        let lens = match resp {
            Response::Batch { lens } => lens,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(lens, vec![40, 30, 40]);
        let bulk = bulk.unwrap();
        assert_eq!(bulk.len(), 110);
        let a = pfs.read_all(&sample(0)).unwrap();
        let b = pfs.read_all(&sample(1)).unwrap();
        assert_eq!(bulk.slice(0..40), a.slice(0..40));
        assert_eq!(bulk.slice(40..70), b.slice(10..40));
        assert_eq!(bulk.slice(70..110), a.slice(60..100));
        let snap = server.metrics().snapshot();
        assert_eq!(snap.batch_rpcs, 1);
        assert_eq!(snap.reads, 3, "each batch item counts as one read");
    }

    #[test]
    fn batch_with_missing_item_fails_whole_batch() {
        use hvac_net::plan::BatchItem;
        let (_pfs, server) = setup(100_000);
        let items = vec![
            BatchItem {
                path: sample(0).to_str().unwrap().into(),
                offset: 0,
                len: 10,
            },
            BatchItem {
                path: "/data/absent".into(),
                offset: 0,
                len: 10,
            },
        ];
        let (resp, bulk) = server.handle_request(Request::Batch { items });
        match resp {
            Response::Err { code, .. } => assert_eq!(code, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(bulk.is_none(), "all-or-nothing: no partial bulk");
    }

    #[test]
    fn undecodable_request_yields_error_reply() {
        let (_pfs, server) = setup(1_000);
        let reply = server.handle(Bytes::from_static(&[250, 1, 2]));
        let resp = Response::decode(reply.header).unwrap();
        assert!(matches!(resp, Response::Err { .. }));
    }
}
