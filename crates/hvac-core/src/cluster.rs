//! An in-process HVAC allocation: the functional stand-in for a Summit job.
//!
//! [`Cluster`] wires together everything a batch job's `alloc_flags "hvac"`
//! would provision on real hardware (§III-C): one node-local cache per node,
//! `i` server instances per node on a shared fabric, and one client per
//! training rank. All components are real (threads, RPC, byte movement);
//! only the hardware is virtual.
//!
//! **Elastic membership.** The allocation is no longer frozen at launch:
//! [`Cluster::add_node`] and [`Cluster::remove_node`] bump the membership
//! epoch, install the new [`ClusterView`] on every server (including the
//! just-retired one, which keeps answering — with [`StaleView`
//! redirects](crate::protocol::Response::StaleView) — so no in-flight read
//! ever sees a dead address), and kick a background [`rebalance`] pass
//! that migrates the minority of cached files whose home moved. Clients
//! discover the new view organically through the redirect protocol.

use crate::cache::CacheManager;
use crate::client::{HvacClient, HvacClientOptions};
use crate::eviction::make_policy;
use crate::metrics::{ServerMetricsSnapshot, TenantServerSnapshot};
use crate::qos::QosOptions;
use crate::rebalance::{rebalance, RebalanceReport, RebalanceSource};
use crate::repair::{audit_under_replicated, repair, RepairReport, RepairSource};
use crate::server::{HvacServer, HvacServerOptions};
use crate::view::ViewHandle;
use hvac_hash::placement::{make_placement, Placement};
use hvac_net::fabric::{Fabric, ServerEndpoint};
use hvac_pfs::FileStore;
use hvac_storage::{DeviceModel, LocalStore};
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{
    ByteSize, ClusterView, EvictionPolicyKind, HvacError, JobId, JobWeights, NodeId, PlacementKind,
    Result, RetryPolicy, ServerId, TransportKind,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Builder-style options for a functional cluster.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Compute nodes in the allocation.
    pub nodes: u32,
    /// HVAC server instances per node (the `i` of HVAC (i×1)).
    pub instances_per_node: u32,
    /// Training ranks (clients) per node.
    pub clients_per_node: u32,
    /// Dataset directory to cache.
    pub dataset_dir: PathBuf,
    /// Placement algorithm.
    pub placement: PlacementKind,
    /// Eviction policy.
    pub eviction: EvictionPolicyKind,
    /// Replicas per file.
    pub replication: u32,
    /// Node-local cache capacity per node.
    pub cache_capacity: ByteSize,
    /// Data-mover threads per server instance.
    pub movers_per_instance: usize,
    /// RPC worker threads per server instance.
    pub rpc_workers: usize,
    /// Seed for randomized eviction.
    pub seed: u64,
    /// Deadline/retry/backoff/breaker policy for every client in the
    /// allocation.
    pub retry: RetryPolicy,
    /// Whether clients fall back to direct PFS reads once every replica of a
    /// file is exhausted (the §III-H degradation ladder's last rung). On by
    /// default — HVAC's contract is that the epoch completes.
    pub pfs_fallback: bool,
    /// Bulk chunk size for client reads (reads larger than this are
    /// pipelined as chunk RPCs).
    pub bulk_chunk: usize,
    /// In-flight chunk RPC window per pipelined read.
    pub bulk_window: usize,
    /// Zero-copy data plane for every client: pooled reassembly buffers
    /// plus coalesced + batched segmented reads. Off = the legacy
    /// one-RPC-per-segment baseline.
    pub zero_copy: bool,
    /// Per-client cap on a coalesced read range (0 disables coalescing).
    pub coalesce_max: u64,
    /// Per-client cap on ranges per batch RPC.
    pub batch_max: usize,
    /// Whether a view change kicks a background cache-rebalance pass that
    /// migrates files whose home moved. On by default; benchmarks disable
    /// it to measure the cold-restart baseline.
    pub rebalance: bool,
    /// Whether [`Cluster::restart_node`] kicks a background anti-entropy
    /// repair pass that re-clones under-replicated entries from surviving
    /// holders. On by default; benchmarks disable it to measure the
    /// organic-refault baseline.
    pub repair: bool,
    /// Transport behind the cluster's fabric: in-process loopback (the
    /// default) or real sockets (TCP / Unix-domain). Defaults from the
    /// `HVAC_TRANSPORT` environment variable so an unchanged test suite can
    /// be rerun over real sockets by exporting `HVAC_TRANSPORT=tcp`.
    pub transport: TransportKind,
    /// Tenant identity every client of this allocation encodes on the wire.
    /// Defaults from `HVAC_JOB_ID` (absent/unparsable = job 0, the legacy
    /// namespace), so a launcher can scope a whole training job without
    /// touching its code.
    pub job_id: JobId,
    /// Per-tenant weighted-fair-share plan installed on every server
    /// (admission control + device scheduling) and every node store
    /// (capacity quotas). Empty (the default) keeps the single-tenant
    /// behaviour: no quotas, no shedding.
    pub job_weights: JobWeights,
    /// Tuning of the per-server tenant scheduler (device-slot count, queue
    /// depth cap, DRR quantum). Only consulted when `job_weights` is
    /// non-empty.
    pub qos: QosOptions,
    /// Optional device service-time emulation armed on every node store —
    /// how tests and benches create real device contention for the QoS
    /// scheduler to arbitrate. `None` (the default) keeps reads instant.
    pub device_model: Option<DeviceModel>,
}

impl ClusterOptions {
    /// Defaults: 1 client/node, modulo placement, random eviction, 1 GiB of
    /// cache per node, no replication.
    pub fn new(nodes: u32, instances_per_node: u32) -> Self {
        Self {
            nodes,
            instances_per_node,
            clients_per_node: 1,
            dataset_dir: PathBuf::from("/"),
            placement: PlacementKind::Modulo,
            eviction: EvictionPolicyKind::Random,
            replication: 1,
            cache_capacity: ByteSize::gib(1),
            movers_per_instance: 1,
            rpc_workers: 2,
            seed: 0x4856_4143, // "HVAC"
            retry: RetryPolicy::default(),
            pfs_fallback: true,
            bulk_chunk: hvac_net::BULK_CHUNK_SIZE,
            bulk_window: hvac_net::DEFAULT_PIPELINE_WINDOW,
            zero_copy: true,
            coalesce_max: 1 << 20,
            batch_max: 16,
            rebalance: true,
            repair: true,
            transport: TransportKind::from_env(),
            job_id: JobId::from_env(),
            job_weights: JobWeights::default(),
            qos: QosOptions::default(),
            device_model: None,
        }
    }

    /// Set the dataset directory.
    pub fn dataset_dir<P: Into<PathBuf>>(mut self, dir: P) -> Self {
        self.dataset_dir = dir.into();
        self
    }

    /// Set per-node cache capacity.
    pub fn cache_capacity(mut self, cap: ByteSize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// Set the eviction policy.
    pub fn eviction(mut self, kind: EvictionPolicyKind) -> Self {
        self.eviction = kind;
        self
    }

    /// Set the placement algorithm.
    pub fn placement(mut self, kind: PlacementKind) -> Self {
        self.placement = kind;
        self
    }

    /// Set the replication factor.
    pub fn replication(mut self, k: u32) -> Self {
        self.replication = k;
        self
    }

    /// Set clients per node.
    pub fn clients_per_node(mut self, n: u32) -> Self {
        self.clients_per_node = n;
        self
    }

    /// Set data-mover threads per instance.
    pub fn movers_per_instance(mut self, n: usize) -> Self {
        self.movers_per_instance = n;
        self
    }

    /// Set the client deadline/retry/backoff/breaker policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable or disable client-side direct-PFS degradation.
    pub fn pfs_fallback(mut self, enabled: bool) -> Self {
        self.pfs_fallback = enabled;
        self
    }

    /// Set the bulk chunk size and in-flight window for pipelined reads.
    pub fn bulk_transfer(mut self, chunk: usize, window: usize) -> Self {
        self.bulk_chunk = chunk;
        self.bulk_window = window;
        self
    }

    /// Enable or disable the zero-copy data plane (pooled buffers,
    /// coalesced + batched segmented reads). `false` pins the legacy path —
    /// the baseline arm of the latency harness.
    pub fn zero_copy(mut self, enabled: bool) -> Self {
        self.zero_copy = enabled;
        self
    }

    /// Set the coalescing cap (bytes per merged range; 0 disables) and the
    /// batching cap (ranges per batch RPC).
    pub fn coalesce_batch(mut self, coalesce_max: u64, batch_max: usize) -> Self {
        self.coalesce_max = coalesce_max;
        self.batch_max = batch_max;
        self
    }

    /// Enable or disable the background rebalance pass on view changes.
    pub fn rebalance(mut self, enabled: bool) -> Self {
        self.rebalance = enabled;
        self
    }

    /// Enable or disable the anti-entropy repair pass on node restarts.
    pub fn repair(mut self, enabled: bool) -> Self {
        self.repair = enabled;
        self
    }

    /// Select the RPC transport (loopback queues or real sockets).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Set the tenant identity of this allocation's clients.
    pub fn job_id(mut self, job: JobId) -> Self {
        self.job_id = job;
        self
    }

    /// Install a per-tenant QoS/quota plan on every server and node store.
    pub fn job_weights(mut self, weights: JobWeights) -> Self {
        self.job_weights = weights;
        self
    }

    /// Tune the tenant scheduler (inflight slots, queue cap, DRR quantum).
    pub fn qos(mut self, qos: QosOptions) -> Self {
        self.qos = qos;
        self
    }

    /// Arm device service-time emulation on every node store.
    pub fn device_model(mut self, model: DeviceModel) -> Self {
        self.device_model = Some(model);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.nodes == 0 || self.instances_per_node == 0 || self.clients_per_node == 0 {
            return Err(HvacError::InvalidConfig(
                "nodes, instances_per_node and clients_per_node must be >= 1".into(),
            ));
        }
        let n_servers = self.nodes as usize * self.instances_per_node as usize;
        if self.replication == 0 || self.replication as usize > n_servers {
            return Err(HvacError::InvalidConfig(format!(
                "replication {} out of range 1..={n_servers}",
                self.replication
            )));
        }
        // A zero chunk or window would trip `pipelined_fetch`'s internal
        // invariant deep in the read path; reject it at configuration time.
        if self.bulk_chunk == 0 {
            return Err(HvacError::InvalidConfig("bulk_chunk must be >= 1".into()));
        }
        if self.bulk_window == 0 {
            return Err(HvacError::InvalidConfig("bulk_window must be >= 1".into()));
        }
        if self.batch_max == 0 {
            return Err(HvacError::InvalidConfig("batch_max must be >= 1".into()));
        }
        Ok(())
    }
}

/// One provisioned node: its shared cache plus the server instances and
/// fabric endpoints running on it.
struct NodeSlot {
    node: NodeId,
    cache: Arc<CacheManager>,
    servers: Vec<Arc<HvacServer>>,
    endpoints: Vec<ServerEndpoint>,
}

/// A running in-process allocation.
pub struct Cluster {
    fabric: Arc<Fabric>,
    pfs: Arc<dyn FileStore>,
    /// Live nodes, in provisioning order (view membership).
    nodes: Vec<NodeSlot>,
    /// Tombstoned nodes: removed from the view but still registered on the
    /// fabric, answering every request with a `StaleView` redirect so that
    /// clients on the old epoch re-resolve instead of degrading to the PFS.
    retired: Vec<NodeSlot>,
    clients: Vec<Arc<HvacClient>>,
    /// The authoritative membership view; servers get copies installed on
    /// every change, clients learn through redirects.
    view: Arc<ViewHandle>,
    /// The same placement algorithm the clients use, for the rebalancer.
    placement: Arc<dyn Placement>,
    /// The in-flight rebalance pass, if any. The `REBALANCER` class guards
    /// only this spawn/join slot — never the migration walk itself.
    rebalancer: OrderedMutex<Option<JoinHandle<RebalanceReport>>>,
    /// The in-flight anti-entropy repair pass, if any. The `REPAIR` class
    /// is outermost in the lock hierarchy (a repair pass may first need to
    /// join a still-running rebalance) and guards only this spawn/join
    /// slot — never the scrub walk itself.
    repairer: OrderedMutex<Option<JoinHandle<RepairReport>>>,
    options: ClusterOptions,
}

impl Cluster {
    /// Provision the allocation: caches, servers, endpoints, clients.
    pub fn new(pfs: Arc<dyn FileStore>, options: ClusterOptions) -> Result<Self> {
        options.validate()?;
        let fabric = Arc::new(Fabric::for_transport(options.transport));
        let mut nodes = Vec::with_capacity(options.nodes as usize);
        for node in 0..options.nodes {
            nodes.push(Self::build_node(&fabric, &pfs, &options, NodeId(node))?);
        }
        let n_servers = nodes.iter().map(|s| s.servers.len()).sum();
        let view = ViewHandle::new(ClusterView::initial(n_servers, options.instances_per_node)?);
        let mut clients = Vec::new();
        for _node in 0..options.nodes {
            for _c in 0..options.clients_per_node {
                let mut client = HvacClient::new(
                    fabric.clone(),
                    HvacClientOptions {
                        dataset_dir: options.dataset_dir.clone(),
                        placement: options.placement,
                        replication: options.replication,
                        n_servers,
                        instances_per_node: options.instances_per_node,
                        retry: options.retry.clone(),
                        bulk_chunk: options.bulk_chunk,
                        bulk_window: options.bulk_window,
                        zero_copy: options.zero_copy,
                        coalesce_max: options.coalesce_max,
                        batch_max: options.batch_max,
                        job_id: options.job_id,
                    },
                )?;
                if options.pfs_fallback {
                    client.set_pfs_fallback(pfs.clone());
                }
                clients.push(Arc::new(client));
            }
        }
        Ok(Self {
            fabric,
            pfs,
            nodes,
            retired: Vec::new(),
            clients,
            view,
            placement: Arc::from(make_placement(options.placement)),
            rebalancer: OrderedMutex::new(classes::REBALANCER, None),
            repairer: OrderedMutex::new(classes::REPAIR, None),
            options,
        })
    }

    /// Provision one node: a cache plus `instances_per_node` servers, each
    /// registered on the fabric under its `ServerId` address.
    fn build_node(
        fabric: &Arc<Fabric>,
        pfs: &Arc<dyn FileStore>,
        options: &ClusterOptions,
        node: NodeId,
    ) -> Result<NodeSlot> {
        let mut store = LocalStore::in_memory(options.cache_capacity);
        if let Some(model) = &options.device_model {
            store.set_device_model(model.clone());
        }
        // Quota shares carve the node capacity per tenant before any byte
        // lands, so eviction isolation holds from the first insert on.
        store.set_tenant_quotas(&options.job_weights);
        let cache = Arc::new(CacheManager::new(
            store,
            make_policy(options.eviction, options.seed ^ u64::from(node.0)),
        ));
        let mut servers = Vec::new();
        let mut endpoints = Vec::new();
        for instance in 0..options.instances_per_node {
            let sid = ServerId::new(node.0, instance);
            let server = HvacServer::new(
                cache.clone(),
                pfs.clone(),
                HvacServerOptions {
                    movers: options.movers_per_instance,
                    rpc_workers: options.rpc_workers,
                    job_weights: options.job_weights.clone(),
                    qos: options.qos,
                },
                &sid.to_string(),
            )?;
            let ep = server.serve(fabric, &sid.to_string())?;
            servers.push(server);
            endpoints.push(ep);
        }
        Ok(NodeSlot {
            node,
            cache,
            servers,
            endpoints,
        })
    }

    /// Grow the allocation by one node. Bumps the membership epoch,
    /// installs the new view on every server (the new node's included, so
    /// it can vouch for the epoch it serves), and starts a background
    /// rebalance migrating the minority of files whose home moved onto the
    /// joiner. Returns the new node's id.
    pub fn add_node(&mut self) -> Result<NodeId> {
        let old_view = self.view.snapshot();
        let node = old_view.next_node_id();
        let new_view = Arc::new(old_view.with_node_added(node)?);
        // Endpoints must be reachable *before* any client can learn the
        // new view, so provision first, then flip the epoch.
        self.nodes.push(Self::build_node(
            &self.fabric,
            &self.pfs,
            &self.options,
            node,
        )?);
        self.install_view(new_view.clone());
        self.start_rebalance(old_view, new_view);
        Ok(node)
    }

    /// Shrink the allocation: retire `node` from the view. The node's
    /// endpoints stay registered as a **tombstone** — every request they
    /// now see carries a stale epoch and is answered with a `StaleView`
    /// redirect, so clients re-resolve to live homes instead of burning
    /// their retry ladders on a dead address. A background rebalance
    /// drains the retired node's cache onto the new homes ("old home
    /// serves until handoff, then redirects").
    pub fn remove_node(&mut self, node: NodeId) -> Result<()> {
        let old_view = self.view.snapshot();
        let new_view = Arc::new(old_view.with_node_removed(node)?);
        let idx = self
            .nodes
            .iter()
            .position(|s| s.node == node)
            .ok_or_else(|| {
                HvacError::InvalidConfig(format!("node {} is not provisioned", node.0))
            })?;
        let slot = self.nodes.remove(idx);
        self.retired.push(slot);
        self.install_view(new_view.clone());
        self.start_rebalance(old_view, new_view);
        Ok(())
    }

    /// Install `view` as the authoritative membership: the cluster handle
    /// first, then every server — live and retired — so all of them bounce
    /// stale requests with the same (newest) view.
    fn install_view(&self, view: Arc<ClusterView>) {
        self.view.install(view.clone());
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            for server in &slot.servers {
                server.install_view(view.clone());
            }
        }
    }

    /// Kick a background migration pass for the `old_view → new_view`
    /// transition (no-op when `options.rebalance` is off). Any previous
    /// pass is joined first so passes never interleave.
    fn start_rebalance(&self, old_view: Arc<ClusterView>, new_view: Arc<ClusterView>) {
        if !self.options.rebalance {
            return;
        }
        self.wait_rebalance();
        let sources: Vec<RebalanceSource> = self
            .nodes
            .iter()
            .chain(self.retired.iter())
            .map(|slot| RebalanceSource {
                node: slot.node,
                cache: slot.cache.clone(),
                metrics: slot.servers[0].metrics().clone(),
            })
            .collect();
        let dests: HashMap<NodeId, Arc<CacheManager>> = self
            .nodes
            .iter()
            .map(|slot| (slot.node, slot.cache.clone()))
            .collect();
        let placement = self.placement.clone();
        let handle = std::thread::spawn(move || {
            rebalance(&sources, &dests, placement.as_ref(), &old_view, &new_view)
        });
        *self.rebalancer.lock() = Some(handle);
    }

    /// Join the in-flight rebalance pass, returning its ledger (or `None`
    /// if no pass is running).
    pub fn wait_rebalance(&self) -> Option<RebalanceReport> {
        let handle = self.rebalancer.lock().take();
        // Propagate a rebalancer panic into the caller rather than eating it.
        handle.map(|h| match h.join() {
            Ok(report) => report,
            Err(payload) => std::panic::resume_unwind(payload),
        })
    }

    /// Crash-stop every server instance on `node`: the endpoints latch
    /// down, queued copy jobs are disowned (generation bump), every
    /// in-flight single-flight waiter is errored out, and the node's cache
    /// is wiped — all before this returns, so there is no window where a
    /// half-wiped node answers reads. Unlike [`Self::remove_node`] the
    /// membership does **not** change: the node keeps its view slot and
    /// its fabric address, exactly like a real machine rebooting.
    pub fn crash_node(&self, node: u32) -> Result<()> {
        let slot = self
            .nodes
            .iter()
            .find(|s| s.node == NodeId(node))
            .ok_or_else(|| HvacError::InvalidConfig(format!("node {node} is not provisioned")))?;
        for ep in &slot.endpoints {
            ep.set_down(true);
        }
        for server in &slot.servers {
            server.crash();
        }
        Ok(())
    }

    /// Bring a crashed node back at the same endpoints, **empty**: clients
    /// see a live server again, but everything it used to hold refaults
    /// from the PFS on first access. When `options.repair` is on, a
    /// background anti-entropy pass starts immediately and re-clones the
    /// node's share of replicated files from surviving holders.
    pub fn restart_node(&self, node: u32) -> Result<()> {
        let slot = self
            .nodes
            .iter()
            .find(|s| s.node == NodeId(node))
            .ok_or_else(|| HvacError::InvalidConfig(format!("node {node} is not provisioned")))?;
        for ep in &slot.endpoints {
            ep.set_down(false);
        }
        if self.options.repair {
            self.start_repair();
        }
        Ok(())
    }

    /// The live nodes as repair participants.
    fn repair_sources(&self) -> Vec<RepairSource> {
        self.nodes
            .iter()
            .map(|slot| RepairSource {
                node: slot.node,
                cache: slot.cache.clone(),
                metrics: slot.servers[0].metrics().clone(),
            })
            .collect()
    }

    /// Kick a background anti-entropy repair pass over the live nodes. Any
    /// previous repair pass is joined first, and so is any in-flight
    /// rebalance — repairing mid-migration would double-copy files whose
    /// home is about to move.
    pub fn start_repair(&self) {
        self.wait_repair();
        self.wait_rebalance();
        let sources = self.repair_sources();
        let placement = self.placement.clone();
        let view = self.view.snapshot();
        let replication = self.options.replication as usize;
        let handle =
            std::thread::spawn(move || repair(&sources, placement.as_ref(), &view, replication));
        *self.repairer.lock() = Some(handle);
    }

    /// Join the in-flight repair pass, returning its ledger (or `None` if
    /// no pass is running).
    pub fn wait_repair(&self) -> Option<RepairReport> {
        let handle = self.repairer.lock().take();
        handle.map(|h| match h.join() {
            Ok(report) => report,
            Err(payload) => std::panic::resume_unwind(payload),
        })
    }

    /// Audit: expected-but-missing replica copies across the live nodes
    /// under the current view. Zero means the allocation has converged.
    pub fn under_replicated_count(&self) -> u64 {
        audit_under_replicated(
            &self.repair_sources(),
            self.placement.as_ref(),
            &self.view.snapshot(),
            self.options.replication as usize,
        )
    }

    /// The current membership view.
    pub fn view(&self) -> Arc<ClusterView> {
        self.view.snapshot()
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// The shared fabric (for fault injection).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The PFS backing this allocation.
    pub fn pfs(&self) -> &Arc<dyn FileStore> {
        &self.pfs
    }

    /// The options the cluster was built with.
    pub fn options(&self) -> &ClusterOptions {
        &self.options
    }

    /// Total ranks (clients).
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total live server instances.
    pub fn n_servers(&self) -> usize {
        self.nodes.iter().map(|s| s.servers.len()).sum()
    }

    /// The client of training rank `rank` (ranks are node-major).
    pub fn client(&self, rank: usize) -> &Arc<HvacClient> {
        &self.clients[rank]
    }

    /// Build an extra client bound to tenant `job` against this
    /// allocation's servers — how a second training job shares the same
    /// node caches. The client mirrors every data-path option of the
    /// built-in ranks; only the tenant identity differs.
    pub fn client_for_job(&self, job: JobId) -> Result<Arc<HvacClient>> {
        let options = &self.options;
        let mut client = HvacClient::new(
            self.fabric.clone(),
            HvacClientOptions {
                dataset_dir: options.dataset_dir.clone(),
                placement: options.placement,
                replication: options.replication,
                n_servers: self.n_servers(),
                instances_per_node: options.instances_per_node,
                retry: options.retry.clone(),
                bulk_chunk: options.bulk_chunk,
                bulk_window: options.bulk_window,
                zero_copy: options.zero_copy,
                coalesce_max: options.coalesce_max,
                batch_max: options.batch_max,
                job_id: job,
            },
        )?;
        if options.pfs_fallback {
            client.set_pfs_fallback(self.pfs.clone());
        }
        Ok(Arc::new(client))
    }

    /// A live server instance by global index (node-major over live nodes).
    pub fn server(&self, idx: usize) -> &Arc<HvacServer> {
        let mut remaining = idx;
        for slot in &self.nodes {
            if remaining < slot.servers.len() {
                return &slot.servers[remaining];
            }
            remaining -= slot.servers.len();
        }
        panic!(
            "server index {idx} out of range ({} live)",
            self.n_servers()
        );
    }

    /// Per-instance metric snapshots (live instances, node-major).
    pub fn server_metrics(&self) -> Vec<ServerMetricsSnapshot> {
        self.nodes
            .iter()
            .flat_map(|slot| slot.servers.iter())
            .map(|s| s.metrics().snapshot())
            .collect()
    }

    /// Cluster-wide aggregated server metrics, retired nodes included —
    /// their redirect and migration counters are part of the job's story.
    pub fn aggregate_metrics(&self) -> ServerMetricsSnapshot {
        let mut agg = ServerMetricsSnapshot::default();
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            for s in &slot.servers {
                agg.merge(&s.metrics().snapshot());
            }
        }
        agg
    }

    /// Cluster-wide per-tenant server counters, merged across every live
    /// and retired instance, sorted by job id.
    pub fn tenant_metrics(&self) -> Vec<TenantServerSnapshot> {
        let mut by_job: HashMap<u64, TenantServerSnapshot> = HashMap::new();
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            for s in &slot.servers {
                for row in s.metrics().tenants.snapshot() {
                    by_job
                        .entry(row.job)
                        .or_insert(TenantServerSnapshot {
                            job: row.job,
                            ..Default::default()
                        })
                        .merge(&row);
                }
            }
        }
        let mut rows: Vec<TenantServerSnapshot> = by_job.into_values().collect();
        rows.sort_by_key(|r| r.job);
        rows
    }

    /// Resident file count per live node cache (Fig. 15's distribution,
    /// measured on the real cache rather than predicted from the hash).
    pub fn per_node_file_counts(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|s| s.cache.resident_count() as u64)
            .collect()
    }

    /// Bytes resident per live node cache.
    pub fn per_node_bytes(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|s| s.cache.store().used().bytes())
            .collect()
    }

    /// Live node ids, in provisioning order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|s| s.node).collect()
    }

    /// Fault-inject every instance on a node (NVMe/node failure, §III-H).
    /// Works on retired nodes too (a tombstone can crash like anything
    /// else).
    pub fn set_node_down(&self, node: u32, down: bool) {
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            if slot.node == NodeId(node) {
                for ep in &slot.endpoints {
                    ep.set_down(down);
                }
            }
        }
    }

    /// Fault-inject one live server instance by global index.
    pub fn set_server_down(&self, idx: usize, down: bool) {
        if let Some(ep) = self.nodes.iter().flat_map(|s| s.endpoints.iter()).nth(idx) {
            ep.set_down(down);
        }
    }

    /// Stage every file under `prefix` into the cache (paper §IV-C) and
    /// wait for staging to finish. Returns the number of files staged.
    pub fn prefetch_dataset(&self, prefix: &std::path::Path) -> Result<usize> {
        let listing = self.pfs.list(prefix)?;
        let n = self
            .clients
            .first()
            .ok_or_else(|| HvacError::InvalidConfig("cluster has no clients".into()))?
            .prefetch(listing.iter().map(|p| p.as_path()))?;
        for slot in &self.nodes {
            for server in &slot.servers {
                server.drain_prefetches();
            }
        }
        Ok(n)
    }

    /// Drop all cached data on every node — retired tombstones included
    /// (job teardown, §III-D).
    pub fn purge(&self) {
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            slot.cache.purge();
        }
    }

    /// Tear the allocation down in dependency order, without waiting for
    /// `Drop`: join any in-flight rebalance, then mark every endpoint down
    /// so racing client calls fail fast with `ServerDown` instead of
    /// queueing behind dying RPC workers, then unregister the endpoints
    /// (joining their worker threads), and only then release the server
    /// instances so their data movers stop. Idempotent; clients created
    /// from this cluster keep working as objects, but every RPC fails fast
    /// with `ServerDown` afterwards — with the default `pfs_fallback`,
    /// reads then degrade to direct PFS access instead of erroring.
    pub fn shutdown(&mut self) {
        self.wait_repair();
        self.wait_rebalance();
        for slot in self.nodes.iter().chain(self.retired.iter()) {
            for ep in &slot.endpoints {
                ep.set_down(true);
            }
        }
        for slot in self.nodes.iter_mut().chain(self.retired.iter_mut()) {
            slot.endpoints.clear();
            slot.servers.clear();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_pfs::MemStore;
    use std::path::Path;

    fn dataset_pfs(n: u64, size: usize) -> Arc<MemStore> {
        let pfs = Arc::new(MemStore::new());
        pfs.synthesize_dataset(Path::new("/gpfs/train"), n, |_| size);
        pfs
    }

    fn sample(i: u64) -> PathBuf {
        PathBuf::from(format!("/gpfs/train/sample_{i:08}.bin"))
    }

    #[test]
    fn builds_expected_topology() {
        let pfs = dataset_pfs(4, 64);
        let cluster = Cluster::new(
            pfs,
            ClusterOptions::new(4, 2)
                .dataset_dir("/gpfs/train")
                .clients_per_node(2),
        )
        .unwrap();
        assert_eq!(cluster.n_servers(), 8);
        assert_eq!(cluster.n_clients(), 8);
        assert_eq!(cluster.fabric().endpoint_names().len(), 8);
        assert_eq!(cluster.per_node_file_counts().len(), 4);
    }

    #[test]
    fn multi_rank_epoch_reads_are_correct_and_cached() {
        let pfs = dataset_pfs(32, 128);
        let cluster = Cluster::new(
            pfs.clone(),
            ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
        )
        .unwrap();
        // Epoch 1: each rank reads a shard of 8 files.
        for rank in 0..4 {
            let client = cluster.client(rank);
            for i in 0..8u64 {
                let idx = rank as u64 * 8 + i;
                let data = client.read_file(&sample(idx)).unwrap();
                assert_eq!(data, MemStore::sample_content(idx, 128));
            }
        }
        assert_eq!(pfs.stats().snapshot().1, 32);
        // Epoch 2: shuffled assignment (rank reads a different shard) — all
        // cache hits because the cache is allocation-wide, not per-node.
        for rank in 0..4 {
            let client = cluster.client(rank);
            for i in 0..8u64 {
                let idx = ((rank as u64 + 1) % 4) * 8 + i;
                let data = client.read_file(&sample(idx)).unwrap();
                assert_eq!(data, MemStore::sample_content(idx, 128));
            }
        }
        assert_eq!(
            pfs.stats().snapshot().1,
            32,
            "epoch 2 never touched the PFS"
        );
        let agg = cluster.aggregate_metrics();
        assert_eq!(agg.cache_hits, 32);
        assert_eq!(agg.pfs_copies, 32);
        // Every file is resident exactly once across the allocation.
        let resident: u64 = cluster.per_node_file_counts().iter().sum();
        assert_eq!(resident, 32);
    }

    #[test]
    fn instances_share_the_node_cache() {
        let pfs = dataset_pfs(12, 64);
        let cluster = Cluster::new(
            pfs.clone(),
            ClusterOptions::new(2, 2).dataset_dir("/gpfs/train"),
        )
        .unwrap();
        for i in 0..12u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        // 2 nodes hold 12 files between them regardless of instance count.
        let resident: u64 = cluster.per_node_file_counts().iter().sum();
        assert_eq!(resident, 12);
        assert_eq!(pfs.stats().snapshot().1, 12);
    }

    #[test]
    fn node_failure_with_replication_keeps_the_job_alive() {
        let pfs = dataset_pfs(16, 64);
        let cluster = Cluster::new(
            pfs,
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                .replication(2),
        )
        .unwrap();
        // Warm the cache.
        for i in 0..16u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        cluster.set_node_down(1, true);
        for i in 0..16u64 {
            assert!(
                cluster.client(2).read_file(&sample(i)).is_ok(),
                "file {i} unreadable after node 1 died"
            );
        }
        cluster.set_node_down(1, false);
    }

    #[test]
    fn purge_clears_all_nodes() {
        let pfs = dataset_pfs(8, 64);
        let cluster =
            Cluster::new(pfs, ClusterOptions::new(2, 1).dataset_dir("/gpfs/train")).unwrap();
        for i in 0..8u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        assert!(cluster.per_node_file_counts().iter().sum::<u64>() > 0);
        cluster.purge();
        assert_eq!(cluster.per_node_file_counts().iter().sum::<u64>(), 0);
        assert_eq!(cluster.per_node_bytes().iter().sum::<u64>(), 0);
    }

    #[test]
    fn shutdown_is_explicit_and_idempotent() {
        let pfs = dataset_pfs(4, 64);
        let mut cluster = Cluster::new(
            pfs,
            ClusterOptions::new(2, 1)
                .dataset_dir("/gpfs/train")
                .pfs_fallback(false),
        )
        .unwrap();
        cluster.client(0).read_file(&sample(0)).unwrap();
        let client = cluster.client(0).clone();
        cluster.shutdown();
        cluster.shutdown(); // second call is a no-op
        assert!(cluster.fabric().endpoint_names().is_empty());
        assert_eq!(cluster.n_servers(), 0);
        // Calls after shutdown fail fast instead of waiting on the fabric.
        assert!(matches!(
            client.read_file(&sample(1)),
            Err(HvacError::ServerDown(_))
        ));
    }

    #[test]
    fn reads_after_shutdown_degrade_to_the_pfs_when_armed() {
        let pfs = dataset_pfs(4, 64);
        let mut cluster =
            Cluster::new(pfs, ClusterOptions::new(2, 1).dataset_dir("/gpfs/train")).unwrap();
        let client = cluster.client(0).clone();
        cluster.shutdown();
        // Every server is gone, but the epoch still completes byte-correct
        // straight from the PFS (§III-H graceful degradation, client side).
        let data = client.read_file(&sample(2)).unwrap();
        assert_eq!(data, MemStore::sample_content(2, 64));
        let s = client.metrics().full_snapshot();
        assert!(s.degraded_reads >= 1, "degraded read counted: {s:?}");
    }

    #[test]
    fn shutdown_mid_epoch_does_not_block_clients() {
        let pfs = dataset_pfs(64, 1024);
        let mut cluster =
            Cluster::new(pfs, ClusterOptions::new(2, 1).dataset_dir("/gpfs/train")).unwrap();
        // A rank reads through the epoch while the allocation is torn down
        // under it. Every read must either succeed or fail promptly — the
        // join below hangs (and the harness times the test out) if a client
        // can still block on a dying server's queue.
        let client = cluster.client(0).clone();
        let reader = std::thread::spawn(move || {
            let mut outcomes = (0usize, 0usize);
            for i in 0..64u64 {
                match client.read_file(&sample(i)) {
                    Ok(_) => outcomes.0 += 1,
                    Err(_) => outcomes.1 += 1,
                }
            }
            outcomes
        });
        cluster.client(1).read_file(&sample(0)).unwrap();
        cluster.shutdown();
        let (ok, failed) = reader.join().unwrap();
        assert_eq!(ok + failed, 64);
    }

    #[test]
    fn invalid_topologies_rejected() {
        let pfs = dataset_pfs(1, 8);
        assert!(Cluster::new(pfs.clone(), ClusterOptions::new(0, 1)).is_err());
        assert!(Cluster::new(pfs.clone(), ClusterOptions::new(1, 0)).is_err());
        assert!(
            Cluster::new(pfs, ClusterOptions::new(2, 1).replication(5)).is_err(),
            "replication > server count"
        );
    }

    #[test]
    fn zero_bulk_transfer_knobs_rejected_as_config_errors() {
        // Regression: a zero chunk or window used to reach the assertion
        // inside `pipelined_fetch` on the first large read; now both are
        // typed `InvalidConfig` errors at construction time.
        let pfs = dataset_pfs(1, 8);
        let chunk0 = ClusterOptions::new(2, 1).bulk_transfer(0, 4);
        assert!(matches!(
            Cluster::new(pfs.clone(), chunk0),
            Err(HvacError::InvalidConfig(_))
        ));
        let window0 = ClusterOptions::new(2, 1).bulk_transfer(4, 0);
        assert!(matches!(
            Cluster::new(pfs, window0),
            Err(HvacError::InvalidConfig(_))
        ));
    }

    #[test]
    fn add_node_bumps_epoch_redirects_clients_and_rebalances() {
        let pfs = dataset_pfs(48, 64);
        let mut cluster = Cluster::new(
            pfs.clone(),
            ClusterOptions::new(3, 1)
                .dataset_dir("/gpfs/train")
                .placement(PlacementKind::Ring),
        )
        .unwrap();
        for i in 0..48u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        assert_eq!(cluster.epoch(), 0);

        let node = cluster.add_node().unwrap();
        assert_eq!(node, hvac_types::NodeId(3));
        assert_eq!(cluster.epoch(), 1);
        assert_eq!(cluster.n_servers(), 4);
        let report = cluster.wait_rebalance().expect("a pass ran");
        assert!(report.migrated_files > 0, "{report:?}");
        assert_eq!(
            cluster.per_node_file_counts()[3],
            report.migrated_files,
            "everything that moved landed on the joiner"
        );

        // The client is still on epoch 0; its first reads get bounced with
        // the new view, re-resolve, and stay byte-exact with no PFS reads
        // beyond the warmup (the minority of moved files was migrated, not
        // dropped).
        let pfs_reads_before = pfs.stats().snapshot().1;
        for i in 0..48u64 {
            let data = cluster.client(0).read_file(&sample(i)).unwrap();
            assert_eq!(data, MemStore::sample_content(i, 64));
        }
        assert_eq!(pfs.stats().snapshot().1, pfs_reads_before);
        assert_eq!(cluster.client(0).view().epoch(), 1);
        let cm = cluster.client(0).metrics().full_snapshot();
        assert!(cm.view_refreshes > 0, "client learned by redirect: {cm:?}");
        assert_eq!(cm.degraded_reads, 0);
        assert!(cluster.aggregate_metrics().stale_view_redirects > 0);
    }

    #[test]
    fn remove_node_retires_a_tombstone_that_redirects() {
        let pfs = dataset_pfs(48, 64);
        let mut cluster = Cluster::new(
            pfs.clone(),
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                .placement(PlacementKind::Ring),
        )
        .unwrap();
        for i in 0..48u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        cluster.remove_node(hvac_types::NodeId(1)).unwrap();
        assert_eq!(cluster.epoch(), 1);
        assert_eq!(cluster.n_servers(), 3);
        let report = cluster.wait_rebalance().expect("a pass ran");
        assert!(report.migrated_files > 0, "{report:?}");

        // Every read completes byte-exact from the *cache*: the tombstone
        // redirected the stale client instead of timing it out, and the
        // victim's files were migrated before its cache was abandoned.
        let pfs_reads_before = pfs.stats().snapshot().1;
        for i in 0..48u64 {
            let data = cluster.client(2).read_file(&sample(i)).unwrap();
            assert_eq!(data, MemStore::sample_content(i, 64));
        }
        assert_eq!(pfs.stats().snapshot().1, pfs_reads_before);
        let cm = cluster.client(2).metrics().full_snapshot();
        assert_eq!(cm.degraded_reads, 0, "no PFS degradation: {cm:?}");
        let agg = cluster.aggregate_metrics();
        assert!(agg.stale_view_redirects > 0, "{agg:?}");
        assert_eq!(agg.migrated_files, report.migrated_files);
        assert_eq!(agg.migrated_bytes, report.migrated_bytes);
    }

    #[test]
    fn node_down_mid_rebalance_does_not_wedge_the_pass() {
        let pfs = dataset_pfs(48, 64);
        let mut cluster = Cluster::new(
            pfs,
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                .placement(PlacementKind::Ring),
        )
        .unwrap();
        for i in 0..48u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        let joiner = cluster.add_node().unwrap();
        // A node dies the instant the migration pass starts. The handoff
        // is direct cache-to-cache (no RPC through the dead endpoints), so
        // the join below must return promptly instead of wedging — the
        // test harness timeout is the failure mode if it regresses.
        cluster.set_node_down(1, true);
        let report = cluster.wait_rebalance().expect("a pass ran");
        assert!(report.migrated_files > 0, "{report:?}");
        // The ledger still balances: per-server counters equal the report.
        let agg = cluster.aggregate_metrics();
        assert_eq!(agg.migrated_files, report.migrated_files, "{agg:?}");
        assert_eq!(agg.migrated_bytes, report.migrated_bytes, "{agg:?}");
        // And the dead node coming back does not disturb the result.
        cluster.set_node_down(1, false);
        let data = cluster.client(0).read_file(&sample(7)).unwrap();
        assert_eq!(data, MemStore::sample_content(7, 64));
        let _ = joiner;
    }

    #[test]
    fn crash_restart_and_repair_reconverge_the_allocation() {
        let pfs = dataset_pfs(32, 64);
        let cluster = Cluster::new(
            pfs.clone(),
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                .placement(PlacementKind::Ring)
                .replication(2),
        )
        .unwrap();
        for i in 0..32u64 {
            cluster.client(0).read_file(&sample(i)).unwrap();
        }
        // Organic warming leaves one copy per file (reads land on the
        // home); the first scrub pass brings the allocation to full 2x.
        assert!(cluster.under_replicated_count() > 0);
        cluster.start_repair();
        let seed_pass = cluster.wait_repair().expect("a pass ran");
        assert!(seed_pass.files_repaired > 0, "{seed_pass:?}");
        assert_eq!(cluster.under_replicated_count(), 0);

        // Node 1 crash-stops: endpoints latch down, cache and in-flight
        // state wiped. Reads still complete warm from surviving replicas.
        cluster.crash_node(1).unwrap();
        assert!(matches!(
            cluster.crash_node(9),
            Err(HvacError::InvalidConfig(_))
        ));
        let pfs_before = pfs.stats().snapshot().1;
        for i in 0..32u64 {
            let data = cluster.client(2).read_file(&sample(i)).unwrap();
            assert_eq!(data, MemStore::sample_content(i, 64));
        }
        assert_eq!(
            pfs.stats().snapshot().1,
            pfs_before,
            "survivor replicas served the whole epoch warm"
        );
        assert!(cluster.under_replicated_count() > 0);

        // Restart brings the node back empty and (repair on by default)
        // kicks the scrubber; convergence needs no client traffic.
        cluster.restart_node(1).unwrap();
        let report = cluster.wait_repair().expect("restart kicked a pass");
        assert!(report.files_repaired > 0, "{report:?}");
        assert_eq!(report.under_replicated_remaining, 0, "{report:?}");
        assert_eq!(cluster.under_replicated_count(), 0);
        let agg = cluster.aggregate_metrics();
        assert_eq!(
            agg.repaired_files,
            seed_pass.files_repaired + report.files_repaired,
            "donor-side ledger balances: {agg:?}"
        );
    }

    #[test]
    fn removing_an_unknown_node_is_an_error() {
        let pfs = dataset_pfs(1, 8);
        let mut cluster =
            Cluster::new(pfs, ClusterOptions::new(2, 1).dataset_dir("/gpfs/train")).unwrap();
        assert!(cluster.remove_node(hvac_types::NodeId(9)).is_err());
        // Removing down to zero nodes is rejected too.
        cluster.remove_node(hvac_types::NodeId(0)).unwrap();
        assert!(cluster.remove_node(hvac_types::NodeId(1)).is_err());
    }
}
