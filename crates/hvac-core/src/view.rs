//! The process-local slot holding the current [`ClusterView`].
//!
//! Clients, servers, and the preload agent each own a [`ViewHandle`]:
//! an atomically swappable `Arc<ClusterView>` plus a lock-free epoch
//! mirror for the hot path. Install is **monotonic** — only a strictly
//! newer epoch replaces the current view — so racing redirects from
//! several servers converge on the newest membership regardless of
//! delivery order.
//!
//! Locking: the slot is an `OrderedRwLock` in the `VIEW` class, which
//! sits *outside* the fabric/server/store chain. Holders snapshot the
//! `Arc` and drop the guard immediately; the guard is never held across
//! an RPC or any inner lock.

use hvac_sync::{classes, OrderedRwLock};
use hvac_types::ClusterView;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, swappable handle to the current membership view.
#[derive(Debug)]
pub struct ViewHandle {
    /// Lock-free mirror of `view.epoch()` so staleness checks on the RPC
    /// hot path never touch the lock.
    epoch: AtomicU64,
    view: OrderedRwLock<Arc<ClusterView>>,
}

impl ViewHandle {
    /// Wrap an initial view.
    pub fn new(view: ClusterView) -> Arc<Self> {
        Arc::new(Self {
            epoch: AtomicU64::new(view.epoch()),
            view: OrderedRwLock::new(classes::VIEW, Arc::new(view)),
        })
    }

    /// Current epoch (lock-free).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the current view. The lock is released before returning;
    /// callers resolve placement against the snapshot, never the slot.
    pub fn snapshot(&self) -> Arc<ClusterView> {
        self.view.read().clone()
    }

    /// Install `next` if it is strictly newer than the current view.
    /// Returns whether the swap happened. Equal or older epochs are
    /// ignored, which makes redelivered/raced redirects harmless.
    pub fn install(&self, next: Arc<ClusterView>) -> bool {
        let mut slot = self.view.write();
        if next.epoch() <= slot.epoch() {
            return false;
        }
        self.epoch.store(next.epoch(), Ordering::Release);
        *slot = next;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_types::NodeId;

    #[test]
    fn install_is_monotonic() {
        let v0 = ClusterView::initial(2, 1).unwrap();
        let v1 = v0.with_node_added(NodeId(2)).unwrap();
        let handle = ViewHandle::new(v0.clone());
        assert_eq!(handle.epoch(), 0);

        assert!(handle.install(Arc::new(v1.clone())));
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.snapshot().n_servers(), 3);

        // Re-installing the same or an older view is a no-op.
        assert!(!handle.install(Arc::new(v1)));
        assert!(!handle.install(Arc::new(v0)));
        assert_eq!(handle.epoch(), 1);
    }

    #[test]
    fn concurrent_installs_converge_on_newest() {
        let v0 = ClusterView::initial(2, 1).unwrap();
        let mut views = vec![v0.clone()];
        for _ in 0..8 {
            let last = views.last().unwrap();
            views.push(last.with_node_added(last.next_node_id()).unwrap());
        }
        let handle = ViewHandle::new(v0);
        let mut joins = Vec::new();
        for v in views.iter().skip(1).cloned() {
            let handle = handle.clone();
            joins.push(std::thread::spawn(move || {
                handle.install(Arc::new(v));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(handle.epoch(), 8);
        assert_eq!(handle.snapshot().n_servers(), 10);
    }
}
