//! The HVAC client library (paper §III-D, §III-F).
//!
//! The client is what the `LD_PRELOAD` shim (or an embedding application)
//! talks to. It keeps a descriptor table for intercepted files, computes the
//! home server of each path by hashing (§III-E), and forwards
//! `<open, read, close>` as RPCs.
//!
//! Failure semantics (§III-H, extended here): every RPC carries a per-call
//! deadline from the client's [`RetryPolicy`]; transient failures (typed
//! timeouts from hung servers, `ServerDown`, transport errors) are retried
//! with exponential backoff + seeded jitter and then failed over to the
//! next replica. A per-replica consecutive-failure circuit breaker skips a
//! wedged server proactively on subsequent calls. When every replica is
//! exhausted and the client has a PFS fallback configured, reads degrade to
//! direct PFS access — the epoch completes byte-correct instead of erroring,
//! which is HVAC's whole contract.

use crate::intercept::DatasetMatcher;
use crate::metrics::ClientMetrics;
use crate::protocol::{Request, Response};
use crate::view::ViewHandle;
use bytes::Bytes;
use hvac_hash::pathhash::{hash_job_path, mix64};
use hvac_hash::placement::{make_placement, Placement};
use hvac_net::fabric::{Fabric, Reply};
use hvac_net::pipeline::pipelined_fetch_pooled;
use hvac_net::plan::{coalesce_plan, BatchItem, PlanEntry};
use hvac_net::pool::BufferPool;
use hvac_net::reassemble_bulk_pooled;
use hvac_net::sq::{SqEntry, SqPool, SubmissionQueue};
use hvac_pfs::FileStore;
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{ClusterView, HvacError, JobId, PlacementKind, Result, RetryPolicy, ServerId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct HvacClientOptions {
    /// Directory whose files are cached (the `HVAC_DATASET_DIR` contract).
    pub dataset_dir: PathBuf,
    /// Placement algorithm — must match the rest of the job.
    pub placement: PlacementKind,
    /// Replicas per file (1 = paper's single-home design).
    pub replication: u32,
    /// Total HVAC server instances in the allocation.
    pub n_servers: usize,
    /// Server instances per node (for address derivation).
    pub instances_per_node: u32,
    /// Deadline/retry/backoff/breaker budget for every RPC this client
    /// issues.
    pub retry: RetryPolicy,
    /// Reads larger than this are split into chunk RPCs of at most this many
    /// bytes (Mercury's RDMA-sized bulk pieces).
    pub bulk_chunk: usize,
    /// How many chunk RPCs of one read are kept in flight at once.
    pub bulk_window: usize,
    /// Use the zero-copy data plane: pooled reassembly buffers on the read
    /// hot path, plus coalesced + batched segment reads
    /// ([`HvacClient::read_file_segmented`]). `false` pins the legacy
    /// one-RPC-per-segment path — the baseline the latency harness compares
    /// against.
    pub zero_copy: bool,
    /// Adjacent same-home segments are merged into one read range of at most
    /// this many bytes (0 disables coalescing).
    pub coalesce_max: u64,
    /// At most this many coalesced ranges ride in one batch RPC.
    pub batch_max: usize,
    /// Tenant identity stamped on every request this client issues. Job 0
    /// (the default) is the legacy namespace: requests stay byte-identical
    /// to pre-tenancy clients. A non-default job namespaces placement, the
    /// server-side cache, and QoS accounting.
    pub job_id: JobId,
}

impl HvacClientOptions {
    /// Options for a single-home (no replication) job.
    pub fn new<P: Into<PathBuf>>(
        dataset_dir: P,
        n_servers: usize,
        instances_per_node: u32,
    ) -> Self {
        Self {
            dataset_dir: dataset_dir.into(),
            placement: PlacementKind::Modulo,
            replication: 1,
            n_servers,
            instances_per_node,
            retry: RetryPolicy::default(),
            bulk_chunk: hvac_net::BULK_CHUNK_SIZE,
            bulk_window: hvac_net::DEFAULT_PIPELINE_WINDOW,
            zero_copy: true,
            coalesce_max: 1 << 20,
            batch_max: 16,
            job_id: JobId::from_env(),
        }
    }
}

/// Whence values for [`HvacClient::lseek`], mirroring POSIX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute position.
    Set,
    /// Relative to the current position.
    Cur,
    /// Relative to end-of-file.
    End,
}

#[derive(Debug)]
struct OpenFile {
    path: PathBuf,
    size: u64,
    pos: u64,
}

/// Per-replica circuit-breaker state. A replica that fails
/// `breaker_threshold` calls in a row is skipped (not even attempted) until
/// `breaker_cooldown` has elapsed; the first call after the cooldown is the
/// half-open probe — success closes the breaker, failure re-opens it.
#[derive(Debug, Default)]
struct ReplicaHealth {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// When this replica's breaker last tripped. Kept after the breaker
    /// closes again: when *every* replica of a call is open, the ladder
    /// force-probes the least-recently-tripped replica (the one that has
    /// been cooling the longest, hence the most likely to have recovered).
    tripped_at: Option<Instant>,
}

/// How many stale-view redirects one logical RPC will chase before giving
/// up. Each hop installs a strictly newer epoch, so more hops than this
/// means the membership is churning faster than the client can follow.
const MAX_VIEW_HOPS: u32 = 4;

/// A per-process HVAC client.
pub struct HvacClient {
    fabric: Arc<Fabric>,
    placement: Box<dyn Placement>,
    /// The membership view ownership is resolved through. Starts as the
    /// dense epoch-0 launch layout; advanced by [`Response::StaleView`]
    /// redirects or an explicit [`Self::install_view`].
    view: Arc<ViewHandle>,
    matcher: DatasetMatcher,
    options: HvacClientOptions,
    fds: OrderedMutex<HashMap<u64, OpenFile>>,
    next_fd: AtomicU64,
    metrics: ClientMetrics,
    health: OrderedMutex<HashMap<String, ReplicaHealth>>,
    /// splitmix64 state for backoff jitter — seeded from the policy so two
    /// runs with the same seed sleep the same schedule.
    jitter_state: AtomicU64,
    /// Last rung of the degradation ladder: read straight from the PFS when
    /// every replica is exhausted. `None` = error out instead (the pre-§III-H
    /// behaviour, and the only option for pure-RPC embeddings).
    pfs_fallback: Option<Arc<dyn FileStore>>,
    /// Slab pool for zero-copy reassembly: pipelined chunk buffers and
    /// batched-read assembly recycle slabs instead of allocating per read.
    pool: BufferPool,
    /// Persistent dispatch workers for batched segmented reads: every
    /// [`SubmissionQueue`] this client builds shares them, so the hot path
    /// never pays a per-read thread spawn.
    sq: SqPool,
}

/// The fabric address of a server instance, by global index.
pub fn server_addr(global_index: usize, instances_per_node: u32) -> String {
    ServerId::from_global_index(global_index, instances_per_node).to_string()
}

impl HvacClient {
    /// Build a client over a fabric.
    pub fn new(fabric: Arc<Fabric>, options: HvacClientOptions) -> Result<Self> {
        if options.n_servers == 0 {
            return Err(HvacError::InvalidConfig("n_servers must be >= 1".into()));
        }
        if options.replication == 0 {
            return Err(HvacError::InvalidConfig("replication must be >= 1".into()));
        }
        if options.bulk_chunk == 0 {
            return Err(HvacError::InvalidConfig("bulk_chunk must be >= 1".into()));
        }
        if options.bulk_window == 0 {
            return Err(HvacError::InvalidConfig("bulk_window must be >= 1".into()));
        }
        if options.batch_max == 0 {
            return Err(HvacError::InvalidConfig("batch_max must be >= 1".into()));
        }
        let jitter_seed = options.retry.jitter_seed;
        let view = ViewHandle::new(ClusterView::initial(
            options.n_servers,
            options.instances_per_node,
        )?);
        Ok(Self {
            placement: make_placement(options.placement),
            matcher: DatasetMatcher::new(&options.dataset_dir),
            sq: SqPool::new(fabric.clone(), options.bulk_window)?,
            fabric,
            options,
            view,
            fds: OrderedMutex::new(classes::CLIENT_FDS, HashMap::new()),
            next_fd: AtomicU64::new(1),
            metrics: ClientMetrics::default(),
            health: OrderedMutex::new(classes::CLIENT_HEALTH, HashMap::new()),
            jitter_state: AtomicU64::new(jitter_seed),
            pfs_fallback: None,
            pool: BufferPool::new(),
        })
    }

    /// Install a (strictly newer) membership view, as a cluster harness
    /// does on `add_node`/`remove_node`. Clients also learn views
    /// organically from [`Response::StaleView`] redirects; either path is
    /// monotonic, so the two never fight.
    pub fn install_view(&self, view: Arc<ClusterView>) -> bool {
        self.view.install(view)
    }

    /// Snapshot of the membership view this client resolves homes through.
    pub fn view(&self) -> Arc<ClusterView> {
        self.view.snapshot()
    }

    /// Arm client-side PFS degradation: when every replica of a read is
    /// exhausted (hung, down, or erroring at the transport level), serve the
    /// read directly from `pfs` instead of failing the application.
    pub fn set_pfs_fallback(&mut self, pfs: Arc<dyn FileStore>) {
        self.pfs_fallback = Some(pfs);
    }

    /// Whether HVAC should intercept this path (the shim falls back to the
    /// real libc call otherwise).
    pub fn intercepts<P: AsRef<Path>>(&self, path: P) -> bool {
        self.matcher.matches(path)
    }

    /// Client metrics.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// Replica addresses of a path, home first, per the current view.
    pub fn replica_addrs(&self, path: &Path) -> Vec<String> {
        self.replica_addrs_in(&self.view.snapshot(), path)
    }

    /// Replica addresses of a path in an explicit view, home first.
    /// Placement hashes `(job, path)`, so two tenants reading the same
    /// dataset spread their (separately-cached) copies independently.
    fn replica_addrs_in(&self, view: &ClusterView, path: &Path) -> Vec<String> {
        let fid = hash_job_path(self.options.job_id, path);
        self.placement
            .replicas_in_view(fid, view, self.options.replication as usize)
            .into_iter()
            .map(|sid| view.addr(sid))
            .collect()
    }

    /// Next jitter draw in `[0, backoff_base)` (splitmix64; relaxed CAS-free
    /// update is fine — determinism only matters for single-threaded tests).
    fn jitter(&self) -> Duration {
        let base = self.options.retry.backoff_base;
        let mut x = self
            .jitter_state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let nanos = base.as_nanos().max(1) as u64;
        Duration::from_nanos(x % nanos)
    }

    /// Whether `addr`'s breaker is open (still cooling down). A replica past
    /// its cooldown is allowed one half-open probe.
    fn breaker_open(&self, addr: &str) -> bool {
        let mut health = self.health.lock();
        match health.get_mut(addr) {
            Some(h) => match h.open_until {
                Some(until) if Instant::now() < until => true,
                Some(_) => {
                    // Half-open: let one probe through; a failure re-trips.
                    h.open_until = None;
                    false
                }
                None => false,
            },
            None => false,
        }
    }

    fn record_success(&self, addr: &str) {
        let mut health = self.health.lock();
        if let Some(h) = health.get_mut(addr) {
            h.consecutive_failures = 0;
            h.open_until = None;
        }
    }

    fn record_failure(&self, addr: &str) {
        let policy = &self.options.retry;
        let mut health = self.health.lock();
        let h = health.entry(addr.to_string()).or_default();
        h.consecutive_failures += 1;
        if h.consecutive_failures >= policy.breaker_threshold && h.open_until.is_none() {
            let now = Instant::now();
            h.open_until = Some(now + policy.breaker_cooldown);
            h.tripped_at = Some(now);
            self.metrics.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One replica, with the per-call deadline and same-replica retries:
    /// timeouts and transport errors are retried up to `max_attempts` with
    /// exponential backoff + jitter; `ServerDown` returns immediately
    /// (retrying a dead endpoint is pointless); fatal errors (an answered
    /// RPC error) close the breaker and return at once.
    fn call_one_replica(&self, addr: &str, encoded: &Bytes) -> Result<Reply> {
        let policy = &self.options.retry;
        let mut attempt = 0u32;
        loop {
            match self
                .fabric
                .call_with_deadline(addr, encoded.clone(), policy.rpc_timeout)
            {
                Ok(reply) => {
                    self.record_success(addr);
                    return Ok(reply);
                }
                Err(e) => {
                    if matches!(e, HvacError::RpcTimeout { .. }) {
                        self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    if !e.is_retriable() {
                        // An answered error from a live server is the file's
                        // real status — the server is healthy.
                        self.record_success(addr);
                        return Err(e);
                    }
                    self.record_failure(addr);
                    attempt += 1;
                    if matches!(e, HvacError::ServerDown(_)) || attempt >= policy.max_attempts {
                        return Err(e);
                    }
                    self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = policy
                        .backoff_base
                        .saturating_mul(1u32 << (attempt - 1).min(16));
                    std::thread::sleep(backoff + self.jitter());
                }
            }
        }
    }

    /// Race one hedged pair: fire `primary`, and if it has not answered
    /// within the policy's hedge delay, fire a *single* backup request to
    /// `backup` and take whichever answers first. Legs are bare one-shot
    /// calls (no same-replica retries — the sequential ladder owns those);
    /// health is recorded as each leg's outcome arrives, so a slow leg
    /// still feeds the breaker. Returns `Some(Ok)` on the first success,
    /// `Some(Err)` on an answered (fatal) error — the file's real status,
    /// which hedging must not mask — and `None` when every fired leg
    /// failed transiently, telling the caller to walk the ordinary ladder.
    fn call_hedged(&self, primary: &str, backup: &str, encoded: &Bytes) -> Option<Result<Reply>> {
        let policy = &self.options.retry;
        let delay = policy.hedge_delay()?;
        let timeout = policy.rpc_timeout;
        let (tx, rx) = std::sync::mpsc::channel();
        let spawn_leg = |addr: &str, is_backup: bool| {
            let fabric = Arc::clone(&self.fabric);
            let addr = addr.to_string();
            let encoded = encoded.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let result = fabric.call_with_deadline(&addr, encoded, timeout);
                // A closed channel just means the other leg already won.
                let _ = tx.send((is_backup, addr, result));
            });
        };
        spawn_leg(primary, false);
        let mut outstanding = 1u32;
        let mut queue = Vec::new();
        match rx.recv_timeout(delay) {
            Ok(msg) => queue.push(msg),
            Err(_) => {
                // Primary is past the hedge delay: arm the backup and race.
                self.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                spawn_leg(backup, true);
                outstanding = 2;
            }
        }
        loop {
            let (is_backup, addr, result) = match queue.pop() {
                Some(msg) => msg,
                // Every leg is bounded by the deadline; the slack covers
                // scheduler noise. A miss here means both legs wedged —
                // hand the call back to the ladder.
                None => rx.recv_timeout(timeout + delay).ok()?,
            };
            outstanding -= 1;
            match result {
                Ok(reply) => {
                    self.record_success(&addr);
                    if is_backup {
                        self.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(Ok(reply));
                }
                Err(e) if e.is_retriable() => {
                    if matches!(e, HvacError::RpcTimeout { .. }) {
                        self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    self.record_failure(&addr);
                    if outstanding == 0 {
                        return None;
                    }
                }
                Err(fatal) => {
                    // An answered error from a live server is real status.
                    self.record_success(&addr);
                    return Some(Err(fatal));
                }
            }
        }
    }

    /// Issue one RPC over the replica ladder:
    ///
    /// 0. with a hedge delay configured ([`RetryPolicy::hedge_delay`]) and
    ///    at least two closed-breaker replicas, race a delayed backup
    ///    against the primary ([`Self::call_hedged`]) and take the first
    ///    success; open breakers are never hedged to, so hedging cannot
    ///    double the load on a replica that is already tripping,
    /// 1. walk replicas home-first, skipping any whose breaker is open,
    /// 2. each attempted replica gets deadline + retry via
    ///    [`Self::call_one_replica`]; transient failure moves to the next
    ///    replica, a fatal error returns at once (a live server's `ENOENT`
    ///    must not be masked by a replica walk),
    /// 3. if the walk attempted *nothing* — every replica's breaker is
    ///    open — force-probe the skipped ones, least-recently-tripped
    ///    first (the replica cooling the longest is the most likely to
    ///    have recovered). This holds even with a PFS fallback armed
    ///    (then one probe suffices before degrading): returning
    ///    `ServerDown` without a single RPC would pin a fully recovered
    ///    cluster onto the PFS for an entire cooldown. If something *was*
    ///    attempted and failed, a fallback-armed caller degrades instead,
    ///    which is just as correct and far cheaper than waiting out a
    ///    wedged server's deadline; without a fallback, probe them all,
    /// 4. success on any replica other than the home counts as a failover.
    fn call_replicas(&self, addrs: &[String], encoded: &Bytes) -> Result<Reply> {
        if addrs.is_empty() {
            return Err(HvacError::InvalidConfig("empty replica set".into()));
        }
        if self.options.retry.hedge_delay().is_some() && addrs.len() >= 2 {
            let live: Vec<&String> = addrs
                .iter()
                .filter(|a| !self.breaker_open(a))
                .take(2)
                .collect();
            if live.len() == 2 {
                if let Some(outcome) = self.call_hedged(live[0], live[1], encoded) {
                    return outcome;
                }
            }
        }
        let mut skipped = Vec::new();
        let mut attempted = false;
        let mut last_err = None;
        for addr in addrs {
            if self.breaker_open(addr) {
                self.metrics.breaker_skips.fetch_add(1, Ordering::Relaxed);
                skipped.push(addr);
                continue;
            }
            attempted = true;
            match self.call_one_replica(addr, encoded) {
                Ok(reply) => {
                    if *addr != addrs[0] {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Err(e) if e.is_retriable() => last_err = Some(e),
                Err(fatal) => return Err(fatal),
            }
        }
        if !attempted && !skipped.is_empty() {
            {
                let health = self.health.lock();
                skipped.sort_by_key(|a| health.get(a.as_str()).and_then(|h| h.tripped_at));
            }
            if self.pfs_fallback.is_some() {
                skipped.truncate(1);
            }
        } else if self.pfs_fallback.is_some() {
            skipped.clear();
        }
        for addr in skipped {
            match self.call_one_replica(addr, encoded) {
                Ok(reply) => {
                    if *addr != addrs[0] {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Err(e) if e.is_retriable() => last_err = Some(e),
                Err(fatal) => return Err(fatal),
            }
        }
        // addrs is non-empty and every arm either returned or set last_err.
        Err(last_err.unwrap_or_else(|| HvacError::ServerDown("no replica answered".into())))
    }

    /// Issue one logical RPC through the membership view: snapshot the
    /// view, resolve replica addresses *in that view*, stamp the request
    /// with the view's epoch, and send it down the replica ladder. A
    /// [`Response::StaleView`] redirect installs the piggybacked (strictly
    /// newer) view and re-resolves — bounded by [`MAX_VIEW_HOPS`] so a
    /// churn storm degrades into an error instead of a livelock. The
    /// interception happens *here*, before [`Response::into_result`],
    /// because that is the only place the piggybacked view is still
    /// attached to the error.
    fn call_with_view<F>(&self, req: &Request, addrs_of: F) -> Result<Reply>
    where
        F: Fn(&ClusterView) -> Vec<String>,
    {
        let mut hops = 0u32;
        loop {
            let view = self.view.snapshot();
            let encoded = req.encode_ctx(view.epoch(), self.options.job_id)?;
            let addrs = addrs_of(&view);
            let reply = self.call_replicas(&addrs, &encoded)?;
            match Response::decode(reply.header.clone())? {
                Response::StaleView { view: next } => {
                    self.metrics.view_refreshes.fetch_add(1, Ordering::Relaxed);
                    self.view.install(Arc::new(next));
                    hops += 1;
                    if hops >= MAX_VIEW_HOPS {
                        return Err(HvacError::StaleView {
                            current_epoch: self.view.epoch(),
                        });
                    }
                }
                _ => return Ok(reply),
            }
        }
    }

    /// Issue an RPC to the first healthy replica of `path`.
    fn call(&self, path: &Path, req: &Request) -> Result<Reply> {
        self.call_with_view(req, |view| self.replica_addrs_in(view, path))
    }

    /// Open a dataset file; returns an HVAC descriptor.
    pub fn open(&self, path: &Path) -> Result<u64> {
        if !self.intercepts(path) {
            self.metrics
                .passthrough_opens
                .fetch_add(1, Ordering::Relaxed);
            return Err(HvacError::Protocol(format!(
                "{} is outside the dataset directory {}",
                path.display(),
                self.matcher.root().display()
            )));
        }
        let size = self.stat(path)?;
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(
            fd,
            OpenFile {
                path: path.to_path_buf(),
                size,
                pos: 0,
            },
        );
        self.metrics.opens.fetch_add(1, Ordering::Relaxed);
        Ok(fd)
    }

    fn with_fd<T>(&self, fd: u64, f: impl FnOnce(&mut OpenFile) -> T) -> Result<T> {
        let mut fds = self.fds.lock();
        fds.get_mut(&fd).map(f).ok_or(HvacError::BadFd(fd as i32))
    }

    /// Clamp a request to the size recorded at open time, so an oversized
    /// `len` (POSIX allows `read(fd, buf, SIZE_MAX)`) never plans an
    /// absurd chunk pipeline — it just short-reads like the syscall would.
    fn clamp_len(size: u64, offset: u64, len: usize) -> usize {
        len.min(size.saturating_sub(offset).try_into().unwrap_or(usize::MAX))
    }

    /// Positional read (POSIX `pread`): does not move the file position.
    pub fn pread(&self, fd: u64, offset: u64, len: usize) -> Result<Bytes> {
        let (path, size) = self.with_fd(fd, |of| (of.path.clone(), of.size))?;
        self.read_path_at(&path, offset, Self::clamp_len(size, offset, len))
    }

    /// Sequential read: reads at the current position and advances it.
    pub fn read(&self, fd: u64, len: usize) -> Result<Bytes> {
        let (path, pos, size) = self.with_fd(fd, |of| (of.path.clone(), of.pos, of.size))?;
        let data = self.read_path_at(&path, pos, Self::clamp_len(size, pos, len))?;
        self.with_fd(fd, |of| of.pos = pos + data.len() as u64)?;
        Ok(data)
    }

    /// POSIX `lseek`. Returns the new position.
    pub fn lseek(&self, fd: u64, offset: i64, whence: Whence) -> Result<u64> {
        self.with_fd(fd, |of| {
            let base = match whence {
                Whence::Set => 0i64,
                Whence::Cur => of.pos as i64,
                Whence::End => of.size as i64,
            };
            let newpos =
                base.checked_add(offset)
                    .filter(|&p| p >= 0)
                    .ok_or(HvacError::Protocol(format!(
                        "seek to negative offset {offset}"
                    )))?;
            of.pos = newpos as u64;
            Ok(of.pos)
        })?
    }

    /// Size recorded at open time.
    pub fn fd_size(&self, fd: u64) -> Result<u64> {
        self.with_fd(fd, |of| of.size)
    }

    /// Close a descriptor, sending the out-of-band teardown RPC (§III-D ⑧).
    pub fn close(&self, fd: u64) -> Result<()> {
        let path = {
            let mut fds = self.fds.lock();
            fds.remove(&fd).ok_or(HvacError::BadFd(fd as i32))?.path
        };
        self.metrics.closes.fetch_add(1, Ordering::Relaxed);
        // Teardown is advisory; a down server must not fail the close.
        let _ = self.call(&path, &Request::Close { path: path.clone() });
        Ok(())
    }

    /// Whether `err` should fall through to direct PFS access: every replica
    /// failed transiently (hung/down/transport) *and* a fallback store is
    /// armed. Fatal errors (an answered `ENOENT`, protocol garbage) never
    /// degrade — the PFS would only repeat them.
    fn should_degrade(&self, err: &HvacError) -> bool {
        self.pfs_fallback.is_some() && err.is_retriable()
    }

    /// Stat without opening.
    pub fn stat(&self, path: &Path) -> Result<u64> {
        let reply = match self.call(
            path,
            &Request::Stat {
                path: path.to_path_buf(),
            },
        ) {
            Ok(reply) => reply,
            Err(e) if self.should_degrade(&e) => {
                // Unwrap is fine: should_degrade checked is_some.
                let pfs = self.pfs_fallback.as_ref().ok_or(e)?;
                return Ok(pfs.open_meta(path)?.size);
            }
            Err(e) => return Err(e),
        };
        match Response::decode(reply.header)?.into_result()? {
            Response::Stat { size } => Ok(size),
            other => Err(HvacError::Protocol(format!(
                "unexpected stat reply: {other:?}"
            ))),
        }
    }

    /// Serve one read directly from the PFS (the degradation ladder's last
    /// rung). Byte-identical to what a server-side miss would return.
    fn degraded_read(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let pfs = self
            .pfs_fallback
            .as_ref()
            .ok_or_else(|| HvacError::InvalidConfig("no PFS fallback armed".into()))?;
        let data = pfs.read_at(path, offset, len)?;
        self.metrics.degraded_reads.fetch_add(1, Ordering::Relaxed);
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Fetch one chunk of a read: a `Read` RPC over the replica ladder (the
    /// full deadline/retry/failover/breaker treatment per chunk), degrading
    /// to direct PFS access for just this chunk when every replica is
    /// exhausted. Each chunk re-resolves its home through the current view,
    /// so a membership change mid-pipeline redirects only the chunks that
    /// actually hit a stale home. Counts only `degraded_reads`; the logical
    /// read's `reads`/`bytes` are accounted once by [`Self::read_path_at`].
    fn fetch_chunk(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let req = Request::Read {
            path: path.to_path_buf(),
            offset,
            len: len as u64,
        };
        let reply = match self.call_with_view(&req, |view| self.replica_addrs_in(view, path)) {
            Ok(reply) => reply,
            Err(e) if self.should_degrade(&e) => {
                let pfs = self.pfs_fallback.as_ref().ok_or(e)?;
                let data = pfs.read_at(path, offset, len)?;
                self.metrics.degraded_reads.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
            Err(e) => return Err(e),
        };
        match Response::decode(reply.header)?.into_result()? {
            Response::Data { .. } => Ok(reply.bulk.unwrap_or_default()),
            other => Err(HvacError::Protocol(format!(
                "unexpected read reply: {other:?}"
            ))),
        }
    }

    /// One logical read: reads that fit in `bulk_chunk` issue a single RPC;
    /// larger ones are pipelined as a bounded window of concurrent chunk
    /// RPCs reassembled in offset order ([`pipelined_fetch_pooled`]). With
    /// `zero_copy` on, the reassembly buffer comes from (and returns to)
    /// the client's slab pool instead of the allocator.
    fn read_path_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let pool = self.options.zero_copy.then_some(&self.pool);
        let data = pipelined_fetch_pooled(
            offset,
            len,
            self.options.bulk_chunk,
            self.options.bulk_window,
            |chunk_off, chunk_len| self.fetch_chunk(path, chunk_off, chunk_len),
            pool,
        )?;
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Read a whole file at **segment granularity** (the §III-E alternative
    /// to file-granular caching): the file is cut into `segment_size` byte
    /// segments, each homed on its *own* server (`hash(path, segment)`), so
    /// a multi-gigabyte file spreads over the allocation instead of landing
    /// on one NVMe. Returns the reassembled contents.
    pub fn read_file_segmented(&self, path: &Path, segment_size: u64) -> Result<Bytes> {
        if segment_size == 0 {
            return Err(HvacError::InvalidConfig("segment_size must be > 0".into()));
        }
        let size = self.stat(path)?;
        self.metrics.opens.fetch_add(1, Ordering::Relaxed);
        let data = if self.options.zero_copy {
            self.read_segmented_batched(path, size, segment_size)?
        } else {
            self.read_segmented_sequential(path, size, segment_size)?
        };
        self.metrics.closes.fetch_add(1, Ordering::Relaxed);
        Ok(data)
    }

    /// The legacy segmented read: one `ReadSegment` RPC per segment, issued
    /// sequentially through the full retry/failover/degrade ladder.
    fn read_segmented_sequential(
        &self,
        path: &Path,
        size: u64,
        segment_size: u64,
    ) -> Result<Bytes> {
        let mut assembled = bytes::BytesMut::with_capacity(size as usize);
        let mut offset = 0u64;
        let mut seg_index = 0u64;
        while offset < size {
            let len = segment_size.min(size - offset);
            let data = self.read_one_segment(path, seg_index, offset, len)?;
            assembled.extend_from_slice(&data);
            offset += len;
            seg_index += 1;
        }
        Ok(assembled.freeze())
    }

    /// One segment through the per-segment ladder: `call_with_view` with the
    /// segment's own placement (each segment re-resolves its home, so a
    /// mid-file membership change redirects only later segments), degrading
    /// to direct PFS access for just this segment when every replica is
    /// exhausted. Strict on length: a short segment is a protocol error.
    fn read_one_segment(
        &self,
        path: &Path,
        seg_index: u64,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        let req = Request::ReadSegment {
            path: path.to_path_buf(),
            offset,
            len,
        };
        let reply = match self.call_with_view(&req, |view| {
            self.segment_replica_addrs_in(view, path, seg_index)
        }) {
            Ok(r) => r,
            Err(e) if self.should_degrade(&e) => {
                // Serve just this segment from the PFS; later segments
                // still try their own (distinct) home servers.
                let data = self.degraded_read(path, offset, len as usize)?;
                if data.len() as u64 != len {
                    return Err(HvacError::Protocol(format!(
                        "segment {seg_index} of {} returned {} bytes from the PFS, expected {len}",
                        path.display(),
                        data.len()
                    )));
                }
                return Ok(data);
            }
            Err(e) => return Err(e),
        };
        match Response::decode(reply.header)?.into_result()? {
            Response::Data { .. } => {
                let data = reply.bulk.unwrap_or_default();
                if data.len() as u64 != len {
                    return Err(HvacError::Protocol(format!(
                        "segment {seg_index} of {} returned {} bytes, expected {len}",
                        path.display(),
                        data.len()
                    )));
                }
                self.metrics.reads.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .bytes
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(data)
            }
            other => Err(HvacError::Protocol(format!(
                "unexpected segment reply: {other:?}"
            ))),
        }
    }

    /// The zero-copy segmented read: plan → batch → submit.
    ///
    /// [`coalesce_plan`] merges adjacent same-home segments into contiguous
    /// ranges (≤ `coalesce_max`), ranges are grouped per destination into
    /// batches of ≤ `batch_max`, and every batch ships as **one**
    /// [`Request::Batch`] RPC through the [`SubmissionQueue`] (up to
    /// `bulk_window` in flight). Batches are all-or-nothing on the server;
    /// any failed, stale, or malformed batch reply is re-read segment by
    /// segment through [`Self::read_one_segment`] — the full ladder — so the
    /// fast path never weakens fault tolerance.
    fn read_segmented_batched(&self, path: &Path, size: u64, segment_size: u64) -> Result<Bytes> {
        let path_str = path.to_str().ok_or_else(|| {
            HvacError::Protocol(format!("non-UTF-8 path not supported: {}", path.display()))
        })?;
        let view = self.view.snapshot();
        let plan: Vec<PlanEntry<String>> =
            coalesce_plan(0, size, segment_size, self.options.coalesce_max, |seg| {
                self.segment_replica_addrs_in(&view, path, seg)
                    .into_iter()
                    .next()
                    .unwrap_or_default()
            });
        // Group plan entries by destination (order preserved) into batches
        // of at most `batch_max` ranges each.
        let mut batches: Vec<(String, Vec<usize>)> = Vec::new();
        let mut open: HashMap<String, usize> = HashMap::new();
        for (i, entry) in plan.iter().enumerate() {
            match open.get(&entry.dest) {
                Some(&b) if batches[b].1.len() < self.options.batch_max => batches[b].1.push(i),
                _ => {
                    batches.push((entry.dest.clone(), vec![i]));
                    open.insert(entry.dest.clone(), batches.len() - 1);
                }
            }
        }
        let mut sq = SubmissionQueue::with_pool(&self.sq);
        for (b, (dest, idxs)) in batches.iter().enumerate() {
            let items: Vec<BatchItem> = idxs
                .iter()
                .map(|&i| BatchItem {
                    path: path_str.to_string(),
                    offset: plan[i].offset,
                    len: plan[i].len,
                })
                .collect();
            sq.prep(SqEntry {
                dest: dest.clone(),
                payload: Request::Batch { items }.encode_ctx(view.epoch(), self.options.job_id)?,
                deadline: self.options.retry.rpc_timeout,
                user_data: b as u64,
            });
            self.metrics.batch_rpcs.fetch_add(1, Ordering::Relaxed);
        }
        let mut slots: Vec<Option<Bytes>> = vec![None; plan.len()];
        // Completions come back in submission order (slot `b` answers batch
        // `b`), which holds even for sentinel completions from a lost or
        // timed-out dispatch, whose `user_data` is u64::MAX rather than a
        // batch index — never index `batches` by `user_data`.
        for (b, c) in sq.submit_and_wait().into_iter().enumerate() {
            let Some((_, idxs)) = batches.get(b) else {
                break;
            };
            debug_assert!(
                c.result.is_err() || c.user_data == b as u64,
                "completion {b} tagged {}",
                c.user_data
            );
            let expected: Vec<u64> = idxs.iter().map(|&i| plan[i].len).collect();
            match c
                .result
                .ok()
                .and_then(|r| self.split_batch_reply(r, &expected))
            {
                Some(parts) => {
                    for (&i, part) in idxs.iter().zip(parts) {
                        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
                        self.metrics
                            .bytes
                            .fetch_add(part.len() as u64, Ordering::Relaxed);
                        slots[i] = Some(part);
                    }
                }
                None => {
                    // The batch failed as a unit; re-read each of its ranges
                    // segment by segment through the full ladder.
                    self.metrics.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
                    for &i in idxs {
                        slots[i] =
                            Some(self.read_entry_by_segments(path, &plan[i], segment_size)?);
                    }
                }
            }
        }
        let mut chunks = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(part) => chunks.push(part),
                None => {
                    // No completion ever surfaced for this range's batch
                    // (abandoned submit, lost worker); re-read it through
                    // the full ladder rather than failing the whole read.
                    self.metrics.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
                    chunks.push(self.read_entry_by_segments(path, &plan[i], segment_size)?);
                }
            }
        }
        // lockgraph: acquires NET_POOL
        Ok(reassemble_bulk_pooled(&chunks, &self.pool))
    }

    /// Validate and split one batch reply into per-range payloads. Returns
    /// `None` on anything other than a well-formed full answer — an error
    /// reply, a stale view (installed here so the fallback re-resolves under
    /// the newer epoch), a length mismatch — and the caller falls back.
    fn split_batch_reply(&self, reply: Reply, expected: &[u64]) -> Option<Vec<Bytes>> {
        match Response::decode(reply.header.clone()).ok()? {
            Response::Batch { lens } => {
                if lens.len() != expected.len() {
                    return None;
                }
                let bulk = reply.bulk.unwrap_or_default();
                let total: u64 = lens.iter().map(|&l| u64::from(l)).sum();
                if bulk.len() as u64 != total {
                    return None;
                }
                let mut parts = Vec::with_capacity(lens.len());
                let mut at = 0usize;
                for (j, &l) in lens.iter().enumerate() {
                    if u64::from(l) != expected[j] {
                        return None;
                    }
                    parts.push(bulk.slice(at..at + l as usize));
                    at += l as usize;
                }
                Some(parts)
            }
            Response::StaleView { view } => {
                self.metrics.view_refreshes.fetch_add(1, Ordering::Relaxed);
                self.view.install(Arc::new(view));
                None
            }
            _ => None,
        }
    }

    /// Fallback for one coalesced range: read its segments individually
    /// through [`Self::read_one_segment`] (retry, failover, hedging, PFS
    /// degrade — everything the legacy path has) and reassemble from the
    /// slab pool. Ranges planned from offset 0 start on segment boundaries,
    /// so each piece is exactly the segment the legacy path would cache.
    fn read_entry_by_segments(
        &self,
        path: &Path,
        entry: &PlanEntry<String>,
        segment_size: u64,
    ) -> Result<Bytes> {
        let mut chunks = Vec::new();
        let mut at = entry.offset;
        let end = entry.offset + entry.len;
        while at < end {
            let seg = at / segment_size;
            let seg_end = (seg + 1).saturating_mul(segment_size).min(end);
            chunks.push(self.read_one_segment(path, seg, at, seg_end - at)?);
            at = seg_end;
        }
        // lockgraph: acquires NET_POOL
        Ok(reassemble_bulk_pooled(&chunks, &self.pool))
    }

    /// Replica addresses of one segment of a path, home first, per the
    /// current view. Each segment hashes independently, so segments of one
    /// file spread across servers.
    pub fn segment_replica_addrs(&self, path: &Path, seg_index: u64) -> Vec<String> {
        self.segment_replica_addrs_in(&self.view.snapshot(), path, seg_index)
    }

    /// Replica addresses of one segment in an explicit view.
    fn segment_replica_addrs_in(
        &self,
        view: &ClusterView,
        path: &Path,
        seg_index: u64,
    ) -> Vec<String> {
        let fid = hash_job_path(self.options.job_id, path);
        let seg_fid =
            hvac_types::FileId(mix64(fid.0 ^ seg_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        self.placement
            .replicas_in_view(seg_fid, view, self.options.replication as usize)
            .into_iter()
            .map(|sid| view.addr(sid))
            .collect()
    }

    /// Ask the home server of every path to stage it in the background
    /// (the paper's §IV-C prefetching future work). Paths are grouped by
    /// home server and sent as one RPC per server; returns the number of
    /// paths submitted. Staging is asynchronous — subsequent reads of a
    /// still-copying file simply piggyback on the in-flight copy.
    pub fn prefetch<'a, I>(&self, paths: I) -> Result<usize>
    where
        I: IntoIterator<Item = &'a Path>,
    {
        let mut pending: Vec<PathBuf> = paths
            .into_iter()
            .filter(|p| self.intercepts(p))
            .map(Path::to_path_buf)
            .collect();
        let submitted = pending.len();
        let mut hops = 0u32;
        while !pending.is_empty() {
            // Group by home server *in the current view*; a StaleView bounce
            // re-groups just the bounced batch under the newer view.
            let view = self.view.snapshot();
            let mut by_server: HashMap<String, Vec<PathBuf>> = HashMap::new();
            for path in pending.drain(..) {
                let addr = self
                    .replica_addrs_in(&view, &path)
                    .into_iter()
                    .next()
                    .ok_or_else(|| HvacError::InvalidConfig("replication must be >= 1".into()))?;
                by_server.entry(addr).or_default().push(path);
            }
            for (addr, batch) in by_server {
                let req = Request::Prefetch {
                    paths: batch.clone(),
                };
                let reply = self
                    .fabric
                    .call(&addr, req.encode_ctx(view.epoch(), self.options.job_id)?)?;
                match Response::decode(reply.header)? {
                    Response::StaleView { view: next } => {
                        self.metrics.view_refreshes.fetch_add(1, Ordering::Relaxed);
                        self.view.install(Arc::new(next));
                        pending.extend(batch);
                    }
                    resp => {
                        resp.into_result()?;
                    }
                }
            }
            if !pending.is_empty() {
                hops += 1;
                if hops >= MAX_VIEW_HOPS {
                    return Err(HvacError::StaleView {
                        current_epoch: self.view.epoch(),
                    });
                }
            }
        }
        Ok(submitted)
    }

    /// Convenience: `<open, read-entire-file, close>` — the exact transaction
    /// the paper's DL profile shows per training sample (§III-F).
    pub fn read_file(&self, path: &Path) -> Result<Bytes> {
        let fd = self.open(path)?;
        let size = self.fd_size(fd)?;
        let result = self.pread(fd, 0, size as usize);
        self.close(fd)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheManager;
    use crate::eviction::make_policy;
    use crate::server::{HvacServer, HvacServerOptions};
    use hvac_pfs::{FileStore, MemStore};
    use hvac_storage::LocalStore;
    use hvac_types::{ByteSize, EvictionPolicyKind};

    type ServerSet = Vec<(Arc<HvacServer>, hvac_net::fabric::ServerEndpoint)>;

    /// Three-node mini-allocation on one fabric, with a hook to tweak the
    /// client options before the client is built.
    fn setup_with(
        replication: u32,
        tweak: impl FnOnce(&mut HvacClientOptions),
    ) -> (Arc<MemStore>, Arc<Fabric>, ServerSet, HvacClient) {
        let pfs = Arc::new(MemStore::new());
        pfs.synthesize_dataset(Path::new("/gpfs/set"), 24, |i| 64 + (i as usize % 5) * 16);
        let fabric = Arc::new(Fabric::new());
        let mut servers = Vec::new();
        for node in 0..3u32 {
            let cache = Arc::new(CacheManager::new(
                LocalStore::in_memory(ByteSize(1 << 20)),
                make_policy(EvictionPolicyKind::Random, node as u64),
            ));
            let server = HvacServer::new(
                cache,
                pfs.clone(),
                HvacServerOptions::default(),
                &format!("n{node}"),
            )
            .unwrap();
            let ep = server
                .serve(&fabric, &server_addr(node as usize, 1))
                .unwrap();
            servers.push((server, ep));
        }
        let mut opts = HvacClientOptions::new("/gpfs/set", 3, 1);
        opts.replication = replication;
        tweak(&mut opts);
        let client = HvacClient::new(fabric.clone(), opts).unwrap();
        (pfs, fabric, servers, client)
    }

    /// Three-node mini-allocation with the default retry policy.
    fn setup2(replication: u32) -> (Arc<MemStore>, Arc<Fabric>, ServerSet, HvacClient) {
        setup_with(replication, |_| {})
    }

    fn sample(i: u32) -> PathBuf {
        PathBuf::from(format!("/gpfs/set/sample_{i:08}.bin"))
    }

    #[test]
    fn open_read_close_round_trip() {
        let (pfs, _fabric, _servers, client) = setup2(1);
        let p = sample(0);
        let expected = pfs.read_all(&p).unwrap();

        let fd = client.open(&p).unwrap();
        assert_eq!(client.fd_size(fd).unwrap(), expected.len() as u64);
        let data = client.read(fd, expected.len()).unwrap();
        assert_eq!(data, expected);
        // Position advanced to EOF; next read is empty.
        assert_eq!(client.read(fd, 10).unwrap().len(), 0);
        client.close(fd).unwrap();
        assert!(matches!(client.read(fd, 1), Err(HvacError::BadFd(_))));

        let (opens, reads, bytes, closes, _, _) = client.metrics().snapshot();
        assert_eq!(opens, 1);
        assert_eq!(reads, 2);
        assert_eq!(bytes, expected.len() as u64);
        assert_eq!(closes, 1);
    }

    #[test]
    fn pread_does_not_move_position() {
        let (_pfs, _f, _s, client) = setup2(1);
        let fd = client.open(&sample(1)).unwrap();
        let a = client.pread(fd, 10, 8).unwrap();
        let b = client.read(fd, 8).unwrap(); // still at offset 0
        assert_ne!(a, b);
        client.close(fd).unwrap();
    }

    #[test]
    fn lseek_semantics() {
        let (_pfs, _f, _s, client) = setup2(1);
        let fd = client.open(&sample(2)).unwrap();
        let size = client.fd_size(fd).unwrap();
        assert_eq!(client.lseek(fd, 5, Whence::Set).unwrap(), 5);
        assert_eq!(client.lseek(fd, 3, Whence::Cur).unwrap(), 8);
        assert_eq!(client.lseek(fd, -2, Whence::End).unwrap(), size - 2);
        assert!(client.lseek(fd, -1000, Whence::Cur).is_err());
        // Position unchanged after failed seek.
        let rest = client.read(fd, usize::MAX / 2).unwrap();
        assert_eq!(rest.len() as u64, 2);
        client.close(fd).unwrap();
    }

    #[test]
    fn non_dataset_path_is_rejected_for_passthrough() {
        let (_pfs, _f, _s, client) = setup2(1);
        assert!(!client.intercepts("/etc/passwd"));
        assert!(client.open(Path::new("/etc/passwd")).is_err());
        assert_eq!(client.metrics().snapshot().5, 1);
    }

    #[test]
    fn missing_file_error_propagates() {
        let (_pfs, _f, _s, client) = setup2(1);
        let err = client.open(Path::new("/gpfs/set/absent.bin")).unwrap_err();
        assert!(matches!(err, HvacError::Remote { code: 2, .. }));
        assert_eq!(err.errno(), 2, "server-side ENOENT survives the wire");
        assert!(!err.is_retriable(), "an answered error must not fail over");
    }

    #[test]
    fn reads_are_distributed_across_homes() {
        let (_pfs, _f, servers, client) = setup2(1);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        let counts: Vec<u64> = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().reads)
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 24);
        assert!(
            counts.iter().all(|&c| c > 0),
            "placement left a server idle: {counts:?}"
        );
    }

    #[test]
    fn second_epoch_is_all_cache_hits() {
        let (pfs, _f, servers, client) = setup2(1);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        let pfs_reads_epoch1 = pfs.stats().snapshot().1;
        assert_eq!(pfs_reads_epoch1, 24);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        assert_eq!(
            pfs.stats().snapshot().1,
            24,
            "epoch 2 never touched the PFS"
        );
        let total_hits: u64 = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().cache_hits)
            .sum();
        assert_eq!(total_hits, 24);
    }

    #[test]
    fn failover_to_replica_when_home_is_down() {
        let (_pfs, fabric, servers, client) = setup2(2);
        let p = sample(3);
        // Find and kill the home server.
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        fabric.set_down(&addrs[0], true);

        let data = client.read_file(&p).unwrap();
        assert!(!data.is_empty());
        assert!(client.metrics().snapshot().4 >= 1, "failover counted");
        // The replica (second address) served it.
        let served: u64 = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().reads)
            .sum();
        assert!(served >= 1);
    }

    #[test]
    fn no_replication_and_home_down_fails() {
        let (_pfs, fabric, _servers, client) = setup2(1);
        let p = sample(4);
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 1);
        fabric.set_down(&addrs[0], true);
        assert!(matches!(
            client.read_file(&p),
            Err(HvacError::ServerDown(_))
        ));
    }

    #[test]
    fn invalid_options_rejected() {
        let fabric = Arc::new(Fabric::new());
        let mut opts = HvacClientOptions::new("/d", 0, 1);
        assert!(HvacClient::new(fabric.clone(), opts.clone()).is_err());
        opts.n_servers = 1;
        opts.replication = 0;
        assert!(HvacClient::new(fabric, opts).is_err());
    }

    #[test]
    fn all_replicas_down_degrades_to_pfs_when_armed() {
        let (pfs, fabric, _servers, mut client) = setup2(1);
        client.set_pfs_fallback(pfs.clone());
        let p = sample(5);
        let expected = pfs.read_all(&p).unwrap();
        for addr in client.replica_addrs(&p) {
            fabric.set_down(&addr, true);
        }
        let data = client.read_file(&p).unwrap();
        assert_eq!(data, expected, "degraded read is byte-correct");
        let s = client.metrics().full_snapshot();
        assert!(s.degraded_reads >= 1, "degraded_reads counted: {s:?}");
    }

    #[test]
    fn fatal_remote_error_never_degrades() {
        let (pfs, _f, _s, mut client) = setup2(1);
        client.set_pfs_fallback(pfs);
        // The server answers ENOENT — degradation must not mask it (the PFS
        // would only repeat it, and a wrong path must stay an error).
        let err = client.open(Path::new("/gpfs/set/absent.bin")).unwrap_err();
        assert!(matches!(err, HvacError::Remote { code: 2, .. }));
        assert_eq!(client.metrics().full_snapshot().degraded_reads, 0);
    }

    #[test]
    fn breaker_trips_and_skips_a_dead_primary() {
        let (_pfs, fabric, _servers, client) = setup2(2);
        let p = sample(3);
        let addrs = client.replica_addrs(&p);
        fabric.set_down(&addrs[0], true);
        // Each read_file issues stat + read + close against the dead
        // primary; after breaker_threshold consecutive failures the breaker
        // opens and later calls skip straight to the replica.
        for _ in 0..4 {
            client.read_file(&p).unwrap();
        }
        let s = client.metrics().full_snapshot();
        assert!(s.breaker_trips >= 1, "breaker tripped: {s:?}");
        assert!(s.breaker_skips >= 1, "open breaker skipped: {s:?}");
        // Recovery: once the primary is back, a successful probe closes the
        // breaker again (after cooldown the half-open path lets one through;
        // here we just verify the job kept working throughout).
        fabric.set_down(&addrs[0], false);
        client.read_file(&p).unwrap();
    }

    #[test]
    fn large_reads_pipeline_chunk_rpcs_and_stay_byte_exact() {
        let (pfs, fabric, servers, _client) = setup2(1);
        // Rebuild the client with a tiny chunk so every file (>= 64 B)
        // pipelines; window 3 keeps several chunk RPCs in flight.
        let mut opts = HvacClientOptions::new("/gpfs/set", 3, 1);
        opts.bulk_chunk = 16;
        opts.bulk_window = 3;
        let client = HvacClient::new(fabric, opts).unwrap();
        for i in 0..8 {
            let p = sample(i);
            assert_eq!(client.read_file(&p).unwrap(), pfs.read_all(&p).unwrap());
        }
        // Each file produced several chunk RPCs server-side, but the client
        // counted one logical read per file (plus the EOF-probing read that
        // read_file's pread avoids by sizing from open).
        let server_reads: u64 = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().reads)
            .sum();
        assert!(server_reads >= 8 * 4, "chunk RPCs issued: {server_reads}");
        assert_eq!(client.metrics().snapshot().1, 8);
    }

    #[test]
    fn pipelined_read_degrades_per_chunk_when_replicas_die() {
        let (pfs, fabric, _servers, _client) = setup2(1);
        let mut opts = HvacClientOptions::new("/gpfs/set", 3, 1);
        opts.bulk_chunk = 16;
        opts.bulk_window = 4;
        let mut client = HvacClient::new(fabric.clone(), opts).unwrap();
        client.set_pfs_fallback(pfs.clone());
        let p = sample(2);
        let expected = pfs.read_all(&p).unwrap();
        for addr in client.replica_addrs(&p) {
            fabric.set_down(&addr, true);
        }
        assert_eq!(client.read_file(&p).unwrap(), expected);
        let s = client.metrics().full_snapshot();
        assert!(
            s.degraded_reads as usize >= expected.len() / 16,
            "every chunk degraded individually: {s:?}"
        );
    }

    #[test]
    fn open_breakers_are_probed_before_degrading_to_pfs() {
        let (pfs, fabric, _servers, mut client) = setup_with(2, |o| {
            o.retry.rpc_timeout = Duration::from_millis(50);
            o.retry.max_attempts = 1;
            o.retry.breaker_threshold = 2;
            // Long enough that no half-open probe can rescue the old
            // behaviour within the test.
            o.retry.breaker_cooldown = Duration::from_secs(600);
        });
        client.set_pfs_fallback(pfs.clone());
        let p = sample(6);
        let expected = pfs.read_all(&p).unwrap();
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 2);
        for a in &addrs {
            fabric.set_down(a, true);
        }
        // Trip both breakers; the job keeps running on PFS degradation.
        for _ in 0..3 {
            assert_eq!(client.read_file(&p).unwrap(), expected);
        }
        let s = client.metrics().full_snapshot();
        assert!(s.breaker_trips >= 2, "both breakers tripped: {s:?}");
        assert!(s.degraded_reads >= 1, "{s:?}");
        let degraded_before = s.degraded_reads;
        // Both servers recover while the breakers are still mid-cooldown.
        // The ladder must force-probe a skipped replica instead of
        // returning `ServerDown` without a single RPC — which would pin a
        // fully recovered cluster onto the PFS for the whole cooldown.
        for a in &addrs {
            fabric.set_down(a, false);
        }
        assert_eq!(client.read_file(&p).unwrap(), expected);
        let s = client.metrics().full_snapshot();
        assert_eq!(
            s.degraded_reads, degraded_before,
            "the probe served the read from cache, not the PFS: {s:?}"
        );
    }

    #[test]
    fn hedged_read_races_a_slow_primary() {
        let (pfs, fabric, _servers, client) = setup_with(2, |o| {
            o.retry.rpc_timeout = Duration::from_millis(500);
            o.retry.hedge_delay_percent = 4; // 20 ms
        });
        let p = sample(7);
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 2);
        // Warm pass: both endpoints healthy, no hedge should be needed.
        let expected = client.read_file(&p).unwrap();
        assert_eq!(expected, pfs.read_all(&p).unwrap());
        // The primary now answers, but only after 10x the hedge delay.
        fabric.fault_injector().set(
            &addrs[0],
            hvac_net::FaultSpec {
                delay_prob: 1.0,
                delay: Duration::from_millis(200),
                seed: 0x4ED6,
                ..hvac_net::FaultSpec::default()
            },
        );
        let t0 = Instant::now();
        assert_eq!(client.read_file(&p).unwrap(), expected);
        // read_file is three RPCs (stat, read, close); each hedges after
        // 20 ms and the backup answers immediately, so the whole thing
        // finishes far below even one injected 200 ms delay.
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "backup should win the race: took {:?}",
            t0.elapsed()
        );
        let s = client.metrics().full_snapshot();
        assert!(s.hedges >= 1, "hedge fired: {s:?}");
        assert!(s.hedge_wins >= 1, "backup won at least once: {s:?}");
        assert_eq!(s.degraded_reads, 0, "{s:?}");
    }

    #[test]
    fn batched_segmented_read_is_byte_exact_and_batches() {
        let (pfs, _f, servers, client) = setup2(1);
        for i in 0..8 {
            let p = sample(i);
            let expected = pfs.read_all(&p).unwrap();
            assert_eq!(client.read_file_segmented(&p, 16).unwrap(), expected);
        }
        let s = client.metrics().full_snapshot();
        assert!(s.batch_rpcs >= 1, "batch RPCs issued: {s:?}");
        assert_eq!(s.batch_fallbacks, 0, "healthy cluster never falls back");
        let server_batches: u64 = servers
            .iter()
            .map(|(srv, _)| srv.metrics().snapshot().batch_rpcs)
            .sum();
        assert_eq!(server_batches, s.batch_rpcs, "ledger balances");
    }

    #[test]
    fn zero_copy_and_legacy_segmented_reads_agree() {
        let (pfs, fabric, _servers, zc_client) = setup2(1);
        let mut legacy_opts = HvacClientOptions::new("/gpfs/set", 3, 1);
        legacy_opts.zero_copy = false;
        let legacy_client = HvacClient::new(fabric, legacy_opts).unwrap();
        for i in 0..8 {
            let p = sample(i);
            let expected = pfs.read_all(&p).unwrap();
            for seg in [7u64, 16, 64, 1024] {
                let zc = zc_client.read_file_segmented(&p, seg).unwrap();
                let legacy = legacy_client.read_file_segmented(&p, seg).unwrap();
                assert_eq!(zc, expected, "zero-copy path, segment {seg}");
                assert_eq!(legacy, expected, "legacy path, segment {seg}");
            }
        }
        assert_eq!(
            legacy_client.metrics().full_snapshot().batch_rpcs,
            0,
            "legacy arm never batches"
        );
    }

    #[test]
    fn failed_batch_falls_back_to_the_per_segment_ladder() {
        let (pfs, fabric, _servers, mut client) = setup2(1);
        client.set_pfs_fallback(pfs.clone());
        let p = sample(3);
        let expected = pfs.read_all(&p).unwrap();
        // Down one server: any batch homed there fails as a unit, and its
        // ranges are re-read segment by segment (degrading to the PFS for
        // segments whose only replica is the dead server).
        fabric.set_down(&server_addr(0, 1), true);
        assert_eq!(client.read_file_segmented(&p, 16).unwrap(), expected);
        let s = client.metrics().full_snapshot();
        assert!(s.batch_fallbacks >= 1, "fallback counted: {s:?}");
    }

    #[test]
    fn batch_max_of_zero_is_rejected() {
        let fabric = Arc::new(Fabric::new());
        let mut opts = HvacClientOptions::new("/d", 1, 1);
        opts.batch_max = 0;
        assert!(matches!(
            HvacClient::new(fabric, opts),
            Err(HvacError::InvalidConfig(_))
        ));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let draws = |seed: u64| {
            let fabric = Arc::new(Fabric::new());
            let mut opts = HvacClientOptions::new("/d", 1, 1);
            opts.retry.jitter_seed = seed;
            let client = HvacClient::new(fabric, opts).unwrap();
            (0..8).map(|_| client.jitter()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same backoff schedule");
        assert_ne!(draws(7), draws(8), "different seed, different schedule");
    }
}
