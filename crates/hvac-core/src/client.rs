//! The HVAC client library (paper §III-D, §III-F).
//!
//! The client is what the `LD_PRELOAD` shim (or an embedding application)
//! talks to. It keeps a descriptor table for intercepted files, computes the
//! home server of each path by hashing (§III-E), and forwards
//! `<open, read, close>` as RPCs. With replication enabled it fails over to
//! the next replica when a server is down (§III-H, implemented here).

use crate::intercept::DatasetMatcher;
use crate::metrics::ClientMetrics;
use crate::protocol::{Request, Response};
use bytes::Bytes;
use hvac_hash::pathhash::{hash_path, mix64};
use hvac_hash::placement::{make_placement, Placement};
use hvac_net::fabric::{Fabric, Reply};
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{HvacError, PlacementKind, Result, ServerId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct HvacClientOptions {
    /// Directory whose files are cached (the `HVAC_DATASET_DIR` contract).
    pub dataset_dir: PathBuf,
    /// Placement algorithm — must match the rest of the job.
    pub placement: PlacementKind,
    /// Replicas per file (1 = paper's single-home design).
    pub replication: u32,
    /// Total HVAC server instances in the allocation.
    pub n_servers: usize,
    /// Server instances per node (for address derivation).
    pub instances_per_node: u32,
}

impl HvacClientOptions {
    /// Options for a single-home (no replication) job.
    pub fn new<P: Into<PathBuf>>(
        dataset_dir: P,
        n_servers: usize,
        instances_per_node: u32,
    ) -> Self {
        Self {
            dataset_dir: dataset_dir.into(),
            placement: PlacementKind::Modulo,
            replication: 1,
            n_servers,
            instances_per_node,
        }
    }
}

/// Whence values for [`HvacClient::lseek`], mirroring POSIX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute position.
    Set,
    /// Relative to the current position.
    Cur,
    /// Relative to end-of-file.
    End,
}

#[derive(Debug)]
struct OpenFile {
    path: PathBuf,
    size: u64,
    pos: u64,
}

/// A per-process HVAC client.
pub struct HvacClient {
    fabric: Arc<Fabric>,
    placement: Box<dyn Placement>,
    matcher: DatasetMatcher,
    options: HvacClientOptions,
    fds: OrderedMutex<HashMap<u64, OpenFile>>,
    next_fd: AtomicU64,
    metrics: ClientMetrics,
}

/// The fabric address of a server instance, by global index.
pub fn server_addr(global_index: usize, instances_per_node: u32) -> String {
    ServerId::from_global_index(global_index, instances_per_node).to_string()
}

impl HvacClient {
    /// Build a client over a fabric.
    pub fn new(fabric: Arc<Fabric>, options: HvacClientOptions) -> Result<Self> {
        if options.n_servers == 0 {
            return Err(HvacError::InvalidConfig("n_servers must be >= 1".into()));
        }
        if options.replication == 0 {
            return Err(HvacError::InvalidConfig("replication must be >= 1".into()));
        }
        Ok(Self {
            placement: make_placement(options.placement),
            matcher: DatasetMatcher::new(&options.dataset_dir),
            fabric,
            options,
            fds: OrderedMutex::new(classes::CLIENT_FDS, HashMap::new()),
            next_fd: AtomicU64::new(1),
            metrics: ClientMetrics::default(),
        })
    }

    /// Whether HVAC should intercept this path (the shim falls back to the
    /// real libc call otherwise).
    pub fn intercepts<P: AsRef<Path>>(&self, path: P) -> bool {
        self.matcher.matches(path)
    }

    /// Client metrics.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// Replica addresses of a path, home first.
    pub fn replica_addrs(&self, path: &Path) -> Vec<String> {
        let fid = hash_path(path);
        self.placement
            .replicas(
                fid,
                self.options.n_servers,
                self.options.replication as usize,
            )
            .into_iter()
            .map(|idx| server_addr(idx, self.options.instances_per_node))
            .collect()
    }

    /// Issue an RPC to the first healthy replica of `path`.
    fn call(&self, path: &Path, req: &Request) -> Result<Reply> {
        let encoded = req.encode()?;
        let addrs = self.replica_addrs(path);
        let mut last = None;
        for (i, addr) in addrs.iter().enumerate() {
            match self.fabric.call(addr, encoded.clone()) {
                Ok(reply) => {
                    if i > 0 {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Err(e @ HvacError::ServerDown(_)) => last = Some(e),
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or_else(|| HvacError::Rpc("no replicas".into())))
    }

    /// Open a dataset file; returns an HVAC descriptor.
    pub fn open(&self, path: &Path) -> Result<u64> {
        if !self.intercepts(path) {
            self.metrics
                .passthrough_opens
                .fetch_add(1, Ordering::Relaxed);
            return Err(HvacError::Protocol(format!(
                "{} is outside the dataset directory {}",
                path.display(),
                self.matcher.root().display()
            )));
        }
        let reply = self.call(
            path,
            &Request::Stat {
                path: path.to_path_buf(),
            },
        )?;
        let size = match Response::decode(reply.header)?.into_result()? {
            Response::Stat { size } => size,
            other => {
                return Err(HvacError::Protocol(format!(
                    "unexpected stat reply: {other:?}"
                )))
            }
        };
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(
            fd,
            OpenFile {
                path: path.to_path_buf(),
                size,
                pos: 0,
            },
        );
        self.metrics.opens.fetch_add(1, Ordering::Relaxed);
        Ok(fd)
    }

    fn with_fd<T>(&self, fd: u64, f: impl FnOnce(&mut OpenFile) -> T) -> Result<T> {
        let mut fds = self.fds.lock();
        fds.get_mut(&fd).map(f).ok_or(HvacError::BadFd(fd as i32))
    }

    /// Positional read (POSIX `pread`): does not move the file position.
    pub fn pread(&self, fd: u64, offset: u64, len: usize) -> Result<Bytes> {
        let path = self.with_fd(fd, |of| of.path.clone())?;
        self.read_path_at(&path, offset, len)
    }

    /// Sequential read: reads at the current position and advances it.
    pub fn read(&self, fd: u64, len: usize) -> Result<Bytes> {
        let (path, pos) = self.with_fd(fd, |of| (of.path.clone(), of.pos))?;
        let data = self.read_path_at(&path, pos, len)?;
        self.with_fd(fd, |of| of.pos = pos + data.len() as u64)?;
        Ok(data)
    }

    /// POSIX `lseek`. Returns the new position.
    pub fn lseek(&self, fd: u64, offset: i64, whence: Whence) -> Result<u64> {
        self.with_fd(fd, |of| {
            let base = match whence {
                Whence::Set => 0i64,
                Whence::Cur => of.pos as i64,
                Whence::End => of.size as i64,
            };
            let newpos =
                base.checked_add(offset)
                    .filter(|&p| p >= 0)
                    .ok_or(HvacError::Protocol(format!(
                        "seek to negative offset {offset}"
                    )))?;
            of.pos = newpos as u64;
            Ok(of.pos)
        })?
    }

    /// Size recorded at open time.
    pub fn fd_size(&self, fd: u64) -> Result<u64> {
        self.with_fd(fd, |of| of.size)
    }

    /// Close a descriptor, sending the out-of-band teardown RPC (§III-D ⑧).
    pub fn close(&self, fd: u64) -> Result<()> {
        let path = {
            let mut fds = self.fds.lock();
            fds.remove(&fd).ok_or(HvacError::BadFd(fd as i32))?.path
        };
        self.metrics.closes.fetch_add(1, Ordering::Relaxed);
        // Teardown is advisory; a down server must not fail the close.
        let _ = self.call(&path, &Request::Close { path: path.clone() });
        Ok(())
    }

    /// Stat without opening.
    pub fn stat(&self, path: &Path) -> Result<u64> {
        let reply = self.call(
            path,
            &Request::Stat {
                path: path.to_path_buf(),
            },
        )?;
        match Response::decode(reply.header)?.into_result()? {
            Response::Stat { size } => Ok(size),
            other => Err(HvacError::Protocol(format!(
                "unexpected stat reply: {other:?}"
            ))),
        }
    }

    fn read_path_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let reply = self.call(
            path,
            &Request::Read {
                path: path.to_path_buf(),
                offset,
                len: len as u64,
            },
        )?;
        let resp = Response::decode(reply.header)?.into_result()?;
        match resp {
            Response::Data { .. } => {
                let data = reply.bulk.unwrap_or_default();
                self.metrics.reads.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .bytes
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(data)
            }
            other => Err(HvacError::Protocol(format!(
                "unexpected read reply: {other:?}"
            ))),
        }
    }

    /// Read a whole file at **segment granularity** (the §III-E alternative
    /// to file-granular caching): the file is cut into `segment_size` byte
    /// segments, each homed on its *own* server (`hash(path, segment)`), so
    /// a multi-gigabyte file spreads over the allocation instead of landing
    /// on one NVMe. Returns the reassembled contents.
    pub fn read_file_segmented(&self, path: &Path, segment_size: u64) -> Result<Bytes> {
        if segment_size == 0 {
            return Err(HvacError::InvalidConfig("segment_size must be > 0".into()));
        }
        let size = self.stat(path)?;
        self.metrics.opens.fetch_add(1, Ordering::Relaxed);
        let mut assembled = bytes::BytesMut::with_capacity(size as usize);
        let mut offset = 0u64;
        let mut seg_index = 0u64;
        while offset < size {
            let len = segment_size.min(size - offset);
            let addrs = self.segment_replica_addrs(path, seg_index);
            let req = Request::ReadSegment {
                path: path.to_path_buf(),
                offset,
                len,
            };
            let encoded = req.encode()?;
            let mut reply = None;
            let mut last = None;
            for (i, addr) in addrs.iter().enumerate() {
                match self.fabric.call(addr, encoded.clone()) {
                    Ok(r) => {
                        if i > 0 {
                            self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        reply = Some(r);
                        break;
                    }
                    Err(e @ HvacError::ServerDown(_)) => last = Some(e),
                    Err(other) => return Err(other),
                }
            }
            let reply = match reply {
                Some(r) => r,
                None => return Err(last.unwrap_or_else(|| HvacError::Rpc("no replicas".into()))),
            };
            match Response::decode(reply.header)?.into_result()? {
                Response::Data { .. } => {
                    let data = reply.bulk.unwrap_or_default();
                    if data.len() as u64 != len {
                        return Err(HvacError::Protocol(format!(
                            "segment {seg_index} of {} returned {} bytes, expected {len}",
                            path.display(),
                            data.len()
                        )));
                    }
                    self.metrics.reads.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    assembled.extend_from_slice(&data);
                }
                other => {
                    return Err(HvacError::Protocol(format!(
                        "unexpected segment reply: {other:?}"
                    )))
                }
            }
            offset += len;
            seg_index += 1;
        }
        self.metrics.closes.fetch_add(1, Ordering::Relaxed);
        Ok(assembled.freeze())
    }

    /// Replica addresses of one segment of a path, home first. Each segment
    /// hashes independently, so segments of one file spread across servers.
    pub fn segment_replica_addrs(&self, path: &Path, seg_index: u64) -> Vec<String> {
        let fid = hash_path(path);
        let seg_fid =
            hvac_types::FileId(mix64(fid.0 ^ seg_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        self.placement
            .replicas(
                seg_fid,
                self.options.n_servers,
                self.options.replication as usize,
            )
            .into_iter()
            .map(|idx| server_addr(idx, self.options.instances_per_node))
            .collect()
    }

    /// Ask the home server of every path to stage it in the background
    /// (the paper's §IV-C prefetching future work). Paths are grouped by
    /// home server and sent as one RPC per server; returns the number of
    /// paths submitted. Staging is asynchronous — subsequent reads of a
    /// still-copying file simply piggyback on the in-flight copy.
    pub fn prefetch<'a, I>(&self, paths: I) -> Result<usize>
    where
        I: IntoIterator<Item = &'a Path>,
    {
        let mut by_server: HashMap<String, Vec<PathBuf>> = HashMap::new();
        let mut submitted = 0usize;
        for path in paths {
            if !self.intercepts(path) {
                continue;
            }
            let addr = self
                .replica_addrs(path)
                .into_iter()
                .next()
                .ok_or_else(|| HvacError::InvalidConfig("replication must be >= 1".into()))?;
            by_server.entry(addr).or_default().push(path.to_path_buf());
            submitted += 1;
        }
        for (addr, batch) in by_server {
            let req = Request::Prefetch { paths: batch };
            let reply = self.fabric.call(&addr, req.encode()?)?;
            Response::decode(reply.header)?.into_result()?;
        }
        Ok(submitted)
    }

    /// Convenience: `<open, read-entire-file, close>` — the exact transaction
    /// the paper's DL profile shows per training sample (§III-F).
    pub fn read_file(&self, path: &Path) -> Result<Bytes> {
        let fd = self.open(path)?;
        let size = self.fd_size(fd)?;
        let result = self.pread(fd, 0, size as usize);
        self.close(fd)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheManager;
    use crate::eviction::make_policy;
    use crate::server::{HvacServer, HvacServerOptions};
    use hvac_pfs::{FileStore, MemStore};
    use hvac_storage::LocalStore;
    use hvac_types::{ByteSize, EvictionPolicyKind};

    type ServerSet = Vec<(Arc<HvacServer>, hvac_net::fabric::ServerEndpoint)>;

    /// Three-node mini-allocation on one fabric.
    fn setup2(replication: u32) -> (Arc<MemStore>, Arc<Fabric>, ServerSet, HvacClient) {
        let pfs = Arc::new(MemStore::new());
        pfs.synthesize_dataset(Path::new("/gpfs/set"), 24, |i| 64 + (i as usize % 5) * 16);
        let fabric = Arc::new(Fabric::new());
        let mut servers = Vec::new();
        for node in 0..3u32 {
            let cache = Arc::new(CacheManager::new(
                LocalStore::in_memory(ByteSize(1 << 20)),
                make_policy(EvictionPolicyKind::Random, node as u64),
            ));
            let server = HvacServer::new(
                cache,
                pfs.clone(),
                HvacServerOptions::default(),
                &format!("n{node}"),
            )
            .unwrap();
            let ep = server
                .serve(&fabric, &server_addr(node as usize, 1))
                .unwrap();
            servers.push((server, ep));
        }
        let mut opts = HvacClientOptions::new("/gpfs/set", 3, 1);
        opts.replication = replication;
        let client = HvacClient::new(fabric.clone(), opts).unwrap();
        (pfs, fabric, servers, client)
    }

    fn sample(i: u32) -> PathBuf {
        PathBuf::from(format!("/gpfs/set/sample_{i:08}.bin"))
    }

    #[test]
    fn open_read_close_round_trip() {
        let (pfs, _fabric, _servers, client) = setup2(1);
        let p = sample(0);
        let expected = pfs.read_all(&p).unwrap();

        let fd = client.open(&p).unwrap();
        assert_eq!(client.fd_size(fd).unwrap(), expected.len() as u64);
        let data = client.read(fd, expected.len()).unwrap();
        assert_eq!(data, expected);
        // Position advanced to EOF; next read is empty.
        assert_eq!(client.read(fd, 10).unwrap().len(), 0);
        client.close(fd).unwrap();
        assert!(matches!(client.read(fd, 1), Err(HvacError::BadFd(_))));

        let (opens, reads, bytes, closes, _, _) = client.metrics().snapshot();
        assert_eq!(opens, 1);
        assert_eq!(reads, 2);
        assert_eq!(bytes, expected.len() as u64);
        assert_eq!(closes, 1);
    }

    #[test]
    fn pread_does_not_move_position() {
        let (_pfs, _f, _s, client) = setup2(1);
        let fd = client.open(&sample(1)).unwrap();
        let a = client.pread(fd, 10, 8).unwrap();
        let b = client.read(fd, 8).unwrap(); // still at offset 0
        assert_ne!(a, b);
        client.close(fd).unwrap();
    }

    #[test]
    fn lseek_semantics() {
        let (_pfs, _f, _s, client) = setup2(1);
        let fd = client.open(&sample(2)).unwrap();
        let size = client.fd_size(fd).unwrap();
        assert_eq!(client.lseek(fd, 5, Whence::Set).unwrap(), 5);
        assert_eq!(client.lseek(fd, 3, Whence::Cur).unwrap(), 8);
        assert_eq!(client.lseek(fd, -2, Whence::End).unwrap(), size - 2);
        assert!(client.lseek(fd, -1000, Whence::Cur).is_err());
        // Position unchanged after failed seek.
        let rest = client.read(fd, usize::MAX / 2).unwrap();
        assert_eq!(rest.len() as u64, 2);
        client.close(fd).unwrap();
    }

    #[test]
    fn non_dataset_path_is_rejected_for_passthrough() {
        let (_pfs, _f, _s, client) = setup2(1);
        assert!(!client.intercepts("/etc/passwd"));
        assert!(client.open(Path::new("/etc/passwd")).is_err());
        assert_eq!(client.metrics().snapshot().5, 1);
    }

    #[test]
    fn missing_file_error_propagates() {
        let (_pfs, _f, _s, client) = setup2(1);
        let err = client.open(Path::new("/gpfs/set/absent.bin")).unwrap_err();
        assert!(matches!(err, HvacError::Rpc(_)));
        assert!(err.to_string().contains("errno 2"));
    }

    #[test]
    fn reads_are_distributed_across_homes() {
        let (_pfs, _f, servers, client) = setup2(1);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        let counts: Vec<u64> = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().reads)
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 24);
        assert!(
            counts.iter().all(|&c| c > 0),
            "placement left a server idle: {counts:?}"
        );
    }

    #[test]
    fn second_epoch_is_all_cache_hits() {
        let (pfs, _f, servers, client) = setup2(1);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        let pfs_reads_epoch1 = pfs.stats().snapshot().1;
        assert_eq!(pfs_reads_epoch1, 24);
        for i in 0..24 {
            client.read_file(&sample(i)).unwrap();
        }
        assert_eq!(
            pfs.stats().snapshot().1,
            24,
            "epoch 2 never touched the PFS"
        );
        let total_hits: u64 = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().cache_hits)
            .sum();
        assert_eq!(total_hits, 24);
    }

    #[test]
    fn failover_to_replica_when_home_is_down() {
        let (_pfs, fabric, servers, client) = setup2(2);
        let p = sample(3);
        // Find and kill the home server.
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        fabric.set_down(&addrs[0], true);

        let data = client.read_file(&p).unwrap();
        assert!(!data.is_empty());
        assert!(client.metrics().snapshot().4 >= 1, "failover counted");
        // The replica (second address) served it.
        let served: u64 = servers
            .iter()
            .map(|(s, _)| s.metrics().snapshot().reads)
            .sum();
        assert!(served >= 1);
    }

    #[test]
    fn no_replication_and_home_down_fails() {
        let (_pfs, fabric, _servers, client) = setup2(1);
        let p = sample(4);
        let addrs = client.replica_addrs(&p);
        assert_eq!(addrs.len(), 1);
        fabric.set_down(&addrs[0], true);
        assert!(matches!(
            client.read_file(&p),
            Err(HvacError::ServerDown(_))
        ));
    }

    #[test]
    fn invalid_options_rejected() {
        let fabric = Arc::new(Fabric::new());
        let mut opts = HvacClientOptions::new("/d", 0, 1);
        assert!(HvacClient::new(fabric.clone(), opts.clone()).is_err());
        opts.n_servers = 1;
        opts.replication = 0;
        assert!(HvacClient::new(fabric, opts).is_err());
    }
}
