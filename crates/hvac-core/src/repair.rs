//! Anti-entropy replica repair (crash-stop recovery).
//!
//! A crashed-and-restarted node comes back **empty** at its old endpoint:
//! reads it used to serve warm now refault from the PFS, and every file it
//! replicated is one copy short until something re-replicates it. The
//! repair scrubber closes that gap without waiting for organic traffic: it
//! walks the union of resident whole-file entries across the allocation,
//! detects entries with fewer live copies than the placement's replica set
//! demands, and re-clones each from any surviving holder — the same direct
//! cache-to-cache export→import handoff the [`rebalancer`](crate::rebalance)
//! uses, so a read served mid-repair is answered either by the donor copy
//! (still resident) or by the fresh clone.
//!
//! Repair is **priority-ordered by access count**: the
//! [`LocalStore`](hvac_storage::LocalStore) tracks per-entry hits, and the
//! scrubber re-clones the hottest files first, so the entries most likely
//! to be read next regain their fault tolerance (and their warm-read
//! latency) soonest.
//!
//! Segment-granular entries (`path#offset+len` keys) are skipped for the
//! same reason the rebalancer skips them: they re-home lazily on next
//! access and repairing them would race the segment read path.
//!
//! The pass runs on a background thread owned by the cluster harness; the
//! `REPAIR` lock class guards only that spawn/join slot, never the walk
//! itself, so repair takes cache/store locks in the ordinary
//! `cache → store` order with nothing held above them.

use crate::cache::CacheManager;
use crate::metrics::ServerMetrics;
use hvac_hash::pathhash::hash_path;
use hvac_hash::placement::Placement;
use hvac_types::{ClusterView, NodeId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One live node participating in a repair pass: a potential donor of
/// surviving copies and a potential destination for re-clones.
pub struct RepairSource {
    /// The node the cache belongs to.
    pub node: NodeId,
    /// Its node-local cache.
    pub cache: Arc<CacheManager>,
    /// Metrics of one server instance on the node; repair counters
    /// (`repaired_files`, `repaired_bytes`) are charged to the **donor**
    /// holder, mirroring how migration charges the source.
    pub metrics: Arc<ServerMetrics>,
}

/// Ledger of one repair pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Membership epoch the pass ran under.
    pub epoch: u64,
    /// Distinct whole-file entries examined (union across all nodes).
    pub scanned: u64,
    /// Replica copies re-cloned onto nodes that were missing them.
    pub files_repaired: u64,
    /// Bytes copied for those re-clones.
    pub bytes_copied: u64,
    /// Expected replica slots still empty when the pass ended: the replica
    /// node is not participating (down), the donor copy was evicted
    /// mid-pass, or the clone did not fit even after eviction.
    pub under_replicated_remaining: u64,
    /// Segment-granular entries left to re-home lazily.
    pub skipped_segments: u64,
}

/// The replica *nodes* `path` must be resident on under `view`. Instances
/// on one node share the node cache, so replica sets collapse to node sets.
fn expected_nodes(
    path: &PathBuf,
    placement: &dyn Placement,
    view: &ClusterView,
    replication: usize,
) -> Vec<NodeId> {
    let fid = hash_path(path);
    let mut nodes = Vec::new();
    for sid in placement.replicas_in_view(fid, view, replication) {
        if !nodes.contains(&sid.node) {
            nodes.push(sid.node);
        }
    }
    nodes
}

/// Count expected-but-missing replica copies without repairing anything —
/// the audit half of the scrubber, used by tests and the cluster harness
/// to certify convergence (`under_replicated == 0` after a repair pass).
pub fn audit_under_replicated(
    sources: &[RepairSource],
    placement: &dyn Placement,
    view: &ClusterView,
    replication: usize,
) -> u64 {
    let by_node: HashMap<NodeId, &RepairSource> = sources.iter().map(|s| (s.node, s)).collect();
    let mut missing = 0u64;
    for path in resident_union(sources).into_keys() {
        for node in expected_nodes(&path, placement, view, replication) {
            match by_node.get(&node) {
                Some(dest) if dest.cache.contains(&path) => {}
                _ => missing += 1,
            }
        }
    }
    missing
}

/// Union of resident whole-file entries across `sources`, keyed by path,
/// valued by the hottest access count across holders — the scrubber's
/// priority signal. Segment keys are excluded.
fn resident_union(sources: &[RepairSource]) -> HashMap<PathBuf, u64> {
    let mut seen: HashMap<PathBuf, u64> = HashMap::new();
    for src in sources {
        for (path, hits) in src.cache.store().resident_with_access() {
            if path.as_os_str().to_string_lossy().contains('#') {
                continue;
            }
            let slot = seen.entry(path).or_insert(0);
            *slot = (*slot).max(hits);
        }
    }
    seen
}

/// One anti-entropy pass: re-clone every under-replicated whole-file entry
/// from a surviving holder onto the replica nodes that are missing it,
/// hottest files first. Idempotent — a second pass over a converged
/// allocation copies nothing.
pub fn repair(
    sources: &[RepairSource],
    placement: &dyn Placement,
    view: &ClusterView,
    replication: usize,
) -> RepairReport {
    let mut report = RepairReport {
        epoch: view.epoch(),
        ..RepairReport::default()
    };
    for src in sources {
        for (path, _) in src.cache.store().resident_with_access() {
            if path.as_os_str().to_string_lossy().contains('#') {
                report.skipped_segments += 1;
            }
        }
    }
    let union = resident_union(sources);
    report.scanned = union.len() as u64;
    // Hottest first; path as tie-break keeps the pass deterministic.
    let mut work: Vec<(PathBuf, u64)> = union.into_iter().collect();
    work.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let by_node: HashMap<NodeId, &RepairSource> = sources.iter().map(|s| (s.node, s)).collect();
    for (path, _hits) in work {
        // Any surviving holder can donate; placement members are read-only
        // duplicates of each other, and stragglers are byte-identical too
        // (the store is copy-once from an immutable PFS file).
        let donor = sources.iter().find(|s| s.cache.contains(&path));
        for node in expected_nodes(&path, placement, view, replication) {
            match by_node.get(&node) {
                Some(dest) if dest.cache.contains(&path) => {}
                Some(dest) => {
                    let mut repaired = false;
                    if let Some(d) = donor {
                        if let Some(data) = d.cache.store().get(&path) {
                            let len = data.len() as u64;
                            if dest.cache.insert(&path, data).is_ok() {
                                d.metrics.repaired_files.fetch_add(1, Ordering::Relaxed);
                                d.metrics.repaired_bytes.fetch_add(len, Ordering::Relaxed);
                                report.files_repaired += 1;
                                report.bytes_copied += len;
                                repaired = true;
                            }
                        }
                    }
                    if !repaired {
                        // Donor evicted mid-pass, or the clone did not fit
                        // even after eviction; the next pass (or an organic
                        // read at the replica) closes the gap.
                        report.under_replicated_remaining += 1;
                    }
                }
                None => {
                    // The replica node is not participating (down or not
                    // provisioned); nothing to copy onto.
                    report.under_replicated_remaining += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::make_policy;
    use bytes::Bytes;
    use hvac_hash::placement::make_placement;
    use hvac_storage::LocalStore;
    use hvac_types::{ByteSize, EvictionPolicyKind, PlacementKind};

    const K: usize = 2;

    fn cache(cap: u64) -> Arc<CacheManager> {
        Arc::new(CacheManager::new(
            LocalStore::in_memory(ByteSize(cap)),
            make_policy(EvictionPolicyKind::Random, 7),
        ))
    }

    fn sources(n: u32, cap: u64) -> Vec<RepairSource> {
        (0..n)
            .map(|i| RepairSource {
                node: NodeId(i),
                cache: cache(cap),
                metrics: Arc::new(ServerMetrics::default()),
            })
            .collect()
    }

    /// Fill every replica of every file, as a healthy epoch would.
    fn populate_replicas(
        srcs: &[RepairSource],
        placement: &dyn Placement,
        view: &ClusterView,
        n_files: u64,
    ) -> Vec<PathBuf> {
        let by_node: HashMap<NodeId, &RepairSource> = srcs.iter().map(|s| (s.node, s)).collect();
        let mut paths = Vec::new();
        for i in 0..n_files {
            let path = PathBuf::from(format!("/gpfs/rep/{i}"));
            for node in expected_nodes(&path, placement, view, K) {
                by_node[&node]
                    .cache
                    .insert(&path, Bytes::from(vec![i as u8; 64]))
                    .unwrap();
            }
            paths.push(path);
        }
        paths
    }

    #[test]
    fn converged_allocation_is_a_noop() {
        let placement = make_placement(PlacementKind::Ring);
        let view = ClusterView::initial(4, 1).unwrap();
        let srcs = sources(4, 1 << 20);
        populate_replicas(&srcs, placement.as_ref(), &view, 32);
        assert_eq!(
            audit_under_replicated(&srcs, placement.as_ref(), &view, K),
            0
        );
        let report = repair(&srcs, placement.as_ref(), &view, K);
        assert_eq!(report.scanned, 32);
        assert_eq!(report.files_repaired, 0, "{report:?}");
        assert_eq!(report.under_replicated_remaining, 0, "{report:?}");
    }

    #[test]
    fn crashed_node_is_refilled_from_survivors_hot_first() {
        let placement = make_placement(PlacementKind::Ring);
        let view = ClusterView::initial(4, 1).unwrap();
        let srcs = sources(4, 1 << 20);
        let paths = populate_replicas(&srcs, placement.as_ref(), &view, 32);
        // Make one file clearly hot on its surviving replicas.
        let hot = &paths[5];
        for src in &srcs {
            for _ in 0..10 {
                let _ = src.cache.store().get(hot);
            }
        }
        // Node 1 crash-stops: its cache comes back empty.
        srcs[1].cache.purge();
        let before = audit_under_replicated(&srcs, placement.as_ref(), &view, K);
        assert!(before > 0, "the crash left replicas missing");

        let report = repair(&srcs, placement.as_ref(), &view, K);
        assert_eq!(report.files_repaired, before, "{report:?}");
        assert_eq!(report.under_replicated_remaining, 0, "{report:?}");
        assert!(report.bytes_copied >= before * 64, "{report:?}");
        assert_eq!(
            audit_under_replicated(&srcs, placement.as_ref(), &view, K),
            0,
            "one pass converges"
        );
        // The donor-side ledger balances with the report.
        let counted: u64 = srcs
            .iter()
            .map(|s| s.metrics.repaired_files.load(Ordering::Relaxed))
            .sum();
        assert_eq!(counted, report.files_repaired);
        // A second pass copies nothing (idempotence).
        let again = repair(&srcs, placement.as_ref(), &view, K);
        assert_eq!(again.files_repaired, 0, "{again:?}");
    }

    #[test]
    fn missing_replica_node_counts_as_remaining() {
        let placement = make_placement(PlacementKind::Ring);
        let view = ClusterView::initial(4, 1).unwrap();
        let mut srcs = sources(4, 1 << 20);
        populate_replicas(&srcs, placement.as_ref(), &view, 16);
        // Node 2 vanishes from the pass entirely (still down): every slot
        // it owes stays open, and the ledger says so instead of lying.
        srcs.retain(|s| s.node != NodeId(2));
        let report = repair(&srcs, placement.as_ref(), &view, K);
        assert!(report.under_replicated_remaining > 0, "{report:?}");
        assert_eq!(
            report.under_replicated_remaining,
            audit_under_replicated(&srcs, placement.as_ref(), &view, K),
            "repair and audit agree on the open slots"
        );
    }

    #[test]
    fn segment_entries_are_skipped() {
        let placement = make_placement(PlacementKind::Ring);
        let view = ClusterView::initial(2, 1).unwrap();
        let srcs = sources(2, 1 << 20);
        srcs[0]
            .cache
            .insert(
                &PathBuf::from("/gpfs/rep/0#128+64"),
                Bytes::from(vec![9; 64]),
            )
            .unwrap();
        let report = repair(&srcs, placement.as_ref(), &view, K);
        assert_eq!(report.skipped_segments, 1);
        assert_eq!(report.scanned, 0);
        assert_eq!(report.files_repaired, 0);
    }
}
