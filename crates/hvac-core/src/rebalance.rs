//! Online cache rebalancing across a membership change.
//!
//! A view change moves a *minority* of file homes (for the identity-hashing
//! placements; `Modulo` documents full churn). The rebalancer walks every
//! node that holds data under the **old** view and migrates exactly the
//! resident whole-file entries whose home *node* changed, copying each to
//! its new home before removing it from the old one — so at every instant
//! the file is resident somewhere, and a read served mid-migration is
//! either answered by the old home (pre-handoff) or by the new home
//! (post-handoff, possibly as a fresh PFS copy). Segment entries
//! (`path#offset+len` keys) are skipped: they re-home lazily on next
//! access, and migrating them would race the segment read path for no
//! warm-cache benefit.
//!
//! The walk runs on a background thread owned by the cluster harness; the
//! `REBALANCER` lock class only guards the spawn/join slot, never the walk
//! itself, so migration takes cache/store locks in the ordinary
//! `cache → store` order with nothing held above them.

use crate::cache::CacheManager;
use crate::metrics::ServerMetrics;
use hvac_hash::pathhash::hash_path;
use hvac_hash::placement::Placement;
use hvac_types::{ClusterView, NodeId};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One node that may hold entries homed elsewhere after a view change.
pub struct RebalanceSource {
    /// The node the cache belongs to.
    pub node: NodeId,
    /// Its (possibly retired) node-local cache.
    pub cache: Arc<CacheManager>,
    /// Metrics of one server instance on the node; migration counters
    /// (`migrated_files`, `migrated_bytes`) are charged to the source.
    pub metrics: Arc<ServerMetrics>,
}

/// Ledger of one rebalance pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Epoch migrated from.
    pub from_epoch: u64,
    /// Epoch migrated to.
    pub to_epoch: u64,
    /// Whole-file entries examined across all sources.
    pub scanned: u64,
    /// Entries whose home node changed and that were copied over.
    pub migrated_files: u64,
    /// Bytes copied over.
    pub migrated_bytes: u64,
    /// Segment-granular entries left to re-home lazily.
    pub skipped_segments: u64,
}

/// Migrate every whole-file entry whose home node moved between `old_view`
/// and `new_view`. `sources` are all nodes holding data placed under the
/// old view (including a just-retired node); `dests` maps the *new* view's
/// node ids to their caches.
///
/// Only the old **home** node migrates a file — replicas and stragglers
/// keep their copies (they are read-only duplicates and age out by
/// eviction), which keeps the pass single-writer per file.
pub fn rebalance(
    sources: &[RebalanceSource],
    dests: &HashMap<NodeId, Arc<CacheManager>>,
    placement: &dyn Placement,
    old_view: &ClusterView,
    new_view: &ClusterView,
) -> RebalanceReport {
    let mut report = RebalanceReport {
        from_epoch: old_view.epoch(),
        to_epoch: new_view.epoch(),
        ..RebalanceReport::default()
    };
    for src in sources {
        for path in src.cache.store().resident_paths() {
            if path.as_os_str().to_string_lossy().contains('#') {
                report.skipped_segments += 1;
                continue;
            }
            report.scanned += 1;
            let fid = hash_path(&path);
            if placement.home_in_view(fid, old_view).node != src.node {
                continue; // replica or straggler copy; the old home migrates
            }
            let new_home = placement.home_in_view(fid, new_view).node;
            if new_home == src.node {
                continue; // home unchanged — the common case
            }
            let Some(dest) = dests.get(&new_home) else {
                continue; // new home has no cache here (shut down mid-pass)
            };
            // Peek without recency update (migration must not look like
            // access), import at the destination, then retire the source
            // copy — the file is resident somewhere at every instant.
            let Some(data) = src.cache.store().get(&path) else {
                continue; // evicted between listing and export
            };
            let len = data.len() as u64;
            if dest.insert(&path, data).is_err() {
                continue; // does not fit even after eviction; next epoch's
                          // read re-fetches it from the PFS at the new home
            }
            src.cache.remove(&path);
            src.metrics.migrated_files.fetch_add(1, Ordering::Relaxed);
            src.metrics.migrated_bytes.fetch_add(len, Ordering::Relaxed);
            report.migrated_files += 1;
            report.migrated_bytes += len;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::make_policy;
    use bytes::Bytes;
    use hvac_hash::placement::make_placement;
    use hvac_storage::LocalStore;
    use hvac_types::{ByteSize, EvictionPolicyKind, PlacementKind};
    use std::path::PathBuf;

    fn cache(cap: u64) -> Arc<CacheManager> {
        Arc::new(CacheManager::new(
            LocalStore::in_memory(ByteSize(cap)),
            make_policy(EvictionPolicyKind::Random, 7),
        ))
    }

    fn populate_homes(
        caches: &HashMap<NodeId, Arc<CacheManager>>,
        placement: &dyn Placement,
        view: &ClusterView,
        n_files: u64,
    ) {
        for i in 0..n_files {
            let path = PathBuf::from(format!("/gpfs/reb/{i}"));
            let home = placement.home_in_view(hash_path(&path), view).node;
            caches[&home]
                .insert(&path, Bytes::from(vec![i as u8; 64]))
                .unwrap();
        }
    }

    #[test]
    fn leave_drains_the_retired_node_and_ledger_balances() {
        let placement = make_placement(PlacementKind::Ring);
        let old = ClusterView::initial(4, 1).unwrap();
        let new = old.with_node_removed(NodeId(2)).unwrap();
        let caches: HashMap<NodeId, Arc<CacheManager>> =
            (0..4).map(|n| (NodeId(n), cache(1 << 20))).collect();
        populate_homes(&caches, placement.as_ref(), &old, 64);

        let sources: Vec<RebalanceSource> = caches
            .iter()
            .map(|(&node, c)| RebalanceSource {
                node,
                cache: c.clone(),
                metrics: Arc::new(ServerMetrics::default()),
            })
            .collect();
        let dests: HashMap<NodeId, Arc<CacheManager>> = caches
            .iter()
            .filter(|(n, _)| **n != NodeId(2))
            .map(|(n, c)| (*n, c.clone()))
            .collect();
        let report = rebalance(&sources, &dests, placement.as_ref(), &old, &new);

        assert_eq!(report.from_epoch, 0);
        assert_eq!(report.to_epoch, 1);
        assert!(report.migrated_files > 0, "{report:?}");
        assert_eq!(
            caches[&NodeId(2)].resident_count(),
            0,
            "retired node fully drained"
        );
        // Ledger balances: per-source counters sum to the report, and every
        // file is now resident on its new home.
        let counted: u64 = sources
            .iter()
            .map(|s| s.metrics.migrated_files.load(Ordering::Relaxed))
            .sum();
        assert_eq!(counted, report.migrated_files);
        for i in 0..64u64 {
            let path = PathBuf::from(format!("/gpfs/reb/{i}"));
            let home = placement.home_in_view(hash_path(&path), &new).node;
            assert!(caches[&home].contains(&path), "file {i} not at new home");
        }
    }

    #[test]
    fn join_moves_a_minority_and_skips_segments() {
        let placement = make_placement(PlacementKind::Ring);
        let old = ClusterView::initial(4, 1).unwrap();
        let new = old.with_node_added(NodeId(4)).unwrap();
        let mut caches: HashMap<NodeId, Arc<CacheManager>> =
            (0..4).map(|n| (NodeId(n), cache(1 << 20))).collect();
        populate_homes(&caches, placement.as_ref(), &old, 80);
        // A segment-granular entry must be left alone.
        caches[&NodeId(0)]
            .insert(
                &PathBuf::from("/gpfs/reb/0#128+64"),
                Bytes::from(vec![9; 64]),
            )
            .unwrap();
        caches.insert(NodeId(4), cache(1 << 20));

        let sources: Vec<RebalanceSource> = caches
            .iter()
            .map(|(&node, c)| RebalanceSource {
                node,
                cache: c.clone(),
                metrics: Arc::new(ServerMetrics::default()),
            })
            .collect();
        let dests = caches.clone();
        let report = rebalance(&sources, &dests, placement.as_ref(), &old, &new);

        assert_eq!(report.skipped_segments, 1);
        assert!(caches[&NodeId(0)].contains(&PathBuf::from("/gpfs/reb/0#128+64")));
        assert!(report.migrated_files > 0);
        assert!(
            (report.migrated_files as f64) < 0.5 * 80.0,
            "join migrated a majority: {report:?}"
        );
        assert_eq!(
            caches[&NodeId(4)].resident_count() as u64,
            report.migrated_files,
            "everything that moved landed on the joiner"
        );
    }
}
