//! The client↔server wire protocol.
//!
//! Four operations cover the paper's intercepted I/O profile
//! (`<open, read, close>` plus the stat that `open` needs):
//!
//! * [`Request::Stat`] — size lookup at `open` time,
//! * [`Request::Read`] — ranged read; the reply carries data as a bulk
//!   payload (Mercury's RPC/bulk split),
//! * [`Request::Close`] — the out-of-band teardown RPC of §III-D step ⑧,
//! * [`Request::Purge`] — job teardown: drop the node's cache contents.
//!
//! Messages are encoded with the explicit little-endian codec from
//! [`hvac_net::wire`]. Structural versioning is unnecessary — client and
//! server ship in one binary (the cache lives only inside one job
//! allocation) — but **membership** is versioned: every request is prefixed
//! with the sender's [`ClusterView`] epoch. A server holding a newer view
//! answers [`Response::StaleView`], piggybacking its current view so the
//! client can swap atomically and re-resolve ownership; epoch 0 denotes the
//! static launch-time view, so topologies that never change behave exactly
//! as the paper's fixed allocation.

use bytes::{Bytes, BytesMut};
use hvac_net::plan::{decode_batch_items, encode_batch_items, BatchItem, MAX_BATCH_ITEMS};
use hvac_net::wire;
use hvac_types::{ClusterView, HvacError, JobId, Result, ServerId};
use std::path::{Path, PathBuf};

/// High bit of the epoch prefix: set when a job id follows the epoch.
/// Tenant identity rides the wire exactly like membership epochs do — job 0
/// (the default namespace) encodes byte-identically to the pre-tenancy
/// format, and a set flag means "one more u64: the sender's job". Epochs are
/// monotonically-bumped small integers, so the bit is otherwise never set.
pub const JOB_FLAG: u64 = 1 << 63;

const TAG_STAT: u8 = 1;
const TAG_READ: u8 = 2;
const TAG_CLOSE: u8 = 3;
const TAG_PURGE: u8 = 4;
const TAG_PREFETCH: u8 = 5;
const TAG_READ_SEGMENT: u8 = 6;
const TAG_BATCH: u8 = 7;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
// Tenant-echoing variants: same layout as OK/ERR with a u64 job id spliced
// in right after the status byte. Only produced for non-default jobs, so
// job-0 replies stay byte-identical to the legacy format.
const STATUS_OK_JOB: u8 = 2;
const STATUS_ERR_JOB: u8 = 3;

/// A request from an HVAC client to a server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Stat `path` (served from cache metadata if resident, else from PFS).
    Stat {
        /// Application-space file path.
        path: PathBuf,
    },
    /// Read `len` bytes of `path` at `offset`, caching the file first if
    /// needed.
    Read {
        /// Application-space file path.
        path: PathBuf,
        /// Byte offset.
        offset: u64,
        /// Maximum bytes to return.
        len: u64,
    },
    /// Signal that a client closed its descriptor for `path`.
    Close {
        /// Application-space file path.
        path: PathBuf,
    },
    /// Drop all cached data (job teardown).
    Purge,
    /// Stage these files into the cache without waiting (the paper's §IV-C
    /// prefetching future work). The server copies them in the background;
    /// the reply only acknowledges the request.
    Prefetch {
        /// Application-space paths, all homed on the receiving server.
        paths: Vec<PathBuf>,
    },
    /// Segment-granular read (the §III-E segment-level caching alternative):
    /// the server caches only the `[offset, offset+len)` slice of `path`,
    /// not the whole file, so huge files spread across many servers.
    ReadSegment {
        /// Application-space file path.
        path: PathBuf,
        /// Segment start offset.
        offset: u64,
        /// Segment length.
        len: u64,
    },
    /// Several segment reads homed on the receiving server, shipped as one
    /// RPC (FanStore-style small-request batching). Each item is served
    /// exactly like a [`Request::ReadSegment`]; the reply concatenates the
    /// per-item payloads into one bulk buffer, delimited by
    /// [`Response::Batch`] lengths. All-or-nothing: any item failing turns
    /// the whole reply into [`Response::Err`], and the client falls back to
    /// per-segment RPCs (which keep the full retry/failover ladder).
    Batch {
        /// The batched reads, in reply order.
        items: Vec<BatchItem>,
    },
}

/// A reply header (bulk data travels separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Stat result.
    Stat {
        /// File size in bytes.
        size: u64,
    },
    /// Read result; `total_size` is the full file size (clients use it to
    /// maintain EOF), the data itself is the RPC's bulk payload.
    Data {
        /// Full size of the file.
        total_size: u64,
        /// Whether this read was served from the node-local cache (false =
        /// the file had to be fetched from the PFS first).
        cache_hit: bool,
    },
    /// Generic success (close/purge).
    Ok,
    /// The request's membership epoch was older than the server's: the
    /// request was **not** served. The server's current view rides along so
    /// the client can swap views and re-resolve ownership in one round trip.
    StaleView {
        /// The server's current membership view.
        view: ClusterView,
    },
    /// Batched-read result: the RPC's bulk payload is the concatenation of
    /// every item's data, and `lens[i]` is the byte length of item `i`'s
    /// slice within it. Only produced when **every** item succeeded.
    Batch {
        /// Per-item payload lengths, in request order.
        lens: Vec<u32>,
    },
    /// Failure, with an errno-style code and a message.
    Err {
        /// errno-equivalent (see [`HvacError::errno`]).
        code: i32,
        /// Human-readable description.
        message: String,
    },
}

fn path_to_str(path: &Path) -> Result<&str> {
    path.to_str().ok_or_else(|| {
        HvacError::Protocol(format!("non-UTF-8 path not supported: {}", path.display()))
    })
}

impl Request {
    /// Encode to wire bytes at membership epoch 0 (the static launch-time
    /// view). Equivalent to `encode_at(0)`; callers that track a live
    /// [`ClusterView`] use [`Request::encode_at`].
    pub fn encode(&self) -> Result<Bytes> {
        self.encode_at(0)
    }

    /// Encode to wire bytes, prefixing the sender's view `epoch`.
    /// Equivalent to `encode_ctx(epoch, JobId::DEFAULT)`.
    pub fn encode_at(&self, epoch: u64) -> Result<Bytes> {
        self.encode_ctx(epoch, JobId::DEFAULT)
    }

    /// Encode to wire bytes, prefixing the sender's view `epoch` and tenant
    /// identity. Job 0 produces the legacy byte layout (no job field, clear
    /// [`JOB_FLAG`]); any other job sets the flag and appends its id.
    pub fn encode_ctx(&self, epoch: u64, job: JobId) -> Result<Bytes> {
        if epoch & JOB_FLAG != 0 {
            return Err(HvacError::Protocol(format!(
                "epoch {epoch:#x} collides with the job flag"
            )));
        }
        let mut b = BytesMut::with_capacity(80);
        if job.is_default() {
            b.extend_from_slice(&epoch.to_le_bytes());
        } else {
            b.extend_from_slice(&(epoch | JOB_FLAG).to_le_bytes());
            b.extend_from_slice(&job.0.to_le_bytes());
        }
        match self {
            Request::Stat { path } => {
                b.extend_from_slice(&[TAG_STAT]);
                wire::put_str(&mut b, path_to_str(path)?)?;
            }
            Request::Read { path, offset, len } => {
                b.extend_from_slice(&[TAG_READ]);
                wire::put_str(&mut b, path_to_str(path)?)?;
                b.extend_from_slice(&offset.to_le_bytes());
                b.extend_from_slice(&len.to_le_bytes());
            }
            Request::Close { path } => {
                b.extend_from_slice(&[TAG_CLOSE]);
                wire::put_str(&mut b, path_to_str(path)?)?;
            }
            Request::Purge => b.extend_from_slice(&[TAG_PURGE]),
            Request::Prefetch { paths } => {
                b.extend_from_slice(&[TAG_PREFETCH]);
                b.extend_from_slice(&(paths.len() as u32).to_le_bytes());
                for p in paths {
                    wire::put_str(&mut b, path_to_str(p)?)?;
                }
            }
            Request::ReadSegment { path, offset, len } => {
                b.extend_from_slice(&[TAG_READ_SEGMENT]);
                wire::put_str(&mut b, path_to_str(path)?)?;
                b.extend_from_slice(&offset.to_le_bytes());
                b.extend_from_slice(&len.to_le_bytes());
            }
            Request::Batch { items } => {
                b.extend_from_slice(&[TAG_BATCH]);
                encode_batch_items(&mut b, items)?;
            }
        }
        Ok(b.freeze())
    }

    /// Decode from wire bytes, discarding the epoch prefix. Servers that
    /// enforce view freshness use [`Request::decode_with_epoch`].
    pub fn decode(buf: Bytes) -> Result<Request> {
        Ok(Self::decode_with_epoch(buf)?.1)
    }

    /// Decode from wire bytes, returning the sender's view epoch alongside
    /// the request (tenant identity discarded — legacy callers).
    pub fn decode_with_epoch(buf: Bytes) -> Result<(u64, Request)> {
        let (epoch, _, req) = Self::decode_with_ctx(buf)?;
        Ok((epoch, req))
    }

    /// Decode from wire bytes, returning the sender's view epoch and tenant
    /// identity alongside the request. A legacy frame (clear [`JOB_FLAG`])
    /// decodes as job 0, so pre-tenancy clients work against tenant-aware
    /// servers unchanged.
    pub fn decode_with_ctx(mut buf: Bytes) -> Result<(u64, JobId, Request)> {
        let prefix = wire::get_u64(&mut buf)?;
        let (epoch, job) = if prefix & JOB_FLAG != 0 {
            (prefix & !JOB_FLAG, JobId(wire::get_u64(&mut buf)?))
        } else {
            (prefix, JobId::DEFAULT)
        };
        Ok((epoch, job, Self::decode_body(&mut buf)?))
    }

    fn decode_body(buf: &mut Bytes) -> Result<Request> {
        let tag = wire::get_u8(buf)?;
        match tag {
            TAG_STAT => Ok(Request::Stat {
                path: PathBuf::from(wire::get_str(buf)?),
            }),
            TAG_READ => {
                let path = PathBuf::from(wire::get_str(buf)?);
                let offset = wire::get_u64(buf)?;
                let len = wire::get_u64(buf)?;
                Ok(Request::Read { path, offset, len })
            }
            TAG_CLOSE => Ok(Request::Close {
                path: PathBuf::from(wire::get_str(buf)?),
            }),
            TAG_PURGE => Ok(Request::Purge),
            TAG_PREFETCH => {
                let n = wire::get_u32(buf)? as usize;
                if n > 1_000_000 {
                    return Err(HvacError::Protocol(format!(
                        "implausible prefetch batch of {n} paths"
                    )));
                }
                let mut paths = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    paths.push(PathBuf::from(wire::get_str(buf)?));
                }
                Ok(Request::Prefetch { paths })
            }
            TAG_READ_SEGMENT => {
                let path = PathBuf::from(wire::get_str(buf)?);
                let offset = wire::get_u64(buf)?;
                let len = wire::get_u64(buf)?;
                Ok(Request::ReadSegment { path, offset, len })
            }
            TAG_BATCH => Ok(Request::Batch {
                // The item-count guard lives inside the codec.
                items: decode_batch_items(buf)?,
            }),
            t => Err(HvacError::Protocol(format!("unknown request tag {t}"))),
        }
    }
}

const RTAG_STAT: u8 = 1;
const RTAG_DATA: u8 = 2;
const RTAG_OK: u8 = 3;
const RTAG_STALE_VIEW: u8 = 4;
const RTAG_BATCH: u8 = 5;

/// Append a [`ClusterView`] in wire form: epoch, instances-per-node, then
/// the member list as `(node, instance)` pairs.
fn put_view(b: &mut BytesMut, view: &ClusterView) {
    b.extend_from_slice(&view.epoch().to_le_bytes());
    b.extend_from_slice(&view.instances_per_node().to_le_bytes());
    b.extend_from_slice(&(view.n_servers() as u32).to_le_bytes());
    for sid in view.servers() {
        b.extend_from_slice(&sid.node.0.to_le_bytes());
        b.extend_from_slice(&sid.instance.to_le_bytes());
    }
}

/// Decode a [`ClusterView`] from wire form.
fn get_view(buf: &mut Bytes) -> Result<ClusterView> {
    let epoch = wire::get_u64(buf)?;
    let instances_per_node = wire::get_u32(buf)?;
    let n = wire::get_u32(buf)? as usize;
    if n > 1_000_000 {
        return Err(HvacError::Protocol(format!(
            "implausible view of {n} servers"
        )));
    }
    let mut servers = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let node = wire::get_u32(buf)?;
        let instance = wire::get_u32(buf)?;
        servers.push(ServerId::new(node, instance));
    }
    ClusterView::new(epoch, servers, instances_per_node)
}

impl Response {
    /// Encode to wire bytes in the legacy (default-namespace) layout.
    /// Equivalent to `encode_for(JobId::DEFAULT)`.
    pub fn encode(&self) -> Bytes {
        self.encode_for(JobId::DEFAULT)
    }

    /// Encode to wire bytes, echoing the request's tenant identity. Job 0
    /// produces the legacy byte layout; any other job uses the job-carrying
    /// status bytes so the sender can verify the echo.
    pub fn encode_for(&self, job: JobId) -> Bytes {
        let mut b = BytesMut::with_capacity(40);
        let (ok, err) = if job.is_default() {
            (vec![STATUS_OK], vec![STATUS_ERR])
        } else {
            let mut ok = vec![STATUS_OK_JOB];
            ok.extend_from_slice(&job.0.to_le_bytes());
            let mut err = vec![STATUS_ERR_JOB];
            err.extend_from_slice(&job.0.to_le_bytes());
            (ok, err)
        };
        match self {
            Response::Stat { size } => {
                b.extend_from_slice(&ok);
                b.extend_from_slice(&[RTAG_STAT]);
                b.extend_from_slice(&size.to_le_bytes());
            }
            Response::Data {
                total_size,
                cache_hit,
            } => {
                b.extend_from_slice(&ok);
                b.extend_from_slice(&[RTAG_DATA]);
                b.extend_from_slice(&total_size.to_le_bytes());
                b.extend_from_slice(&[u8::from(*cache_hit)]);
            }
            Response::Ok => {
                b.extend_from_slice(&ok);
                b.extend_from_slice(&[RTAG_OK]);
            }
            Response::StaleView { view } => {
                b.extend_from_slice(&ok);
                b.extend_from_slice(&[RTAG_STALE_VIEW]);
                put_view(&mut b, view);
            }
            Response::Batch { lens } => {
                b.extend_from_slice(&ok);
                b.extend_from_slice(&[RTAG_BATCH]);
                b.extend_from_slice(&(lens.len() as u32).to_le_bytes());
                for len in lens {
                    b.extend_from_slice(&len.to_le_bytes());
                }
            }
            Response::Err { code, message } => {
                b.extend_from_slice(&err);
                b.extend_from_slice(&(*code as i64).to_le_bytes());
                // An error reply must never itself fail to encode, so clamp
                // the text (at a char boundary) far below the u32 wire
                // prefix and write the prefix for the clamped body — never a
                // prefix/body mismatch, unlike the old `len as u32` cast.
                const MAX_ERR_MSG: usize = 64 * 1024;
                let mut end = MAX_ERR_MSG.min(message.len());
                while !message.is_char_boundary(end) {
                    end -= 1;
                }
                let msg = &message.as_bytes()[..end];
                b.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                b.extend_from_slice(msg);
            }
        }
        b.freeze()
    }

    /// Decode from wire bytes, discarding any echoed tenant identity.
    pub fn decode(buf: Bytes) -> Result<Response> {
        Ok(Self::decode_with_job(buf)?.1)
    }

    /// Decode from wire bytes, returning the echoed tenant identity
    /// alongside the response. A legacy reply decodes as job 0.
    pub fn decode_with_job(mut buf: Bytes) -> Result<(JobId, Response)> {
        let status = wire::get_u8(&mut buf)?;
        let job = match status {
            STATUS_OK_JOB | STATUS_ERR_JOB => JobId(wire::get_u64(&mut buf)?),
            STATUS_OK | STATUS_ERR => JobId::DEFAULT,
            s => return Err(HvacError::Protocol(format!("unknown reply status {s}"))),
        };
        Ok((job, Self::decode_tail(status, buf)?))
    }

    fn decode_tail(status: u8, mut buf: Bytes) -> Result<Response> {
        if status == STATUS_ERR || status == STATUS_ERR_JOB {
            let code = wire::get_i64(&mut buf)? as i32;
            let message = wire::get_str(&mut buf)?;
            return Ok(Response::Err { code, message });
        }
        let tag = wire::get_u8(&mut buf)?;
        match tag {
            RTAG_STAT => Ok(Response::Stat {
                size: wire::get_u64(&mut buf)?,
            }),
            RTAG_DATA => {
                let total_size = wire::get_u64(&mut buf)?;
                let cache_hit = wire::get_u8(&mut buf)? != 0;
                Ok(Response::Data {
                    total_size,
                    cache_hit,
                })
            }
            RTAG_OK => Ok(Response::Ok),
            RTAG_STALE_VIEW => Ok(Response::StaleView {
                view: get_view(&mut buf)?,
            }),
            RTAG_BATCH => {
                let n = wire::get_u32(&mut buf)? as usize;
                if n > MAX_BATCH_ITEMS {
                    return Err(HvacError::Protocol(format!(
                        "implausible batch reply of {n} items"
                    )));
                }
                let mut lens = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    lens.push(wire::get_u32(&mut buf)?);
                }
                Ok(Response::Batch { lens })
            }
            t => Err(HvacError::Protocol(format!("unknown response tag {t}"))),
        }
    }

    /// Build an error response from an [`HvacError`].
    pub fn from_error(e: &HvacError) -> Response {
        Response::Err {
            code: e.errno(),
            message: e.to_string(),
        }
    }

    /// Convert an error response into a typed `Err`, anything else into
    /// `Ok(self)`. The remote errno survives in [`HvacError::Remote`], so a
    /// server-side `ENOENT` reaches the shim as `ENOENT`, and the failover
    /// path can tell an answered error (fatal) from silence (transient).
    ///
    /// [`Response::StaleView`] becomes [`HvacError::StaleView`] (retriable).
    /// View-tracking callers intercept the response *before* this call to
    /// keep the piggybacked view; dropping through here is still correct,
    /// just costs one extra round trip after the view refreshes.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Err { code, message } => Err(HvacError::Remote { code, message }),
            Response::StaleView { view } => Err(HvacError::StaleView {
                current_epoch: view.epoch(),
            }),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Stat {
                path: PathBuf::from("/gpfs/train/x.bin"),
            },
            Request::Read {
                path: PathBuf::from("/gpfs/train/y.bin"),
                offset: 123,
                len: 4096,
            },
            Request::Close {
                path: PathBuf::from("/z"),
            },
            Request::Purge,
            Request::Prefetch { paths: vec![] },
            Request::Prefetch {
                paths: vec![PathBuf::from("/a"), PathBuf::from("/gpfs/b.bin")],
            },
            Request::ReadSegment {
                path: PathBuf::from("/gpfs/huge.h5"),
                offset: 16 << 20,
                len: 16 << 20,
            },
            Request::Batch { items: vec![] },
            Request::Batch {
                items: vec![
                    BatchItem {
                        path: "/gpfs/train/a.bin".into(),
                        offset: 0,
                        len: 4096,
                    },
                    BatchItem {
                        path: "/gpfs/train/b.bin".into(),
                        offset: 1 << 30,
                        len: 7,
                    },
                ],
            },
        ];
        for req in cases {
            let enc = req.encode().unwrap();
            assert_eq!(Request::decode(enc).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = vec![
            Response::Stat { size: 42 },
            Response::Data {
                total_size: 1 << 40,
                cache_hit: true,
            },
            Response::Data {
                total_size: 0,
                cache_hit: false,
            },
            Response::Ok,
            Response::Batch { lens: vec![] },
            Response::Batch {
                lens: vec![0, 4096, u32::MAX],
            },
            Response::Err {
                code: 2,
                message: "file not found: /x".into(),
            },
        ];
        for resp in cases {
            let enc = resp.encode();
            assert_eq!(Response::decode(enc).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_decodes_to_protocol_error() {
        assert!(Request::decode(Bytes::from_static(&[99])).is_err());
        assert!(Request::decode(Bytes::new()).is_err());
        assert!(Response::decode(Bytes::from_static(&[0, 99])).is_err());
        assert!(Response::decode(Bytes::new()).is_err());
        // Truncated read request
        assert!(Request::decode(Bytes::from_static(&[TAG_READ, 1, 0, 0, 0, b'x'])).is_err());
    }

    #[test]
    fn error_response_round_trips_through_hvac_error() {
        let e = HvacError::NotFound(PathBuf::from("/missing"));
        let resp = Response::from_error(&e);
        let decoded = Response::decode(resp.encode()).unwrap();
        match decoded.into_result() {
            Err(e @ HvacError::Remote { code: 2, .. }) => {
                assert_eq!(e.errno(), 2, "remote errno survives the wire");
                assert!(e.to_string().contains("/missing"));
                assert!(!e.is_retriable(), "an answered error is fatal");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn hostile_batch_counts_are_protocol_errors() {
        // Request side: a forged u32::MAX item count after the tag.
        let mut b = BytesMut::new();
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&[TAG_BATCH]);
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(b.freeze()).is_err());
        // Response side: a forged huge lens count.
        let mut b = BytesMut::new();
        b.extend_from_slice(&[STATUS_OK, RTAG_BATCH]);
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(b.freeze()).is_err());
    }

    #[test]
    fn into_result_passes_success_through() {
        assert!(Response::Ok.into_result().is_ok());
        assert!(Response::Stat { size: 1 }.into_result().is_ok());
    }

    #[test]
    fn request_epoch_rides_the_wire() {
        let req = Request::Read {
            path: PathBuf::from("/gpfs/train/x.bin"),
            offset: 8,
            len: 64,
        };
        let enc = req.encode_at(7).unwrap();
        let (epoch, decoded) = Request::decode_with_epoch(enc).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(decoded, req);
        // The epoch-free entry points are the epoch-0 special case.
        let (epoch, decoded) = Request::decode_with_epoch(req.encode().unwrap()).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(decoded, req);
        assert_eq!(Request::decode(req.encode_at(99).unwrap()).unwrap(), req);
    }

    #[test]
    fn job_id_rides_the_wire_and_job0_is_byte_identical_to_legacy() {
        let req = Request::Read {
            path: PathBuf::from("/gpfs/train/x.bin"),
            offset: 8,
            len: 64,
        };
        // Job 0 encodes byte-identically to the pre-tenancy format.
        assert_eq!(
            req.encode_ctx(7, JobId::DEFAULT).unwrap(),
            req.encode_at(7).unwrap()
        );
        // A tenant-stamped request round-trips epoch, job and body.
        let enc = req.encode_ctx(7, JobId(42)).unwrap();
        let (epoch, job, decoded) = Request::decode_with_ctx(enc.clone()).unwrap();
        assert_eq!((epoch, job), (7, JobId(42)));
        assert_eq!(decoded, req);
        // Legacy decode entry points see the same epoch and request.
        let (epoch, decoded) = Request::decode_with_epoch(enc).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(decoded, req);
        // A legacy frame decodes as job 0 on a tenant-aware decoder.
        let (epoch, job, decoded) = Request::decode_with_ctx(req.encode_at(7).unwrap()).unwrap();
        assert_eq!((epoch, job), (7, JobId::DEFAULT));
        assert_eq!(decoded, req);
        // An epoch colliding with the flag is refused at encode time.
        assert!(req.encode_ctx(JOB_FLAG, JobId(1)).is_err());
    }

    #[test]
    fn responses_echo_the_job_and_job0_stays_legacy() {
        let cases = vec![
            Response::Stat { size: 42 },
            Response::Data {
                total_size: 9,
                cache_hit: true,
            },
            Response::Ok,
            Response::Batch { lens: vec![1, 2] },
            Response::Err {
                code: 2,
                message: "nope".into(),
            },
        ];
        for resp in cases {
            // Job 0 = the legacy bytes.
            assert_eq!(resp.encode_for(JobId::DEFAULT), resp.encode());
            // Tenant echo round-trips; legacy decode still sees the body.
            let enc = resp.encode_for(JobId(7));
            let (job, decoded) = Response::decode_with_job(enc.clone()).unwrap();
            assert_eq!(job, JobId(7));
            assert_eq!(decoded, resp);
            assert_eq!(Response::decode(enc).unwrap(), resp);
            // A legacy reply decodes as job 0 on a tenant-aware decoder.
            let (job, decoded) = Response::decode_with_job(resp.encode()).unwrap();
            assert_eq!(job, JobId::DEFAULT);
            assert_eq!(decoded, resp);
        }
        // An unknown status byte is a protocol error.
        assert!(Response::decode(Bytes::from_static(&[9, 1])).is_err());
    }

    #[test]
    fn stale_view_round_trips_with_the_piggybacked_view() {
        let view = ClusterView::initial(4, 2)
            .unwrap()
            .with_node_added(hvac_types::NodeId(9))
            .unwrap();
        let resp = Response::StaleView { view: view.clone() };
        let decoded = Response::decode(resp.encode()).unwrap();
        assert_eq!(decoded, resp);
        match decoded.into_result() {
            Err(e @ HvacError::StaleView { current_epoch: 1 }) => {
                assert!(e.is_retriable(), "stale view must be retriable");
                assert_eq!(e.errno(), 11);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncated_view_is_a_protocol_error() {
        let view = ClusterView::initial(3, 1).unwrap();
        let enc = Response::StaleView { view }.encode();
        for cut in 3..enc.len() - 1 {
            assert!(
                Response::decode(enc.slice(..cut)).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }
}
