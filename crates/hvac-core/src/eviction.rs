//! Cache eviction policies.
//!
//! The paper (§III-G): *"Currently, HVAC is designed to perform eviction and
//! replacement randomly and various cache-eviction and replacement policies
//! can be considered."* — so [`RandomPolicy`] is the default, and FIFO, LRU
//! and LFU are the "various policies" for the ablation bench.
//!
//! A policy only tracks *which* resident file to sacrifice; the byte
//! accounting lives in [`hvac_storage::LocalStore`], and the orchestration in
//! [`crate::cache::CacheManager`]. Policies are not thread-safe by themselves
//! — the cache manager serializes calls under its own lock.

use hvac_types::EvictionPolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Victim-selection interface.
pub trait EvictionPolicy: Send {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// A file became resident.
    fn on_insert(&mut self, path: &Path);

    /// A resident file was read.
    fn on_access(&mut self, path: &Path);

    /// A file left the cache (evicted or explicitly removed).
    fn on_remove(&mut self, path: &Path);

    /// Choose the next victim among resident files, or `None` if empty.
    /// The chosen path stays tracked until `on_remove` is called.
    fn victim(&mut self) -> Option<PathBuf>;

    /// [`victim`](Self::victim) restricted to files satisfying `eligible` —
    /// the same preference order, applied to a sub-population. The cache
    /// manager uses this to confine quota-driven eviction to one tenant's
    /// keys. The default filters the unrestricted choice, which is only
    /// right for policies that never evict anyway; real policies override
    /// it with a genuine restricted search.
    fn victim_where(&mut self, eligible: &dyn Fn(&Path) -> bool) -> Option<PathBuf> {
        self.victim().filter(|p| eligible(p))
    }

    /// Number of tracked files (for invariant checks).
    fn len(&self) -> usize;

    /// Whether nothing is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared bookkeeping: a dense vector of paths with O(1) removal by
/// swap-remove, plus a path→slot map. Random/FIFO/LRU/LFU all build on it.
#[derive(Debug, Default)]
struct Slab {
    paths: Vec<PathBuf>,
    slots: HashMap<PathBuf, usize>,
}

impl Slab {
    fn insert(&mut self, path: &Path) {
        if self.slots.contains_key(path) {
            return;
        }
        self.slots.insert(path.to_path_buf(), self.paths.len());
        self.paths.push(path.to_path_buf());
    }

    fn remove(&mut self, path: &Path) {
        if let Some(slot) = self.slots.remove(path) {
            self.paths.swap_remove(slot);
            if slot < self.paths.len() {
                let moved = self.paths[slot].clone();
                self.slots.insert(moved, slot);
            }
        }
    }

    fn len(&self) -> usize {
        self.paths.len()
    }
}

/// Uniformly random victim — the paper's default.
pub struct RandomPolicy {
    slab: Slab,
    rng: StdRng,
}

impl RandomPolicy {
    /// Deterministic policy from a seed (experiments fix seeds).
    pub fn new(seed: u64) -> Self {
        Self {
            slab: Slab::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl EvictionPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }
    fn on_insert(&mut self, path: &Path) {
        self.slab.insert(path);
    }
    fn on_access(&mut self, _path: &Path) {}
    fn on_remove(&mut self, path: &Path) {
        self.slab.remove(path);
    }
    fn victim(&mut self) -> Option<PathBuf> {
        if self.slab.paths.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.slab.paths.len());
        Some(self.slab.paths[idx].clone())
    }
    fn victim_where(&mut self, eligible: &dyn Fn(&Path) -> bool) -> Option<PathBuf> {
        let idxs: Vec<usize> = (0..self.slab.paths.len())
            .filter(|&i| eligible(&self.slab.paths[i]))
            .collect();
        if idxs.is_empty() {
            return None;
        }
        let pick = idxs[self.rng.gen_range(0..idxs.len())];
        Some(self.slab.paths[pick].clone())
    }
    fn len(&self) -> usize {
        self.slab.len()
    }
}

/// First-in, first-out.
#[derive(Default)]
pub struct FifoPolicy {
    // Insertion-ordered queue with tombstone-free removal via the slot map.
    order: std::collections::VecDeque<PathBuf>,
    resident: HashMap<PathBuf, ()>,
}

impl FifoPolicy {
    /// Empty FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn on_insert(&mut self, path: &Path) {
        if self.resident.insert(path.to_path_buf(), ()).is_none() {
            self.order.push_back(path.to_path_buf());
        }
    }
    fn on_access(&mut self, _path: &Path) {}
    fn on_remove(&mut self, path: &Path) {
        self.resident.remove(path);
        // Lazy removal: stale entries are skipped in victim().
    }
    fn victim(&mut self) -> Option<PathBuf> {
        while let Some(front) = self.order.front() {
            if self.resident.contains_key(front) {
                return Some(front.clone());
            }
            self.order.pop_front();
        }
        None
    }
    fn victim_where(&mut self, eligible: &dyn Fn(&Path) -> bool) -> Option<PathBuf> {
        // Oldest eligible entry; live-but-ineligible entries keep their
        // queue positions (only true tombstones at the front are dropped).
        while let Some(front) = self.order.front() {
            if self.resident.contains_key(front) {
                break;
            }
            self.order.pop_front();
        }
        self.order
            .iter()
            .find(|p| self.resident.contains_key(*p) && eligible(p))
            .cloned()
    }
    fn len(&self) -> usize {
        self.resident.len()
    }
}

/// Least-recently-used, tracked with a logical clock.
#[derive(Default)]
pub struct LruPolicy {
    clock: u64,
    last_use: HashMap<PathBuf, u64>,
}

impl LruPolicy {
    /// Empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn on_insert(&mut self, path: &Path) {
        let t = self.tick();
        self.last_use.insert(path.to_path_buf(), t);
    }
    fn on_access(&mut self, path: &Path) {
        let t = self.tick();
        if let Some(entry) = self.last_use.get_mut(path) {
            *entry = t;
        }
    }
    fn on_remove(&mut self, path: &Path) {
        self.last_use.remove(path);
    }
    fn victim(&mut self) -> Option<PathBuf> {
        self.last_use
            .iter()
            .min_by_key(|(_, &t)| t)
            .map(|(p, _)| p.clone())
    }
    fn victim_where(&mut self, eligible: &dyn Fn(&Path) -> bool) -> Option<PathBuf> {
        self.last_use
            .iter()
            .filter(|(p, _)| eligible(p))
            .min_by_key(|(_, &t)| t)
            .map(|(p, _)| p.clone())
    }
    fn len(&self) -> usize {
        self.last_use.len()
    }
}

/// Least-frequently-used with logical-time tiebreak (older first).
#[derive(Default)]
pub struct LfuPolicy {
    clock: u64,
    entries: HashMap<PathBuf, (u64, u64)>, // (uses, inserted_at)
}

impl LfuPolicy {
    /// Empty LFU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "lfu"
    }
    fn on_insert(&mut self, path: &Path) {
        self.clock += 1;
        let t = self.clock;
        self.entries.entry(path.to_path_buf()).or_insert((0, t));
    }
    fn on_access(&mut self, path: &Path) {
        if let Some((uses, _)) = self.entries.get_mut(path) {
            *uses += 1;
        }
    }
    fn on_remove(&mut self, path: &Path) {
        self.entries.remove(path);
    }
    fn victim(&mut self) -> Option<PathBuf> {
        self.entries
            .iter()
            .min_by_key(|(_, &(uses, t))| (uses, t))
            .map(|(p, _)| p.clone())
    }
    fn victim_where(&mut self, eligible: &dyn Fn(&Path) -> bool) -> Option<PathBuf> {
        self.entries
            .iter()
            .filter(|(p, _)| eligible(p))
            .min_by_key(|(_, &(uses, t))| (uses, t))
            .map(|(p, _)| p.clone())
    }
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// CoorDL's MinIO: never evict. Once the cache fills, further inserts are
/// refused and the server serves those files from the PFS directly — so a
/// *stable* subset of the dataset is always cache-resident, instead of the
/// whole dataset churning (the §V-cited design).
#[derive(Default)]
pub struct MinIoPolicy {
    resident: std::collections::HashSet<PathBuf>,
}

impl MinIoPolicy {
    /// Empty pinned-cache policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for MinIoPolicy {
    fn name(&self) -> &'static str {
        "minio"
    }
    fn on_insert(&mut self, path: &Path) {
        self.resident.insert(path.to_path_buf());
    }
    fn on_access(&mut self, _path: &Path) {}
    fn on_remove(&mut self, path: &Path) {
        self.resident.remove(path);
    }
    fn victim(&mut self) -> Option<PathBuf> {
        None // pinned: nothing is ever sacrificed
    }
    fn len(&self) -> usize {
        self.resident.len()
    }
}

/// Construct the policy selected by an [`EvictionPolicyKind`]; `seed` only
/// affects [`RandomPolicy`].
pub fn make_policy(kind: EvictionPolicyKind, seed: u64) -> Box<dyn EvictionPolicy> {
    match kind {
        EvictionPolicyKind::Random => Box::new(RandomPolicy::new(seed)),
        EvictionPolicyKind::Fifo => Box::new(FifoPolicy::new()),
        EvictionPolicyKind::Lru => Box::new(LruPolicy::new()),
        EvictionPolicyKind::Lfu => Box::new(LfuPolicy::new()),
        EvictionPolicyKind::MinIo => Box::new(MinIoPolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn all_policies() -> Vec<Box<dyn EvictionPolicy>> {
        vec![
            Box::new(RandomPolicy::new(42)),
            Box::new(FifoPolicy::new()),
            Box::new(LruPolicy::new()),
            Box::new(LfuPolicy::new()),
        ]
    }

    #[test]
    fn empty_policy_has_no_victim() {
        for mut pol in all_policies() {
            assert!(pol.victim().is_none(), "{}", pol.name());
            assert!(pol.is_empty());
        }
    }

    #[test]
    fn victim_is_always_resident() {
        for mut pol in all_policies() {
            for i in 0..20 {
                pol.on_insert(&p(&format!("/f{i}")));
            }
            for i in (0..20).step_by(2) {
                pol.on_remove(&p(&format!("/f{i}")));
            }
            assert_eq!(pol.len(), 10, "{}", pol.name());
            for _ in 0..10 {
                let v = pol.victim().unwrap();
                let idx: usize = v.to_str().unwrap()[2..].parse().unwrap();
                assert_eq!(idx % 2, 1, "{} chose removed file {v:?}", pol.name());
                pol.on_remove(&v);
            }
            assert!(pol.victim().is_none());
        }
    }

    #[test]
    fn fifo_evicts_in_insertion_order() {
        let mut pol = FifoPolicy::new();
        pol.on_insert(&p("/a"));
        pol.on_insert(&p("/b"));
        pol.on_insert(&p("/c"));
        pol.on_access(&p("/a")); // access is irrelevant to FIFO
        assert_eq!(pol.victim().unwrap(), p("/a"));
        pol.on_remove(&p("/a"));
        assert_eq!(pol.victim().unwrap(), p("/b"));
    }

    #[test]
    fn lru_respects_recency() {
        let mut pol = LruPolicy::new();
        pol.on_insert(&p("/a"));
        pol.on_insert(&p("/b"));
        pol.on_insert(&p("/c"));
        pol.on_access(&p("/a")); // /a is now most recent; /b is LRU
        assert_eq!(pol.victim().unwrap(), p("/b"));
        pol.on_remove(&p("/b"));
        pol.on_access(&p("/c"));
        assert_eq!(pol.victim().unwrap(), p("/a"));
    }

    #[test]
    fn lfu_respects_frequency_with_age_tiebreak() {
        let mut pol = LfuPolicy::new();
        pol.on_insert(&p("/a"));
        pol.on_insert(&p("/b"));
        pol.on_access(&p("/a"));
        pol.on_access(&p("/a"));
        pol.on_access(&p("/b"));
        assert_eq!(pol.victim().unwrap(), p("/b"));
        // Tie: equal frequencies -> the older insert loses.
        let mut tie = LfuPolicy::new();
        tie.on_insert(&p("/old"));
        tie.on_insert(&p("/new"));
        assert_eq!(tie.victim().unwrap(), p("/old"));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_all_entries() {
        let run = |seed: u64| {
            let mut pol = RandomPolicy::new(seed);
            for i in 0..8 {
                pol.on_insert(&p(&format!("/f{i}")));
            }
            let mut order = Vec::new();
            while let Some(v) = pol.victim() {
                pol.on_remove(&v);
                order.push(v);
            }
            order
        };
        assert_eq!(run(7), run(7));
        let a = run(1);
        assert_eq!(a.len(), 8);
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "each file evicted exactly once");
        // Different seeds eventually disagree (overwhelmingly likely).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        for mut pol in all_policies() {
            pol.on_insert(&p("/a"));
            pol.on_insert(&p("/a"));
            assert_eq!(pol.len(), 1, "{}", pol.name());
            pol.on_remove(&p("/a"));
            assert_eq!(pol.len(), 0, "{}", pol.name());
            assert!(pol.victim().is_none(), "{}", pol.name());
        }
    }

    #[test]
    fn victim_where_respects_the_restriction_and_the_order() {
        for mut pol in all_policies() {
            for i in 0..10 {
                pol.on_insert(&p(&format!("/t{}/f{i}", i % 2)));
            }
            let only_t1 = |path: &Path| path.starts_with("/t1");
            // Drain the restricted population: every victim matches, and the
            // restriction never returns files outside it.
            for _ in 0..5 {
                let v = pol.victim_where(&only_t1).unwrap();
                assert!(only_t1(&v), "{} chose {v:?}", pol.name());
                pol.on_remove(&v);
            }
            assert!(pol.victim_where(&only_t1).is_none(), "{}", pol.name());
            assert_eq!(pol.len(), 5, "{}: /t0 files untouched", pol.name());
        }
        // Order agreement: the restricted choice follows the policy's own
        // preference, not just any eligible entry.
        let mut fifo = FifoPolicy::new();
        let mut lru = LruPolicy::new();
        for n in ["/t0/a", "/t1/b", "/t1/c"] {
            fifo.on_insert(&p(n));
            lru.on_insert(&p(n));
        }
        lru.on_access(&p("/t1/b"));
        assert_eq!(
            fifo.victim_where(&|x| x.starts_with("/t1")).unwrap(),
            p("/t1/b")
        );
        assert_eq!(
            lru.victim_where(&|x| x.starts_with("/t1")).unwrap(),
            p("/t1/c")
        );
        // MinIO still never evicts, restricted or not.
        let mut pinned = MinIoPolicy::new();
        pinned.on_insert(&p("/t1/x"));
        assert!(pinned.victim_where(&|_| true).is_none());
    }

    #[test]
    fn make_policy_covers_all_kinds() {
        for kind in [
            EvictionPolicyKind::Random,
            EvictionPolicyKind::Fifo,
            EvictionPolicyKind::Lru,
            EvictionPolicyKind::Lfu,
        ] {
            let mut pol = make_policy(kind, 3);
            pol.on_insert(&p("/x"));
            assert_eq!(pol.victim().unwrap(), p("/x"));
        }
        let mut pinned = make_policy(EvictionPolicyKind::MinIo, 3);
        pinned.on_insert(&p("/x"));
        assert!(pinned.victim().is_none(), "MinIO never evicts");
        assert_eq!(pinned.len(), 1);
        pinned.on_remove(&p("/x"));
        assert_eq!(pinned.len(), 0);
    }
}
