//! Path classification for interception.
//!
//! Both the in-process client and the `LD_PRELOAD` shim must decide, on
//! every `open`, whether a path belongs to the cached dataset. The paper
//! drives this with the `HVAC_DATASET_DIR` environment variable (§III-C);
//! [`DatasetMatcher`] implements the same contract.

use std::path::{Component, Path, PathBuf};

/// Environment variable naming the dataset directory to cache (paper §III-C).
pub const DATASET_DIR_ENV: &str = "HVAC_DATASET_DIR";

/// Decides whether a path is under the cached dataset directory.
#[derive(Debug, Clone)]
pub struct DatasetMatcher {
    root: PathBuf,
}

impl DatasetMatcher {
    /// Match everything under `root` (normalized: `.` and trailing
    /// separators removed; `..` resolved lexically).
    pub fn new<P: AsRef<Path>>(root: P) -> Self {
        Self {
            root: normalize(root.as_ref()),
        }
    }

    /// Build from the `HVAC_DATASET_DIR` environment variable, if set.
    pub fn from_env() -> Option<Self> {
        std::env::var_os(DATASET_DIR_ENV).map(|v| Self::new(PathBuf::from(v)))
    }

    /// The normalized dataset root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether `path` should be routed through HVAC.
    pub fn matches<P: AsRef<Path>>(&self, path: P) -> bool {
        normalize(path.as_ref()).starts_with(&self.root)
    }
}

/// Lexical normalization: drop `.`, resolve `..` against preceding
/// components, keep the path absolute if it was.
pub fn normalize(path: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for comp in path.components() {
        match comp {
            Component::CurDir => {}
            Component::ParentDir => {
                if !out.pop() {
                    out.push("..");
                }
            }
            other => out.push(other.as_os_str()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_inside_not_outside() {
        let m = DatasetMatcher::new("/gpfs/alpine/imagenet");
        assert!(m.matches("/gpfs/alpine/imagenet/train/x.jpg"));
        assert!(m.matches("/gpfs/alpine/imagenet"));
        assert!(!m.matches("/gpfs/alpine/other/x.jpg"));
        assert!(!m.matches("/gpfs/alpine/imagenet2/x.jpg")); // no prefix-string match
        assert!(!m.matches("/etc/passwd"));
    }

    #[test]
    fn dot_and_dotdot_are_normalized() {
        let m = DatasetMatcher::new("/data/./set/");
        assert_eq!(m.root(), Path::new("/data/set"));
        assert!(m.matches("/data/set/a/../b.bin"));
        assert!(!m.matches("/data/set/../escape.bin"));
    }

    #[test]
    fn normalize_cases() {
        assert_eq!(normalize(Path::new("/a/b/../c")), PathBuf::from("/a/c"));
        assert_eq!(normalize(Path::new("/a/./b")), PathBuf::from("/a/b"));
        assert_eq!(normalize(Path::new("a/../../b")), PathBuf::from("../b"));
        assert_eq!(normalize(Path::new("/")), PathBuf::from("/"));
    }

    #[test]
    fn from_env_round_trip() {
        // Serialize access to the process environment.
        std::env::set_var(DATASET_DIR_ENV, "/env/dataset");
        let m = DatasetMatcher::from_env().expect("env set");
        assert!(m.matches("/env/dataset/f"));
        std::env::remove_var(DATASET_DIR_ENV);
        assert!(DatasetMatcher::from_env().is_none());
    }
}
