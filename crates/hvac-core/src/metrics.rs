//! Observability counters.
//!
//! The whole value proposition of HVAC is *where reads are served from*, so
//! both sides count it. All counters are relaxed atomics — they are
//! statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters kept by one HVAC server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Read RPCs answered.
    pub reads: AtomicU64,
    /// Reads served from node-local storage.
    pub cache_hits: AtomicU64,
    /// Reads that required fetching from the PFS first.
    pub cache_misses: AtomicU64,
    /// Files copied PFS → node-local storage by the data mover.
    pub pfs_copies: AtomicU64,
    /// Bytes copied from the PFS.
    pub pfs_bytes: AtomicU64,
    /// Bytes served to clients.
    pub served_bytes: AtomicU64,
    /// Files evicted to make room.
    pub evictions: AtomicU64,
    /// Copy requests that piggybacked on an in-flight copy of the same file
    /// (the mutex-on-shared-queue dedup of §III-D).
    pub dedup_waits: AtomicU64,
    /// Stat RPCs answered.
    pub stats_ops: AtomicU64,
    /// Close RPCs answered.
    pub closes: AtomicU64,
    /// Files accepted for background prefetch.
    pub prefetches: AtomicU64,
    /// Reads served straight from the PFS because the cache refused
    /// admission (file too large, or a pinned MinIO-style cache is full).
    pub pfs_bypass_reads: AtomicU64,
}

/// A plain-old-data snapshot of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Read RPCs answered.
    pub reads: u64,
    /// Reads served from node-local storage.
    pub cache_hits: u64,
    /// Reads that required a PFS fetch.
    pub cache_misses: u64,
    /// Files copied from the PFS.
    pub pfs_copies: u64,
    /// Bytes copied from the PFS.
    pub pfs_bytes: u64,
    /// Bytes served to clients.
    pub served_bytes: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Deduplicated concurrent copy requests.
    pub dedup_waits: u64,
    /// Stat RPCs answered.
    pub stats_ops: u64,
    /// Close RPCs answered.
    pub closes: u64,
    /// Files accepted for background prefetch.
    pub prefetches: u64,
    /// Reads served straight from the PFS (cache bypass).
    pub pfs_bypass_reads: u64,
}

impl ServerMetrics {
    /// Atomic snapshot (per-counter; not globally consistent, which is fine
    /// for reporting).
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            pfs_copies: self.pfs_copies.load(Ordering::Relaxed),
            pfs_bytes: self.pfs_bytes.load(Ordering::Relaxed),
            served_bytes: self.served_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            stats_ops: self.stats_ops.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            pfs_bypass_reads: self.pfs_bypass_reads.load(Ordering::Relaxed),
        }
    }
}

impl ServerMetricsSnapshot {
    /// Merge another snapshot into this one (cluster-wide aggregation).
    pub fn merge(&mut self, other: &ServerMetricsSnapshot) {
        self.reads += other.reads;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pfs_copies += other.pfs_copies;
        self.pfs_bytes += other.pfs_bytes;
        self.served_bytes += other.served_bytes;
        self.evictions += other.evictions;
        self.dedup_waits += other.dedup_waits;
        self.stats_ops += other.stats_ops;
        self.closes += other.closes;
        self.prefetches += other.prefetches;
        self.pfs_bypass_reads += other.pfs_bypass_reads;
    }

    /// Fraction of reads served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.reads as f64
        }
    }
}

/// Counters kept by one HVAC client.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// `open` calls intercepted for the dataset directory.
    pub opens: AtomicU64,
    /// `read`/`pread` calls forwarded to HVAC servers.
    pub reads: AtomicU64,
    /// Bytes delivered to the application.
    pub bytes: AtomicU64,
    /// `close` calls.
    pub closes: AtomicU64,
    /// Reads answered by a non-primary replica.
    pub failovers: AtomicU64,
    /// Opens that bypassed HVAC (outside the dataset directory).
    pub passthrough_opens: AtomicU64,
}

impl ClientMetrics {
    /// Snapshot `(opens, reads, bytes, closes, failovers, passthrough)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.opens.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.closes.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.passthrough_opens.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let m = ServerMetrics::default();
        m.reads.fetch_add(10, Ordering::Relaxed);
        m.cache_hits.fetch_add(7, Ordering::Relaxed);
        m.cache_misses.fetch_add(3, Ordering::Relaxed);
        let s1 = m.snapshot();
        assert_eq!(s1.reads, 10);
        assert!((s1.hit_rate() - 0.7).abs() < 1e-12);

        let mut agg = ServerMetricsSnapshot::default();
        agg.merge(&s1);
        agg.merge(&s1);
        assert_eq!(agg.reads, 20);
        assert_eq!(agg.cache_hits, 14);
    }

    #[test]
    fn hit_rate_of_idle_server_is_zero() {
        assert_eq!(ServerMetricsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn client_metrics_snapshot() {
        let c = ClientMetrics::default();
        c.opens.fetch_add(2, Ordering::Relaxed);
        c.bytes.fetch_add(100, Ordering::Relaxed);
        let (opens, reads, bytes, closes, failovers, passthrough) = c.snapshot();
        assert_eq!(
            (opens, reads, bytes, closes, failovers, passthrough),
            (2, 0, 100, 0, 0, 0)
        );
    }
}
