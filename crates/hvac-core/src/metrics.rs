//! Observability counters.
//!
//! The whole value proposition of HVAC is *where reads are served from*, so
//! both sides count it. All counters are relaxed atomics — they are
//! statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-stripe counters of the server's striped read hot path (the inflight
/// dedup table). One entry per stripe; indexed by the stripe a cache key
/// hashes to.
#[derive(Debug, Default)]
pub struct StripeCounters {
    /// `ensure_cached` calls that found the key already resident.
    pub hits: AtomicU64,
    /// `ensure_cached` calls that had to wait for (or start) a PFS copy.
    pub misses: AtomicU64,
    /// Stripe-lock acquisitions that found the stripe held (`try_lock`
    /// failed and the caller fell back to a blocking lock).
    pub contention: AtomicU64,
}

/// Slots in a [`TenantTable`]. Plenty for any realistic number of
/// co-scheduled jobs on one allocation; overflow tenants keep counting in
/// the scalar totals but lose their per-tenant split.
const TENANT_SLOTS: usize = 64;

/// One tenant's row in the per-tenant counter split.
#[derive(Debug)]
pub struct TenantCounters {
    /// Owning job id; `u64::MAX` marks a free slot (so a literal job id of
    /// `u64::MAX` is the one tenant that cannot get its own row).
    job: AtomicU64,
    /// Reads admitted past QoS admission control.
    pub admitted: AtomicU64,
    /// Reads shed to the PFS degradation path by admission control.
    pub shed: AtomicU64,
    /// Read RPCs answered for this tenant.
    pub reads: AtomicU64,
    /// Bytes served to this tenant.
    pub served_bytes: AtomicU64,
}

/// Lock-free per-tenant counter table: a fixed open-addressed slot array
/// claimed by CAS on first touch, linear probing on collision. Counting
/// stays wait-free on the read hot path; enumeration walks occupied slots.
#[derive(Debug)]
pub struct TenantTable {
    slots: Vec<TenantCounters>,
}

impl Default for TenantTable {
    fn default() -> Self {
        Self {
            slots: (0..TENANT_SLOTS)
                .map(|_| TenantCounters {
                    job: AtomicU64::new(u64::MAX),
                    admitted: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    reads: AtomicU64::new(0),
                    served_bytes: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

impl TenantTable {
    /// Find (or claim) the slot for `job`. `None` when the table is full —
    /// the caller just drops the per-tenant split for that job.
    pub fn slot(&self, job: u64) -> Option<&TenantCounters> {
        if job == u64::MAX {
            return None;
        }
        let n = self.slots.len();
        let start = (job as usize) % n;
        for i in 0..n {
            let s = &self.slots[(start + i) % n];
            let cur = s.job.load(Ordering::Relaxed);
            if cur == job {
                return Some(s);
            }
            if cur == u64::MAX {
                match s
                    .job
                    .compare_exchange(u64::MAX, job, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return Some(s),
                    Err(actual) if actual == job => return Some(s),
                    Err(_) => continue,
                }
            }
        }
        None
    }

    /// Occupied rows as plain data, sorted by job id.
    pub fn snapshot(&self) -> Vec<TenantServerSnapshot> {
        let mut out: Vec<TenantServerSnapshot> = self
            .slots
            .iter()
            .filter(|s| s.job.load(Ordering::Relaxed) != u64::MAX)
            .map(|s| TenantServerSnapshot {
                job: s.job.load(Ordering::Relaxed),
                admitted: s.admitted.load(Ordering::Relaxed),
                shed: s.shed.load(Ordering::Relaxed),
                reads: s.reads.load(Ordering::Relaxed),
                served_bytes: s.served_bytes.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|t| t.job);
        out
    }
}

/// A plain-old-data row of one tenant's server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantServerSnapshot {
    /// Job id.
    pub job: u64,
    /// Reads admitted past QoS admission control.
    pub admitted: u64,
    /// Reads shed to the PFS degradation path.
    pub shed: u64,
    /// Read RPCs answered.
    pub reads: u64,
    /// Bytes served.
    pub served_bytes: u64,
}

impl TenantServerSnapshot {
    /// Merge another row of the *same* job into this one.
    pub fn merge(&mut self, other: &TenantServerSnapshot) {
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.reads += other.reads;
        self.served_bytes += other.served_bytes;
    }
}

/// Counters kept by one HVAC server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Read RPCs answered.
    pub reads: AtomicU64,
    /// Reads served from node-local storage.
    pub cache_hits: AtomicU64,
    /// Reads that required fetching from the PFS first.
    pub cache_misses: AtomicU64,
    /// Files copied PFS → node-local storage by the data mover.
    pub pfs_copies: AtomicU64,
    /// Bytes copied from the PFS.
    pub pfs_bytes: AtomicU64,
    /// Bytes served to clients.
    pub served_bytes: AtomicU64,
    /// Files evicted to make room.
    pub evictions: AtomicU64,
    /// Copy requests that piggybacked on an in-flight copy of the same file
    /// (the mutex-on-shared-queue dedup of §III-D).
    pub dedup_waits: AtomicU64,
    /// Stat RPCs answered.
    pub stats_ops: AtomicU64,
    /// Close RPCs answered.
    pub closes: AtomicU64,
    /// Files accepted for background prefetch.
    pub prefetches: AtomicU64,
    /// Reads served straight from the PFS because the cache refused
    /// admission (file too large, or a pinned MinIO-style cache is full).
    pub pfs_bypass_reads: AtomicU64,
    /// Reads that lost the ensure/read race to eviction on every retry and
    /// fell back to a PFS bypass read (cache thrashing under churn).
    pub eviction_races: AtomicU64,
    /// Batch RPCs answered (each bundling several segment reads into one
    /// frame; the per-item reads are still counted in `reads`).
    pub batch_rpcs: AtomicU64,
    /// Requests rejected with `StaleView` because the sender's membership
    /// epoch was older than this server's (each one redirects the client to
    /// the current view).
    pub stale_view_redirects: AtomicU64,
    /// Files this server migrated to a new home during rebalancing (counted
    /// on the *source*).
    pub migrated_files: AtomicU64,
    /// Bytes this server migrated to new homes during rebalancing.
    pub migrated_bytes: AtomicU64,
    /// Files this server re-replicated to an under-replicated peer during
    /// an anti-entropy repair pass (counted on the *source* holder).
    pub repaired_files: AtomicU64,
    /// Bytes this server copied to peers during repair passes.
    pub repaired_bytes: AtomicU64,
    /// Reads admitted past QoS admission control (counted even when QoS is
    /// off — then everything is admitted).
    pub tenant_admitted: AtomicU64,
    /// Reads shed by admission control and served via the PFS degradation
    /// path instead of the cache read path.
    pub tenant_shed: AtomicU64,
    /// Per-stripe hit/miss/contention counters of the inflight table.
    /// Empty by default (`ServerMetrics::default()`); sized by
    /// [`ServerMetrics::with_stripes`] when the server spawns.
    pub stripes: Vec<StripeCounters>,
    /// Per-tenant counter split (lock-free fixed slot table).
    pub tenants: TenantTable,
}

impl ServerMetrics {
    /// Metrics with `n` per-stripe counter slots.
    pub fn with_stripes(n: usize) -> Self {
        Self {
            stripes: (0..n).map(|_| StripeCounters::default()).collect(),
            ..Self::default()
        }
    }

    /// Count a stripe-level hit (no-op when stripe counters are not armed).
    pub fn stripe_hit(&self, stripe: usize) {
        if let Some(s) = self.stripes.get(stripe) {
            s.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a stripe-level miss.
    pub fn stripe_miss(&self, stripe: usize) {
        if let Some(s) = self.stripes.get(stripe) {
            s.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a contended stripe-lock acquisition.
    pub fn stripe_contended(&self, stripe: usize) {
        if let Some(s) = self.stripes.get(stripe) {
            s.contention.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one admitted read for `job` (scalar total + per-tenant row).
    pub fn tenant_admit(&self, job: u64) {
        self.tenant_admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tenants.slot(job) {
            t.admitted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one shed read for `job`.
    pub fn tenant_shed(&self, job: u64) {
        self.tenant_shed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tenants.slot(job) {
            t.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one answered read of `bytes` bytes for `job`.
    pub fn tenant_read(&self, job: u64, bytes: u64) {
        if let Some(t) = self.tenants.slot(job) {
            t.reads.fetch_add(1, Ordering::Relaxed);
            t.served_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }
}

/// A plain-old-data snapshot of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Read RPCs answered.
    pub reads: u64,
    /// Reads served from node-local storage.
    pub cache_hits: u64,
    /// Reads that required a PFS fetch.
    pub cache_misses: u64,
    /// Files copied from the PFS.
    pub pfs_copies: u64,
    /// Bytes copied from the PFS.
    pub pfs_bytes: u64,
    /// Bytes served to clients.
    pub served_bytes: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Deduplicated concurrent copy requests.
    pub dedup_waits: u64,
    /// Stat RPCs answered.
    pub stats_ops: u64,
    /// Close RPCs answered.
    pub closes: u64,
    /// Files accepted for background prefetch.
    pub prefetches: u64,
    /// Reads served straight from the PFS (cache bypass).
    pub pfs_bypass_reads: u64,
    /// Reads that lost every ensure/read retry to eviction and were served
    /// via PFS bypass instead.
    pub eviction_races: u64,
    /// Batch RPCs answered (per-item reads are still counted in `reads`).
    pub batch_rpcs: u64,
    /// Requests rejected (and redirected) for carrying a stale view epoch.
    pub stale_view_redirects: u64,
    /// Files migrated away during rebalancing (source-side count).
    pub migrated_files: u64,
    /// Bytes migrated away during rebalancing.
    pub migrated_bytes: u64,
    /// Files re-replicated to peers during repair passes (source-side).
    pub repaired_files: u64,
    /// Bytes copied to peers during repair passes.
    pub repaired_bytes: u64,
    /// Reads admitted past QoS admission control.
    pub tenant_admitted: u64,
    /// Reads shed by admission control to the PFS degradation path.
    pub tenant_shed: u64,
    /// Stripe-level hits summed over every stripe (the per-stripe vectors
    /// stay on [`ServerMetrics`]; the snapshot carries scalars so it stays
    /// `Copy` and merges cheaply).
    pub stripe_hits: u64,
    /// Stripe-level misses summed over every stripe.
    pub stripe_misses: u64,
    /// Contended stripe-lock acquisitions summed over every stripe.
    pub stripe_contention: u64,
}

impl ServerMetrics {
    /// Atomic snapshot (per-counter; not globally consistent, which is fine
    /// for reporting).
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            pfs_copies: self.pfs_copies.load(Ordering::Relaxed),
            pfs_bytes: self.pfs_bytes.load(Ordering::Relaxed),
            served_bytes: self.served_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            stats_ops: self.stats_ops.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            pfs_bypass_reads: self.pfs_bypass_reads.load(Ordering::Relaxed),
            eviction_races: self.eviction_races.load(Ordering::Relaxed),
            batch_rpcs: self.batch_rpcs.load(Ordering::Relaxed),
            stale_view_redirects: self.stale_view_redirects.load(Ordering::Relaxed),
            migrated_files: self.migrated_files.load(Ordering::Relaxed),
            migrated_bytes: self.migrated_bytes.load(Ordering::Relaxed),
            repaired_files: self.repaired_files.load(Ordering::Relaxed),
            repaired_bytes: self.repaired_bytes.load(Ordering::Relaxed),
            tenant_admitted: self.tenant_admitted.load(Ordering::Relaxed),
            tenant_shed: self.tenant_shed.load(Ordering::Relaxed),
            stripe_hits: self
                .stripes
                .iter()
                .map(|s| s.hits.load(Ordering::Relaxed))
                .sum(),
            stripe_misses: self
                .stripes
                .iter()
                .map(|s| s.misses.load(Ordering::Relaxed))
                .sum(),
            stripe_contention: self
                .stripes
                .iter()
                .map(|s| s.contention.load(Ordering::Relaxed))
                .sum(),
        }
    }
}

impl ServerMetricsSnapshot {
    /// Merge another snapshot into this one (cluster-wide aggregation).
    pub fn merge(&mut self, other: &ServerMetricsSnapshot) {
        self.reads += other.reads;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pfs_copies += other.pfs_copies;
        self.pfs_bytes += other.pfs_bytes;
        self.served_bytes += other.served_bytes;
        self.evictions += other.evictions;
        self.dedup_waits += other.dedup_waits;
        self.stats_ops += other.stats_ops;
        self.closes += other.closes;
        self.prefetches += other.prefetches;
        self.pfs_bypass_reads += other.pfs_bypass_reads;
        self.eviction_races += other.eviction_races;
        self.batch_rpcs += other.batch_rpcs;
        self.stale_view_redirects += other.stale_view_redirects;
        self.migrated_files += other.migrated_files;
        self.migrated_bytes += other.migrated_bytes;
        self.repaired_files += other.repaired_files;
        self.repaired_bytes += other.repaired_bytes;
        self.tenant_admitted += other.tenant_admitted;
        self.tenant_shed += other.tenant_shed;
        self.stripe_hits += other.stripe_hits;
        self.stripe_misses += other.stripe_misses;
        self.stripe_contention += other.stripe_contention;
    }

    /// Fraction of reads served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.reads as f64
        }
    }
}

/// Counters kept by one HVAC client.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// `open` calls intercepted for the dataset directory.
    pub opens: AtomicU64,
    /// `read`/`pread` calls forwarded to HVAC servers.
    pub reads: AtomicU64,
    /// Bytes delivered to the application.
    pub bytes: AtomicU64,
    /// `close` calls.
    pub closes: AtomicU64,
    /// Reads answered by a non-primary replica.
    pub failovers: AtomicU64,
    /// Opens that bypassed HVAC (outside the dataset directory).
    pub passthrough_opens: AtomicU64,
    /// RPC attempts that missed their per-call deadline.
    pub timeouts: AtomicU64,
    /// Same-replica retry attempts after a transient failure.
    pub retries: AtomicU64,
    /// Circuit-breaker trips (a replica crossed the consecutive-failure
    /// threshold and is now skipped proactively).
    pub breaker_trips: AtomicU64,
    /// Calls that skipped a replica because its breaker was open.
    pub breaker_skips: AtomicU64,
    /// Reads served by the client directly from the PFS after every replica
    /// was exhausted (last rung of the degradation ladder).
    pub degraded_reads: AtomicU64,
    /// Times this client swapped in a newer [`hvac_types::ClusterView`]
    /// after a `StaleView` redirect.
    pub view_refreshes: AtomicU64,
    /// Hedged backup requests issued after the hedge delay expired with the
    /// primary replica still silent.
    pub hedges: AtomicU64,
    /// Hedged calls where the backup replica answered first.
    pub hedge_wins: AtomicU64,
    /// Batch RPCs issued on the zero-copy read path (each bundling several
    /// coalesced segment ranges for one destination).
    pub batch_rpcs: AtomicU64,
    /// Batches that failed (or returned malformed lengths) and were re-read
    /// through the per-segment retry/failover ladder instead.
    pub batch_fallbacks: AtomicU64,
}

/// A plain-old-data snapshot of [`ClientMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMetricsSnapshot {
    /// `open` calls intercepted for the dataset directory.
    pub opens: u64,
    /// `read`/`pread` calls forwarded to HVAC servers.
    pub reads: u64,
    /// Bytes delivered to the application.
    pub bytes: u64,
    /// `close` calls.
    pub closes: u64,
    /// Reads answered by a non-primary replica.
    pub failovers: u64,
    /// Opens that bypassed HVAC.
    pub passthrough_opens: u64,
    /// RPC attempts that missed their per-call deadline.
    pub timeouts: u64,
    /// Same-replica retry attempts.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Replica calls skipped on an open breaker.
    pub breaker_skips: u64,
    /// Client-side direct-PFS reads.
    pub degraded_reads: u64,
    /// View swaps performed after `StaleView` redirects.
    pub view_refreshes: u64,
    /// Hedged backup requests issued.
    pub hedges: u64,
    /// Hedged calls won by the backup replica.
    pub hedge_wins: u64,
    /// Batch RPCs issued on the zero-copy read path.
    pub batch_rpcs: u64,
    /// Batches re-read through the per-segment ladder after a failure.
    pub batch_fallbacks: u64,
}

impl ClientMetrics {
    /// Snapshot `(opens, reads, bytes, closes, failovers, passthrough)` —
    /// the legacy tuple; resilience counters live in [`Self::full_snapshot`].
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        let s = self.full_snapshot();
        (
            s.opens,
            s.reads,
            s.bytes,
            s.closes,
            s.failovers,
            s.passthrough_opens,
        )
    }

    /// Atomic snapshot of every counter, including the failure-semantics
    /// ones (timeouts, retries, breaker trips/skips, degraded reads).
    pub fn full_snapshot(&self) -> ClientMetricsSnapshot {
        ClientMetricsSnapshot {
            opens: self.opens.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            passthrough_opens: self.passthrough_opens.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            view_refreshes: self.view_refreshes.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            batch_rpcs: self.batch_rpcs.load(Ordering::Relaxed),
            batch_fallbacks: self.batch_fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let m = ServerMetrics::default();
        m.reads.fetch_add(10, Ordering::Relaxed);
        m.cache_hits.fetch_add(7, Ordering::Relaxed);
        m.cache_misses.fetch_add(3, Ordering::Relaxed);
        let s1 = m.snapshot();
        assert_eq!(s1.reads, 10);
        assert!((s1.hit_rate() - 0.7).abs() < 1e-12);

        let mut agg = ServerMetricsSnapshot::default();
        agg.merge(&s1);
        agg.merge(&s1);
        assert_eq!(agg.reads, 20);
        assert_eq!(agg.cache_hits, 14);
    }

    #[test]
    fn stripe_counters_sum_into_snapshot_and_merge() {
        let m = ServerMetrics::with_stripes(4);
        m.stripe_hit(0);
        m.stripe_hit(3);
        m.stripe_miss(1);
        m.stripe_contended(2);
        m.stripe_contended(2);
        m.stripe_hit(99); // out of range: ignored, not a panic
        let s = m.snapshot();
        assert_eq!(
            (s.stripe_hits, s.stripe_misses, s.stripe_contention),
            (2, 1, 2)
        );
        let mut agg = ServerMetricsSnapshot::default();
        agg.merge(&s);
        agg.merge(&s);
        assert_eq!(agg.stripe_hits, 4);
        assert_eq!(agg.stripe_contention, 4);
        // Un-armed metrics (no stripe slots): counting is a no-op.
        let d = ServerMetrics::default();
        d.stripe_hit(0);
        assert_eq!(d.snapshot().stripe_hits, 0);
    }

    #[test]
    fn tenant_counters_split_per_job_and_total_in_the_snapshot() {
        let m = ServerMetrics::default();
        m.tenant_admit(0);
        m.tenant_admit(7);
        m.tenant_admit(7);
        m.tenant_shed(7);
        m.tenant_read(7, 100);
        m.tenant_read(0, 40);
        let s = m.snapshot();
        assert_eq!((s.tenant_admitted, s.tenant_shed), (3, 1));
        let rows = m.tenants.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            (
                rows[0].job,
                rows[0].admitted,
                rows[0].reads,
                rows[0].served_bytes
            ),
            (0, 1, 1, 40)
        );
        assert_eq!(
            (
                rows[1].job,
                rows[1].admitted,
                rows[1].shed,
                rows[1].served_bytes
            ),
            (7, 2, 1, 100)
        );
        let mut agg = rows[1];
        agg.merge(&rows[1]);
        assert_eq!((agg.admitted, agg.served_bytes), (4, 200));
        // Snapshot merge carries the scalar totals.
        let mut total = ServerMetricsSnapshot::default();
        total.merge(&s);
        total.merge(&s);
        assert_eq!((total.tenant_admitted, total.tenant_shed), (6, 2));
    }

    #[test]
    fn tenant_table_probes_past_collisions_and_survives_overflow() {
        let t = TenantTable::default();
        // 0 and 64 collide on the same start slot; probing separates them.
        assert!(t.slot(0).is_some());
        assert!(t.slot(64).is_some());
        t.slot(64).unwrap().reads.fetch_add(1, Ordering::Relaxed);
        assert_eq!(t.slot(0).unwrap().reads.load(Ordering::Relaxed), 0);
        // The sentinel job id cannot be tracked; everything else up to the
        // table size can, and overflow degrades to None, not a panic.
        assert!(t.slot(u64::MAX).is_none());
        // 0 and 64 already hold two of the 64 slots; 62 more jobs fill it.
        for job in 1..63 {
            assert!(t.slot(job).is_some(), "job {job}");
        }
        assert!(t.slot(1000).is_none(), "table full");
        assert_eq!(t.snapshot().len(), 64);
    }

    #[test]
    fn hit_rate_of_idle_server_is_zero() {
        assert_eq!(ServerMetricsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn client_metrics_snapshot() {
        let c = ClientMetrics::default();
        c.opens.fetch_add(2, Ordering::Relaxed);
        c.bytes.fetch_add(100, Ordering::Relaxed);
        let (opens, reads, bytes, closes, failovers, passthrough) = c.snapshot();
        assert_eq!(
            (opens, reads, bytes, closes, failovers, passthrough),
            (2, 0, 100, 0, 0, 0)
        );
    }

    #[test]
    fn client_resilience_counters_appear_in_full_snapshot() {
        let c = ClientMetrics::default();
        c.timeouts.fetch_add(3, Ordering::Relaxed);
        c.retries.fetch_add(2, Ordering::Relaxed);
        c.breaker_trips.fetch_add(1, Ordering::Relaxed);
        c.breaker_skips.fetch_add(5, Ordering::Relaxed);
        c.degraded_reads.fetch_add(4, Ordering::Relaxed);
        let s = c.full_snapshot();
        assert_eq!(s.timeouts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_skips, 5);
        assert_eq!(s.degraded_reads, 4);
        // The legacy tuple is unchanged by resilience traffic.
        assert_eq!(c.snapshot(), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn hedge_and_repair_counters_flow_through_snapshots() {
        let c = ClientMetrics::default();
        c.hedges.fetch_add(6, Ordering::Relaxed);
        c.hedge_wins.fetch_add(2, Ordering::Relaxed);
        let s = c.full_snapshot();
        assert_eq!((s.hedges, s.hedge_wins), (6, 2));
        assert_eq!(c.snapshot(), (0, 0, 0, 0, 0, 0));

        let m = ServerMetrics::default();
        m.repaired_files.fetch_add(3, Ordering::Relaxed);
        m.repaired_bytes.fetch_add(768, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!((snap.repaired_files, snap.repaired_bytes), (3, 768));
        let mut agg = ServerMetricsSnapshot::default();
        agg.merge(&snap);
        agg.merge(&snap);
        assert_eq!((agg.repaired_files, agg.repaired_bytes), (6, 1536));
    }
}
