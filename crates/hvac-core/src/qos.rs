//! Per-tenant QoS: weighted-fair scheduling and admission control for the
//! server's device read path.
//!
//! One misbehaving job issuing unbounded reads can monopolize a node's NVMe
//! queue and wreck its neighbours' tail latency. [`TenantScheduler`] puts a
//! deficit-round-robin (DRR) scheduler in front of the device: each tenant
//! has a FIFO of waiting reads and a *deficit* that is replenished by
//! `quantum × weight` whenever the scheduler's cursor reaches it, so over
//! time tenants receive device service proportional to their configured
//! weights regardless of how fast they submit.
//!
//! Admission control backs the scheduler: a tenant whose queue is already
//! at its (weight-scaled) depth cap is not enqueued at all — the caller is
//! told to *shed* the read to the PFS degradation ladder (the same
//! "serve it, just not from the cache" semantics the cache uses for
//! unadmittable files). Shedding keeps the scheduler's backlog — and thus
//! every well-behaved tenant's worst-case wait — bounded.
//!
//! With an empty [`JobWeights`] plan the scheduler is a pass-through: every
//! read is admitted immediately and nothing is queued, which keeps the
//! single-tenant fast path allocation- and contention-free.
//!
//! **Locking.** All state sits under one `SERVER_SCHED` mutex. The guard is
//! always dropped before a waiter blocks on its grant channel (tickets
//! carry a per-waiter bounded(1) channel), so the lock is held only for
//! pointer-sized bookkeeping and never across a wait.

use hvac_sync::{classes, OrderedMutex};
use hvac_types::{JobId, JobWeights};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Safety net for a lost grant: a waiter never blocks longer than this —
/// after the timeout it proceeds as if granted (without holding a slot), so
/// a scheduler bug degrades to "no QoS" instead of a hung read.
const GRANT_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs of the [`TenantScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosOptions {
    /// Reads allowed on the device path concurrently (scheduler-wide).
    pub max_inflight: usize,
    /// Per-unit-weight queue depth cap; a tenant's cap is
    /// `ceil(queue_cap × weight)`, at least 1. Beyond it, reads are shed.
    pub queue_cap: usize,
    /// DRR replenishment quantum in bytes per cursor visit.
    pub quantum: u64,
}

impl Default for QosOptions {
    fn default() -> Self {
        Self {
            max_inflight: 4,
            queue_cap: 16,
            quantum: 256 * 1024,
        }
    }
}

struct Ticket {
    cost: u64,
    tx: crossbeam::channel::Sender<()>,
}

struct TenantQueue {
    weight: f64,
    deficit: f64,
    /// Whether the next cursor arrival should replenish the deficit
    /// (exactly once per arrival — classic DRR).
    replenish: bool,
    queue: VecDeque<Ticket>,
}

#[derive(Default)]
struct SchedInner {
    tenants: HashMap<u64, TenantQueue>,
    /// Round-robin visit order (jobs in first-seen order).
    order: Vec<u64>,
    cursor: usize,
    inflight: usize,
}

/// Weighted-fair admission gate for the device read path.
pub struct TenantScheduler {
    inner: OrderedMutex<SchedInner>,
    weights: JobWeights,
    opts: QosOptions,
}

/// Outcome of [`TenantScheduler::admit`].
pub enum Admit<'a> {
    /// Proceed on the cache/device read path; dropping the grant frees the
    /// slot and wakes the next queued read.
    Granted(AdmitGrant<'a>),
    /// The tenant's queue is at its depth cap: serve this read through the
    /// PFS degradation ladder instead.
    Shed,
}

impl Admit<'_> {
    /// Whether this decision admitted the read.
    pub fn is_granted(&self) -> bool {
        matches!(self, Admit::Granted(_))
    }
}

/// An admitted read's slot; freed on drop.
pub struct AdmitGrant<'a> {
    sched: &'a TenantScheduler,
    /// Whether this grant holds an inflight slot (false for pass-through
    /// grants and for waiters that timed out and barged ahead).
    counted: bool,
}

impl Drop for AdmitGrant<'_> {
    fn drop(&mut self) {
        if self.counted {
            self.sched.release();
        }
    }
}

impl TenantScheduler {
    /// A scheduler over a weights plan with default tuning. An empty plan
    /// yields a pass-through scheduler (QoS off).
    pub fn new(weights: JobWeights) -> Self {
        Self::with_options(weights, QosOptions::default())
    }

    /// A scheduler with explicit tuning.
    pub fn with_options(weights: JobWeights, opts: QosOptions) -> Self {
        Self {
            inner: OrderedMutex::new(classes::SERVER_SCHED, SchedInner::default()),
            weights,
            opts,
        }
    }

    /// Whether QoS is active (a non-empty weights plan was configured).
    pub fn enabled(&self) -> bool {
        !self.weights.is_empty()
    }

    /// The weights plan this scheduler enforces.
    pub fn weights(&self) -> &JobWeights {
        &self.weights
    }

    /// Ask to run a read of `cost` bytes for `job`. Either blocks until the
    /// DRR scheduler grants a device slot, or returns [`Admit::Shed`] when
    /// the tenant's queue is already at its cap. Pass-through (QoS off)
    /// admits immediately.
    pub fn admit(&self, job: JobId, cost: u64) -> Admit<'_> {
        if !self.enabled() {
            return Admit::Granted(AdmitGrant {
                sched: self,
                counted: false,
            });
        }
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let weight = self.weights.weight_of(job.0);
            let cap = ((self.opts.queue_cap as f64 * weight).ceil() as usize).max(1);
            let q = match inner.tenants.entry(job.0) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    inner.order.push(job.0);
                    v.insert(TenantQueue {
                        weight,
                        deficit: 0.0,
                        replenish: true,
                        queue: VecDeque::new(),
                    })
                }
            };
            if q.queue.len() >= cap {
                return Admit::Shed;
            }
            q.queue.push_back(Ticket { cost, tx });
            self.grant_locked(inner);
        }
        // Guard dropped: block on the grant channel, never under the lock.
        match rx.recv_timeout(GRANT_TIMEOUT) {
            Ok(()) => Admit::Granted(AdmitGrant {
                sched: self,
                counted: true,
            }),
            // Lost ticket (should not happen): proceed without a slot. The
            // scheduler skips our ticket when it finally pops it, because
            // the send fails on the dropped receiver.
            Err(_) => Admit::Granted(AdmitGrant {
                sched: self,
                counted: false,
            }),
        }
    }

    fn release(&self) {
        let mut inner = self.inner.lock();
        inner.inflight = inner.inflight.saturating_sub(1);
        self.grant_locked(&mut inner);
    }

    /// Grant device slots to queued tickets, deficit-round-robin. Called
    /// with the scheduler lock held; never blocks.
    fn grant_locked(&self, inner: &mut SchedInner) {
        let max = self.opts.max_inflight;
        'slots: while inner.inflight < max {
            let n = inner.order.len();
            if n == 0 {
                return;
            }
            let mut empties = 0; // consecutive empty queues seen
            let mut moves = 0; // cursor advances without a grant
            loop {
                if empties >= n {
                    return; // nothing queued anywhere
                }
                let job = inner.order[inner.cursor % n];
                // `order` and `tenants` are inserted together; a missing
                // entry degrades to an empty queue rather than a panic.
                let Some(q) = inner.tenants.get_mut(&job) else {
                    inner.cursor = (inner.cursor + 1) % n;
                    empties += 1;
                    continue;
                };
                let Some(front_cost) = q.queue.front().map(|t| t.cost as f64) else {
                    q.deficit = 0.0;
                    q.replenish = true;
                    inner.cursor = (inner.cursor + 1) % n;
                    empties += 1;
                    continue;
                };
                empties = 0;
                if q.replenish {
                    q.deficit += self.opts.quantum as f64 * q.weight;
                    q.replenish = false;
                }
                // Work conservation: an idle scheduler serves the first
                // queued tenant even before its deficit covers a big read.
                let force = inner.inflight == 0 && moves >= n;
                if q.deficit >= front_cost || force {
                    if let Some(t) = q.queue.pop_front() {
                        q.deficit = (q.deficit - front_cost).max(0.0);
                        if t.tx.send(()).is_ok() {
                            inner.inflight += 1;
                        }
                    }
                    // A failed send is a departed waiter: its slot is not
                    // consumed and the loop keeps granting.
                    continue 'slots;
                }
                q.replenish = true;
                inner.cursor = (inner.cursor + 1) % n;
                moves += 1;
                if moves > 64 * n && inner.inflight > 0 {
                    // A giant read's deficit keeps building on later
                    // releases instead of spinning here.
                    return;
                }
            }
        }
    }

    /// Reads currently holding device slots.
    pub fn inflight(&self) -> usize {
        self.inner.lock().inflight
    }

    /// Reads queued (admitted but not yet granted) for `job`.
    pub fn queued(&self, job: JobId) -> usize {
        self.inner
            .lock()
            .tenants
            .get(&job.0)
            .map_or(0, |q| q.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sched(plan: &str, opts: QosOptions) -> Arc<TenantScheduler> {
        Arc::new(TenantScheduler::with_options(
            JobWeights::parse(plan).unwrap(),
            opts,
        ))
    }

    #[test]
    fn empty_plan_is_a_pass_through() {
        let s = TenantScheduler::new(JobWeights::default());
        assert!(!s.enabled());
        for job in [0u64, 1, 2] {
            let g = s.admit(JobId(job), 1 << 20);
            assert!(g.is_granted());
            drop(g);
        }
        assert_eq!(s.inflight(), 0, "pass-through holds no slots");
    }

    #[test]
    fn queue_cap_sheds_the_overflowing_tenant_only() {
        let s = sched(
            "1=1,2=1",
            QosOptions {
                max_inflight: 1,
                queue_cap: 2,
                quantum: 1024,
            },
        );
        // Take the only slot and hold it.
        let held = match s.admit(JobId(1), 100) {
            Admit::Granted(g) => g,
            Admit::Shed => panic!("idle scheduler must grant"),
        };
        // Fill tenant 2's queue to its cap with blocked waiters.
        let mut joins = Vec::new();
        for _ in 0..2 {
            let s2 = s.clone();
            joins.push(std::thread::spawn(move || {
                assert!(s2.admit(JobId(2), 100).is_granted());
            }));
        }
        while s.queued(JobId(2)) < 2 {
            std::thread::yield_now();
        }
        // Tenant 2 is at cap: shed. Tenant 1's queue is empty: admitted.
        assert!(matches!(s.admit(JobId(2), 100), Admit::Shed));
        let s3 = s.clone();
        let t1 = std::thread::spawn(move || assert!(s3.admit(JobId(1), 100).is_granted()));
        while s.queued(JobId(1)) < 1 {
            std::thread::yield_now();
        }
        drop(held); // free the slot; everything queued drains
        t1.join().unwrap();
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn drr_serves_tenants_in_proportion_to_their_weights() {
        let quantum = 1024u64;
        let s = sched(
            "1=4,2=1",
            QosOptions {
                max_inflight: 1,
                queue_cap: 64,
                quantum,
            },
        );
        // Plug the only slot so both tenants build a full backlog before
        // any scheduling happens — the drain order is then pure DRR.
        let plug = match s.admit(JobId(1), quantum) {
            Admit::Granted(g) => g,
            Admit::Shed => panic!("idle scheduler must grant"),
        };
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<u64>();
        let mut joins = Vec::new();
        for job in [1u64, 2] {
            for _ in 0..10 {
                let s2 = s.clone();
                let tx = done_tx.clone();
                joins.push(std::thread::spawn(move || {
                    match s2.admit(JobId(job), quantum) {
                        Admit::Granted(g) => {
                            // Record the grant order while holding the slot:
                            // max_inflight=1 serializes this section.
                            tx.send(job).unwrap();
                            drop(g);
                        }
                        Admit::Shed => panic!("under cap, never shed"),
                    }
                }));
            }
        }
        while s.queued(JobId(1)) < 10 || s.queued(JobId(2)) < 10 {
            std::thread::yield_now();
        }
        drop(plug);
        for j in joins {
            j.join().unwrap();
        }
        let mut order = Vec::new();
        while let Ok(job) = done_rx.try_recv() {
            order.push(job);
        }
        assert_eq!(order.len(), 20);
        // Every ticket costs exactly one quantum, so weight 4 buys four
        // grants per cursor round against one: the heavy tenant dominates
        // the head of the drain and the light one inevitably closes it.
        let j1_early = order[..10].iter().filter(|&&j| j == 1).count();
        assert!(
            j1_early >= 7,
            "weight-4 tenant got only {j1_early}/10 early grants ({order:?})"
        );
        assert_eq!(*order.last().unwrap(), 2, "light tenant finishes last");
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn a_read_bigger_than_the_quantum_is_still_served() {
        let s = sched(
            "1=1",
            QosOptions {
                max_inflight: 2,
                queue_cap: 4,
                quantum: 16,
            },
        );
        // Cost ≫ quantum: work conservation must grant it anyway.
        let g = s.admit(JobId(1), 1 << 30);
        assert!(g.is_granted());
        assert_eq!(s.inflight(), 1);
        drop(g);
        assert_eq!(s.inflight(), 0);
    }
}
