//! The per-node cache manager.
//!
//! [`CacheManager`] owns the node's [`LocalStore`] plus an eviction policy
//! and keeps them consistent: an insert that does not fit evicts victims
//! until it does (or fails if the file can never fit), every store mutation
//! is mirrored into the policy, and eviction counts flow into the server
//! metrics.
//!
//! One `CacheManager` is shared by all HVAC server *instances* on a node —
//! the instances have separate request queues and data movers (that is what
//! HVAC (2×1)/(4×1) vary), but there is one NVMe device per node.

use crate::eviction::EvictionPolicy;
use bytes::Bytes;
use hvac_hash::pathhash::split_tenant_key;
use hvac_storage::{LocalStore, TenantUsage};
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{ByteSize, HvacError, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of [`CacheManager::insert`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InsertOutcome {
    /// Files evicted to make room (empty in the common case).
    pub evicted: Vec<PathBuf>,
}

/// Thread-safe cache state of one node.
pub struct CacheManager {
    store: LocalStore,
    policy: OrderedMutex<Box<dyn EvictionPolicy>>,
    evictions: AtomicU64,
}

impl CacheManager {
    /// Wrap a store and a policy.
    pub fn new(store: LocalStore, policy: Box<dyn EvictionPolicy>) -> Self {
        Self {
            store,
            policy: OrderedMutex::new(classes::CACHE_POLICY, policy),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying store (read-only observations).
    pub fn store(&self) -> &LocalStore {
        &self.store
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Insert `data` for `path`, evicting as needed.
    ///
    /// Eviction is tenant-isolated: a tenant pushing past its own quota
    /// evicts only its own keys (a tenant at quota can never displace a
    /// neighbour's resident entries), while genuine global pressure shrinks
    /// tenants in proportion to their quota share — the tenant furthest
    /// over its share loses first.
    ///
    /// Fails with [`HvacError::CapacityExhausted`] only when the file is
    /// larger than the whole device or the tenant's quota — the paper's
    /// expectation is that real datasets never outgrow the *aggregate*
    /// allocation capacity (§III-G), but a single node can still churn.
    pub fn insert(&self, path: &Path, data: Bytes) -> Result<InsertOutcome> {
        let size = ByteSize(data.len() as u64);
        if !self.store.can_ever_fit(size) {
            return Err(HvacError::CapacityExhausted {
                requested: size.bytes(),
                capacity: self.store.capacity().bytes(),
            });
        }
        let job = split_tenant_key(path).0;
        if let Some(q) = self.store.tenant_quota(job) {
            if size.bytes() > q.bytes() {
                return Err(HvacError::CapacityExhausted {
                    requested: size.bytes(),
                    capacity: q.bytes(),
                });
            }
        }
        let mut policy = self.policy.lock();
        let mut outcome = InsertOutcome::default();
        // Evict until the insert fits. Holding the policy lock serializes
        // concurrent inserts, so capacity race retries are bounded.
        loop {
            // Replacing `path` frees its old bytes first, so only the delta
            // counts against the tenant's line.
            let existing = self.store.size_of(path).unwrap_or(ByteSize::ZERO);
            let incoming = ByteSize(size.bytes().saturating_sub(existing.bytes()));
            if self.store.tenant_over_quota(job, incoming) {
                // Quota pressure: the offending tenant pays for itself.
                let own = |k: &Path| split_tenant_key(k).0 == job && k != path;
                let victim = policy
                    .victim_where(&own)
                    .ok_or(HvacError::CapacityExhausted {
                        requested: size.bytes(),
                        capacity: self
                            .store
                            .tenant_quota(job)
                            .unwrap_or_else(|| self.store.capacity())
                            .bytes(),
                    })?;
                self.evict(&mut policy, &victim, &mut outcome);
                continue;
            }
            match self.store.insert(path, data.clone()) {
                // lockgraph: acquires STORE_SHARD
                Ok(()) => {
                    policy.on_insert(path);
                    return Ok(outcome);
                }
                Err(HvacError::CapacityExhausted { .. }) => {
                    let victim = self.pressure_victim(&mut policy, path).ok_or(
                        HvacError::CapacityExhausted {
                            requested: size.bytes(),
                            capacity: self.store.capacity().bytes(),
                        },
                    )?;
                    // Never evict the path we are inserting (re-insert case).
                    if victim == path {
                        policy.on_remove(&victim);
                        continue;
                    }
                    self.evict(&mut policy, &victim, &mut outcome);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Drop one victim from both the store and the policy, recording it.
    fn evict(
        &self,
        policy: &mut Box<dyn EvictionPolicy>,
        victim: &Path,
        outcome: &mut InsertOutcome,
    ) {
        self.store.remove(victim); // lockgraph: acquires STORE_SHARD
        policy.on_remove(victim);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        outcome.evicted.push(victim.to_path_buf());
    }

    /// Under global pressure, pick the next victim: tenants shrink in
    /// proportion to their quota share, so the tenant furthest over its
    /// share (unlimited tenants are measured against whole-device capacity)
    /// loses first; the policy keeps its own preference order *within* the
    /// chosen tenant. Falls back to the policy's unrestricted choice if no
    /// per-tenant search yields a victim.
    fn pressure_victim(
        &self,
        policy: &mut Box<dyn EvictionPolicy>,
        inserting: &Path,
    ) -> Option<PathBuf> {
        let cap = self.store.capacity().bytes().max(1) as f64;
        let share = |u: &TenantUsage| {
            u.used.bytes() as f64 / u.quota.map_or(cap, |q| q.bytes().max(1) as f64)
        };
        let mut usage = self.store.tenant_usage();
        usage.retain(|u| u.resident > 0);
        usage.sort_by(|a, b| {
            share(b)
                .partial_cmp(&share(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for u in &usage {
            let job = u.job;
            let in_tenant = |k: &Path| split_tenant_key(k).0 == job && k != inserting;
            if let Some(v) = policy.victim_where(&in_tenant) {
                return Some(v);
            }
        }
        policy.victim()
    }

    /// Whether `path` is resident.
    pub fn contains(&self, path: &Path) -> bool {
        self.store.contains(path)
    }

    /// Size of a resident file.
    pub fn size_of(&self, path: &Path) -> Option<ByteSize> {
        self.store.size_of(path)
    }

    /// Read a byte range of a resident file, updating recency. `None` = miss.
    pub fn read_at(&self, path: &Path, offset: u64, len: usize) -> Option<Bytes> {
        let out = self.store.read_at(path, offset, len)?;
        self.policy.lock().on_access(path);
        Some(out)
    }

    /// Read a whole resident file, updating recency. `None` = miss.
    pub fn read_all(&self, path: &Path) -> Option<Bytes> {
        let out = self.store.get(path)?;
        self.policy.lock().on_access(path);
        Some(out)
    }

    /// Explicitly drop one file.
    pub fn remove(&self, path: &Path) -> ByteSize {
        let freed = self.store.remove(path);
        self.policy.lock().on_remove(path);
        freed
    }

    /// Job teardown: drop everything.
    pub fn purge(&self) {
        let mut policy = self.policy.lock();
        for p in self.store.resident_paths() {
            // lockgraph: acquires STORE_SHARD
            policy.on_remove(&p);
        }
        self.store.purge(); // lockgraph: acquires STORE_SHARD
    }

    /// Files currently resident.
    pub fn resident_count(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{make_policy, FifoPolicy, LruPolicy};
    use hvac_types::EvictionPolicyKind;

    fn mgr(cap: u64, policy: Box<dyn EvictionPolicy>) -> CacheManager {
        CacheManager::new(LocalStore::in_memory(ByteSize(cap)), policy)
    }

    fn blob(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn insert_and_read_back() {
        let m = mgr(100, Box::new(FifoPolicy::new()));
        let p = Path::new("/a");
        let out = m.insert(p, blob(10, 1)).unwrap();
        assert!(out.evicted.is_empty());
        assert!(m.contains(p));
        assert_eq!(m.size_of(p), Some(ByteSize(10)));
        assert_eq!(m.read_all(p).unwrap().len(), 10);
        assert_eq!(m.read_at(p, 5, 100).unwrap().len(), 5);
        assert_eq!(m.read_all(Path::new("/nope")), None);
    }

    #[test]
    fn eviction_makes_room_fifo_order() {
        let m = mgr(30, Box::new(FifoPolicy::new()));
        m.insert(Path::new("/a"), blob(10, 1)).unwrap();
        m.insert(Path::new("/b"), blob(10, 2)).unwrap();
        m.insert(Path::new("/c"), blob(10, 3)).unwrap();
        // Full. Inserting /d (20 bytes) must evict /a then /b.
        let out = m.insert(Path::new("/d"), blob(20, 4)).unwrap();
        assert_eq!(out.evicted, vec![PathBuf::from("/a"), PathBuf::from("/b")]);
        assert_eq!(m.evictions(), 2);
        assert!(!m.contains(Path::new("/a")));
        assert!(m.contains(Path::new("/c")));
        assert!(m.contains(Path::new("/d")));
        assert_eq!(m.store().used(), ByteSize(30));
    }

    #[test]
    fn lru_eviction_prefers_cold_files() {
        let m = mgr(30, Box::new(LruPolicy::new()));
        m.insert(Path::new("/a"), blob(10, 1)).unwrap();
        m.insert(Path::new("/b"), blob(10, 2)).unwrap();
        m.insert(Path::new("/c"), blob(10, 3)).unwrap();
        m.read_all(Path::new("/a")).unwrap(); // warm /a; /b is coldest
        let out = m.insert(Path::new("/d"), blob(10, 4)).unwrap();
        assert_eq!(out.evicted, vec![PathBuf::from("/b")]);
    }

    #[test]
    fn oversized_file_fails_cleanly() {
        let m = mgr(10, Box::new(FifoPolicy::new()));
        m.insert(Path::new("/a"), blob(5, 1)).unwrap();
        let err = m.insert(Path::new("/huge"), blob(11, 2)).unwrap_err();
        assert!(matches!(err, HvacError::CapacityExhausted { .. }));
        // Nothing was evicted for a hopeless insert.
        assert!(m.contains(Path::new("/a")));
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn purge_resets_everything() {
        let m = mgr(100, make_policy(EvictionPolicyKind::Random, 1));
        for i in 0..5 {
            m.insert(Path::new(&format!("/f{i}")), blob(10, i as u8))
                .unwrap();
        }
        m.purge();
        assert_eq!(m.resident_count(), 0);
        assert_eq!(m.store().used(), ByteSize::ZERO);
        // Policy is empty too: inserting one file then filling evicts it, not
        // a stale pre-purge path.
        m.insert(Path::new("/new"), blob(10, 9)).unwrap();
        assert_eq!(m.resident_count(), 1);
    }

    #[test]
    fn random_policy_never_loses_capacity_under_churn() {
        let m = mgr(1_000, make_policy(EvictionPolicyKind::Random, 42));
        for i in 0..500 {
            let p = PathBuf::from(format!("/churn/{i}"));
            m.insert(&p, blob(97, (i % 251) as u8)).unwrap();
            assert!(m.store().used().bytes() <= 1_000);
        }
        // Store stays maximally packed: 10 files of 97 bytes fit in 1000.
        assert_eq!(m.resident_count(), 10);
        assert_eq!(m.evictions(), 490);
    }

    #[test]
    fn reinsert_same_path_does_not_self_evict_loop() {
        let m = mgr(10, Box::new(FifoPolicy::new()));
        m.insert(Path::new("/a"), blob(10, 1)).unwrap();
        // Replacing /a with an equal-size blob must succeed without errors.
        m.insert(Path::new("/a"), blob(10, 2)).unwrap();
        assert_eq!(m.read_all(Path::new("/a")).unwrap()[0], 2);
        assert_eq!(m.resident_count(), 1);
    }

    #[test]
    fn quota_pressure_evicts_only_the_offending_tenant() {
        use hvac_hash::pathhash::tenant_key;
        use hvac_types::JobId;
        let m = mgr(100, Box::new(FifoPolicy::new()));
        m.store().set_tenant_quota(JobId(1), Some(ByteSize(30)));
        let k = |job: u64, name: &str| tenant_key(JobId(job), Path::new(name));
        for i in 0..3 {
            m.insert(&k(1, &format!("/f{i}")), blob(10, i as u8))
                .unwrap();
        }
        m.insert(&k(2, "/g"), blob(10, 9)).unwrap();
        m.insert(Path::new("/legacy"), blob(10, 8)).unwrap();
        // Tenant 1 is at quota: one more insert evicts its own oldest file
        // and nobody else's, even though the device has plenty of room.
        let out = m.insert(&k(1, "/f3"), blob(10, 3)).unwrap();
        assert_eq!(out.evicted, vec![k(1, "/f0")]);
        assert!(m.contains(&k(2, "/g")));
        assert!(m.contains(Path::new("/legacy")));
        assert_eq!(m.store().tenant_used(JobId(1)), ByteSize(30));
        // A single file larger than the quota can never fit.
        let err = m.insert(&k(1, "/huge"), blob(31, 0)).unwrap_err();
        assert!(matches!(
            err,
            HvacError::CapacityExhausted { capacity: 30, .. }
        ));
        // ... and nothing was evicted for the hopeless attempt.
        assert_eq!(m.store().tenant_used(JobId(1)), ByteSize(30));
    }

    #[test]
    fn global_pressure_shrinks_the_most_over_share_tenant() {
        use hvac_hash::pathhash::tenant_key;
        use hvac_types::JobId;
        let m = mgr(100, Box::new(FifoPolicy::new()));
        m.store().set_tenant_quota(JobId(1), Some(ByteSize(50)));
        m.store().set_tenant_quota(JobId(2), Some(ByteSize(50)));
        let k = |job: u64, name: &str| tenant_key(JobId(job), Path::new(name));
        for i in 0..5 {
            m.insert(&k(1, &format!("/a{i}")), blob(10, 1)).unwrap();
        }
        for i in 0..3 {
            m.insert(&k(2, &format!("/b{i}")), blob(10, 2)).unwrap();
        }
        m.insert(Path::new("/l0"), blob(10, 3)).unwrap();
        m.insert(Path::new("/l1"), blob(10, 3)).unwrap();
        assert_eq!(m.store().used(), ByteSize(100), "device full");
        // Job 2 is inside its own quota, so this is global pressure; job 1
        // sits at 100% of its share (vs 60% and 20%) and pays first.
        let out = m.insert(&k(2, "/b3"), blob(10, 2)).unwrap();
        assert_eq!(out.evicted, vec![k(1, "/a0")]);
        assert_eq!(m.store().tenant_used(JobId(1)), ByteSize(40));
        assert_eq!(m.store().tenant_used(JobId(2)), ByteSize(40));
        assert_eq!(m.store().tenant_used(JobId::DEFAULT), ByteSize(20));
    }

    #[test]
    fn concurrent_inserts_stay_within_capacity() {
        use std::sync::Arc;
        let m = Arc::new(mgr(500, make_policy(EvictionPolicyKind::Random, 7)));
        let mut joins = Vec::new();
        for t in 0..4 {
            let m = m.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..100 {
                    m.insert(Path::new(&format!("/t{t}/f{i}")), blob(50, 1))
                        .unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(m.store().used().bytes() <= 500);
        assert_eq!(m.resident_count(), 10);
    }
}
