//! # HVAC — High-Velocity AI Cache
//!
//! A Rust implementation of the distributed read-only cache described in
//! *"HVAC: Removing I/O Bottleneck for Large-Scale Deep Learning
//! Applications"* (Khan et al., IEEE CLUSTER 2022).
//!
//! Deep-learning training re-reads an immutable dataset every epoch in a
//! shuffled order. At supercomputer scale that access pattern crushes the
//! shared parallel file system's metadata servers. HVAC interposes on the
//! POSIX `<open, read, close>` calls of the training processes and serves
//! them from an aggregate cache built over the *node-local* NVMe drives of
//! the job's own allocation:
//!
//! * every file has exactly one **home server**, computed by hashing its path
//!   — no metadata service, no lookup broadcast (paper §III-E);
//! * on the first read the home server's **data-mover thread** copies the
//!   file from the PFS into node-local storage, deduplicating concurrent
//!   requests (§III-D);
//! * every later read — from any node — is served from NVMe over RPC with
//!   bulk transfer, never touching the PFS again;
//! * the cache lives and dies with the job (§III-C) and is strictly
//!   **read-only** (§III: no write support means no locking, no consistency
//!   metadata).
//!
//! ## Crate layout
//!
//! * [`protocol`] — the client↔server wire protocol,
//! * [`eviction`] — Random (paper default), FIFO, LRU, LFU policies,
//! * [`cache`] — the per-node cache manager (capacity + eviction + metrics),
//! * [`server`] — the HVAC server instance: RPC handlers, shared FIFO queue,
//!   data movers,
//! * [`client`] — the HVAC client: fd table, dataset-dir interception,
//!   placement, fail-over,
//! * [`cluster`] — an in-process multi-node harness wiring clients, servers,
//!   a fabric and a PFS together (the functional stand-in for a Summit
//!   allocation), now with elastic membership (`add_node`/`remove_node`),
//! * [`view`] — the epoch-versioned [`ClusterView`](hvac_types::ClusterView)
//!   handle every client and server resolves ownership through,
//! * [`rebalance`] — the background migrator that moves the minority of
//!   cached files whose home changed across a view change,
//! * [`repair`] — the anti-entropy scrubber that re-clones under-replicated
//!   entries after a node crash-stops (hottest files first),
//! * [`metrics`] — counters that make cache behaviour observable,
//! * [`intercept`] — path classification shared with the `LD_PRELOAD` shim.
//!
//! ## Quick start
//!
//! ```
//! use hvac_core::cluster::{Cluster, ClusterOptions};
//! use hvac_pfs::{FileStore, MemStore};
//! use std::path::Path;
//! use std::sync::Arc;
//!
//! // A "GPFS" holding a tiny dataset.
//! let pfs = Arc::new(MemStore::new());
//! pfs.synthesize_dataset(Path::new("/gpfs/train"), 32, |_| 1024);
//!
//! // A 4-node allocation running 1 HVAC server instance per node.
//! let cluster = Cluster::new(
//!     pfs.clone(),
//!     ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
//! )
//! .unwrap();
//!
//! // Rank 0 reads a file twice: first epoch misses (PFS copy), second hits.
//! let client = cluster.client(0);
//! let path = Path::new("/gpfs/train/sample_00000007.bin");
//! let first = client.read_file(path).unwrap();
//! let again = client.read_file(path).unwrap();
//! assert_eq!(first, again);
//! let (_, pfs_reads, _) = pfs.stats().snapshot();
//! assert_eq!(pfs_reads, 1); // the PFS was touched exactly once
//! ```

pub mod cache;
pub mod client;
pub mod cluster;
pub mod eviction;
pub mod intercept;
pub mod metrics;
pub mod protocol;
pub mod qos;
pub mod rebalance;
pub mod repair;
pub mod server;
pub mod view;

pub use cache::CacheManager;
pub use client::{HvacClient, HvacClientOptions};
pub use cluster::{Cluster, ClusterOptions};
pub use eviction::{make_policy, EvictionPolicy};
pub use metrics::{ClientMetrics, ServerMetrics};
pub use qos::{Admit, QosOptions, TenantScheduler};
pub use rebalance::RebalanceReport;
pub use repair::RepairReport;
pub use server::{HvacServer, HvacServerOptions};
pub use view::ViewHandle;
