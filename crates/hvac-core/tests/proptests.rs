//! Property-based tests for hvac-core: protocol totality, eviction-policy
//! invariants under arbitrary operation sequences, cache capacity safety.

use bytes::Bytes;
use hvac_core::cache::CacheManager;
use hvac_core::eviction::make_policy;
use hvac_core::intercept::{normalize, DatasetMatcher};
use hvac_core::protocol::{Request, Response};
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, EvictionPolicyKind};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn arb_path() -> impl Strategy<Value = PathBuf> {
    "[a-zA-Z0-9_./ -]{1,64}".prop_map(|s| PathBuf::from(format!("/{s}")))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_path().prop_map(|path| Request::Stat { path }),
        (arb_path(), any::<u64>(), any::<u64>()).prop_map(|(path, offset, len)| Request::Read {
            path,
            offset,
            len
        }),
        arb_path().prop_map(|path| Request::Close { path }),
        Just(Request::Purge),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|size| Response::Stat { size }),
        (any::<u64>(), any::<bool>()).prop_map(|(total_size, cache_hit)| Response::Data {
            total_size,
            cache_hit
        }),
        Just(Response::Ok),
        (any::<i32>(), "[ -~]{0,80}").prop_map(|(code, message)| Response::Err { code, message }),
    ]
}

proptest! {
    #[test]
    fn request_codec_round_trips(req in arb_request()) {
        let encoded = req.encode().unwrap();
        prop_assert_eq!(Request::decode(encoded).unwrap(), req);
    }

    #[test]
    fn response_codec_round_trips(resp in arb_response()) {
        let encoded = resp.encode();
        prop_assert_eq!(Response::decode(encoded).unwrap(), resp);
    }

    #[test]
    fn request_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Response::decode(Bytes::from(bytes));
    }

    /// Drive every policy with an arbitrary op sequence; the policy must
    /// stay consistent with a reference set of resident paths.
    #[test]
    fn eviction_policies_track_residency(
        ops in proptest::collection::vec((0u8..4, 0u8..32), 1..200),
        kind in prop_oneof![
            Just(EvictionPolicyKind::Random),
            Just(EvictionPolicyKind::Fifo),
            Just(EvictionPolicyKind::Lru),
            Just(EvictionPolicyKind::Lfu),
            Just(EvictionPolicyKind::MinIo),
        ],
    ) {
        let mut policy = make_policy(kind, 42);
        let mut resident: HashSet<PathBuf> = HashSet::new();
        for (op, file) in ops {
            let path = PathBuf::from(format!("/f/{file}"));
            match op {
                0 => {
                    policy.on_insert(&path);
                    resident.insert(path);
                }
                1 => {
                    policy.on_remove(&path);
                    resident.remove(&path);
                }
                2 => policy.on_access(&path),
                _ => {
                    match policy.victim() {
                        Some(v) => prop_assert!(
                            resident.contains(&v),
                            "{} chose non-resident victim {v:?}",
                            policy.name()
                        ),
                        None => prop_assert!(
                            resident.is_empty() || policy.name() == "minio",
                            "{} found no victim among {} resident",
                            policy.name(),
                            resident.len()
                        ),
                    }
                }
            }
            prop_assert_eq!(policy.len(), resident.len(), "{} len drift", policy.name());
        }
    }

    /// The cache never exceeds capacity, for any insert sequence.
    #[test]
    fn cache_capacity_is_inviolable(
        sizes in proptest::collection::vec(1usize..400, 1..60),
        kind in prop_oneof![
            Just(EvictionPolicyKind::Random),
            Just(EvictionPolicyKind::Fifo),
            Just(EvictionPolicyKind::Lru),
            Just(EvictionPolicyKind::Lfu),
        ],
    ) {
        let capacity = 1_000u64;
        let mgr = CacheManager::new(
            LocalStore::in_memory(ByteSize(capacity)),
            make_policy(kind, 3),
        );
        for (i, size) in sizes.iter().enumerate() {
            let path = PathBuf::from(format!("/p/{i}"));
            let result = mgr.insert(&path, Bytes::from(vec![0u8; *size]));
            if *size as u64 <= capacity {
                prop_assert!(result.is_ok(), "insert of {size} into {capacity} failed");
            } else {
                prop_assert!(result.is_err());
            }
            prop_assert!(mgr.store().used().bytes() <= capacity);
        }
    }

    #[test]
    fn normalize_is_idempotent(path in arb_path()) {
        let once = normalize(&path);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    #[test]
    fn matcher_accepts_children_rejects_siblings(
        root in "[a-z]{1,10}/[a-z]{1,10}",
        child in "[a-z0-9]{1,12}",
    ) {
        let m = DatasetMatcher::new(format!("/{root}"));
        let inside = format!("/{root}/{child}");
        let sibling = format!("/{root}sibling/{child}");
        let elsewhere = format!("/other/{child}");
        prop_assert!(m.matches(&inside));
        prop_assert!(!m.matches(&sibling));
        prop_assert!(!m.matches(&elsewhere));
    }
}

#[test]
fn matcher_handles_exact_root() {
    let m = DatasetMatcher::new("/data/set");
    assert!(m.matches(Path::new("/data/set")));
}
