//! Standalone HVAC cache server.
//!
//! Serves one [`hvac_core::HvacServer`] instance over a real socket (TCP or
//! Unix-domain) so clients in *other processes* can mount the cache — the
//! deployment shape of the paper, where one `hvac_server` runs per node of
//! the allocation (§III-B). The in-process `Cluster` harness remains the
//! test vehicle; this binary is the piece that escapes the process.
//!
//! Configuration comes from flags with environment fallbacks:
//!
//! | flag               | env                | default        |
//! |--------------------|--------------------|----------------|
//! | `--name NAME`      | `HVAC_SERVER_NAME` | `node0/srv0`   |
//! | `--listen URI`     | `HVAC_LISTEN`      | `tcp:127.0.0.1:0` (ephemeral) |
//! | `--root DIR`       | `HVAC_PFS_ROOT`    | *(required)*   |
//! | `--capacity-mib N` | `HVAC_CACHE_MIB`   | `1024`         |
//! | `--workers N`      | `HVAC_RPC_WORKERS` | `4`            |
//! | `--movers N`       | `HVAC_MOVERS`      | `1`            |
//! | `--job-weights S`  | `HVAC_JOB_WEIGHTS` | *(empty: QoS off)* |
//!
//! `--job-weights` takes a per-tenant fair-share plan in the
//! `job=weight[@quota]` grammar, e.g. `--job-weights 1=4,2=1@0.25`: job 1
//! gets 4× the device share of job 2, and job 2's cache quota is capped at
//! 25% of capacity. Zero or negative weights, quotas outside (0, 1], and
//! duplicate jobs are configuration errors (exit code 2).
//!
//! On startup the server prints one machine-readable line to stdout —
//! `HVAC_LISTEN <name> <uri>` — announcing the *actual* bound address
//! (meaningful when an ephemeral port was requested), then serves until
//! SIGTERM or SIGINT, shutting the endpoint down cleanly (listener closed,
//! in-flight workers joined, Unix socket file unlinked).

use hvac_core::{make_policy, CacheManager, HvacServer, HvacServerOptions};
use hvac_net::socket::{EndpointUri, SocketConfig, SocketFamily};
use hvac_net::Fabric;
use hvac_pfs::DirStore;
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, EvictionPolicyKind, HvacError, JobWeights, Result};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Flipped by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Async-signal-safe handler: a relaxed store is all that happens here.
extern "C" fn on_signal(_sig: libc::c_int) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Parsed command line (flags override environment, environment overrides
/// defaults).
struct ServerConfig {
    name: String,
    listen: String,
    root: String,
    capacity_mib: u64,
    workers: usize,
    movers: usize,
    job_weights: JobWeights,
}

/// One `--flag value` / env / default lookup.
fn setting(
    args: &[(String, String)],
    flag: &str,
    env: &str,
    default: Option<&str>,
) -> Result<Option<String>> {
    if let Some((_, v)) = args.iter().find(|(f, _)| f == flag) {
        return Ok(Some(v.clone()));
    }
    if let Ok(v) = std::env::var(env) {
        return Ok(Some(v));
    }
    Ok(default.map(str::to_string))
}

fn parse_config(argv: &[String]) -> Result<ServerConfig> {
    let mut args = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if !a.starts_with("--") {
            return Err(HvacError::InvalidConfig(format!(
                "unexpected argument {a:?} (flags are --name --listen --root --capacity-mib --workers --movers --job-weights)"
            )));
        }
        let Some(v) = it.next() else {
            return Err(HvacError::InvalidConfig(format!("flag {a} needs a value")));
        };
        args.push((a.clone(), v.clone()));
    }
    let known = [
        "--name",
        "--listen",
        "--root",
        "--capacity-mib",
        "--workers",
        "--movers",
        "--job-weights",
    ];
    if let Some((f, _)) = args.iter().find(|(f, _)| !known.contains(&f.as_str())) {
        return Err(HvacError::InvalidConfig(format!("unknown flag {f}")));
    }

    let name =
        setting(&args, "--name", "HVAC_SERVER_NAME", Some("node0/srv0"))?.unwrap_or_default();
    let listen =
        setting(&args, "--listen", "HVAC_LISTEN", Some("tcp:127.0.0.1:0"))?.unwrap_or_default();
    let Some(root) = setting(&args, "--root", "HVAC_PFS_ROOT", None)? else {
        return Err(HvacError::InvalidConfig(
            "no PFS root: pass --root DIR or set HVAC_PFS_ROOT".into(),
        ));
    };
    let parse_num = |key: &str, raw: String| -> Result<u64> {
        raw.parse::<u64>().map_err(|_| {
            HvacError::InvalidConfig(format!("{key} wants an unsigned integer, got {raw:?}"))
        })
    };
    let capacity_mib = match setting(&args, "--capacity-mib", "HVAC_CACHE_MIB", Some("1024"))? {
        Some(raw) => parse_num("--capacity-mib", raw)?,
        None => 1024,
    };
    let workers = match setting(&args, "--workers", "HVAC_RPC_WORKERS", Some("4"))? {
        Some(raw) => parse_num("--workers", raw)? as usize,
        None => 4,
    };
    let movers = match setting(&args, "--movers", "HVAC_MOVERS", Some("1"))? {
        Some(raw) => parse_num("--movers", raw)? as usize,
        None => 1,
    };
    // Reject malformed plans (zero/negative weights, quotas outside (0, 1],
    // duplicate jobs) here so they exit 2 like every other config error.
    let job_weights = match setting(&args, "--job-weights", "HVAC_JOB_WEIGHTS", None)? {
        Some(raw) => JobWeights::parse(&raw)?,
        None => JobWeights::default(),
    };
    Ok(ServerConfig {
        name,
        listen,
        root,
        capacity_mib,
        workers,
        movers,
        job_weights,
    })
}

fn run(config: ServerConfig) -> Result<()> {
    let listen = EndpointUri::parse(&config.listen)?;
    let family = match &listen {
        EndpointUri::Tcp(_) => SocketFamily::Tcp,
        EndpointUri::Unix(_) => SocketFamily::Unix,
    };
    let fabric = Arc::new(Fabric::socket_with(SocketConfig {
        family,
        ..SocketConfig::default()
    }));
    fabric.register_endpoint(&config.name, &config.listen)?;

    let pfs = Arc::new(DirStore::new(&config.root)?);
    let store = LocalStore::in_memory(ByteSize::mib(config.capacity_mib));
    store.set_tenant_quotas(&config.job_weights);
    let cache = Arc::new(CacheManager::new(
        store,
        make_policy(EvictionPolicyKind::Random, 0x4856_4143),
    ));
    let server = HvacServer::new(
        cache,
        pfs,
        HvacServerOptions {
            movers: config.movers,
            rpc_workers: config.workers,
            job_weights: config.job_weights.clone(),
            qos: Default::default(),
        },
        &config.name,
    )?;
    let endpoint = server.serve(&fabric, &config.name)?;

    let advertised = fabric.endpoint_uri(&config.name).ok_or_else(|| {
        HvacError::InvalidConfig(format!("endpoint {} vanished after serve", config.name))
    })?;
    // The one machine-readable line a supervisor (or the spawn test) waits
    // for; flushed so a pipe reader sees it immediately.
    {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "HVAC_LISTEN {} {advertised}", config.name);
        let _ = out.flush();
    }
    eprintln!(
        "hvac-server: {} serving {} at {advertised} ({} MiB cache, {} workers, {} movers, QoS {})",
        config.name,
        config.root,
        config.capacity_mib,
        config.workers,
        config.movers,
        if config.job_weights.is_empty() {
            "off".to_string()
        } else {
            format!("{} tenants", config.job_weights.shares.len())
        }
    );

    // SAFETY: `on_signal` only performs a relaxed atomic store, which is
    // async-signal-safe; `signal(2)` itself has no preconditions here.
    unsafe {
        libc::signal(libc::SIGTERM, on_signal as *const () as libc::sighandler_t);
        libc::signal(libc::SIGINT, on_signal as *const () as libc::sighandler_t);
    }
    while !SHUTDOWN.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("hvac-server: {} shutting down", config.name);
    drop(endpoint);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hvac-server: {e}");
            return ExitCode::from(2);
        }
    };
    match run(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hvac-server: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let c = parse_config(&argv(&["--root", "/tmp/pfs"])).unwrap();
        assert_eq!(c.name, "node0/srv0");
        assert_eq!(c.listen, "tcp:127.0.0.1:0");
        assert_eq!(c.root, "/tmp/pfs");
        assert_eq!((c.capacity_mib, c.workers, c.movers), (1024, 4, 1));
    }

    #[test]
    fn missing_root_and_bad_flags_are_config_errors() {
        assert!(parse_config(&argv(&[])).is_err());
        assert!(parse_config(&argv(&["--root"])).is_err());
        assert!(parse_config(&argv(&["--root", "/x", "--bogus", "1"])).is_err());
        assert!(parse_config(&argv(&["--root", "/x", "--workers", "lots"])).is_err());
        assert!(parse_config(&argv(&["stray"])).is_err());
    }

    #[test]
    fn job_weights_flag_parses_a_plan() {
        let c = parse_config(&argv(&["--root", "/x"])).unwrap();
        assert!(c.job_weights.is_empty(), "no flag = QoS off");
        let c = parse_config(&argv(&["--root", "/x", "--job-weights", "1=4,2=1@0.25"])).unwrap();
        assert_eq!(c.job_weights.shares.len(), 2);
        assert_eq!(c.job_weights.weight_of(1), 4.0);
        assert_eq!(c.job_weights.quota_frac_of(2), Some(0.25));
    }

    #[test]
    fn bad_job_weights_are_config_errors() {
        // Exit-2 regression: zero and negative weights, out-of-range
        // quotas, duplicate jobs, and junk must all fail parse_config —
        // main() maps that to exit code 2.
        for bad in [
            "1=0", "1=-2", "1=nan", "1=1@0", "1=1@1.5", "1=1,1=2", "garbage", "=3",
        ] {
            assert!(
                parse_config(&argv(&["--root", "/x", "--job-weights", bad])).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn flags_override_everything() {
        let c = parse_config(&argv(&[
            "--root",
            "/d",
            "--name",
            "node3/srv1",
            "--listen",
            "unix:/tmp/h.sock",
            "--capacity-mib",
            "64",
            "--workers",
            "2",
            "--movers",
            "3",
        ]))
        .unwrap();
        assert_eq!(c.name, "node3/srv1");
        assert_eq!(c.listen, "unix:/tmp/h.sock");
        assert_eq!((c.capacity_mib, c.workers, c.movers), (64, 2, 3));
    }
}
