//! End-to-end test of the standalone `hvac-server` binary: spawn it as a
//! real child process, resolve its advertised endpoint from the client
//! side, complete byte-exact reads over TCP and Unix-domain sockets, and
//! shut it down with SIGTERM.
//!
//! Server stderr is written to `$CARGO_TARGET_TMPDIR/hvac-server-logs/` so
//! CI can archive the logs when a run fails.

use bytes::Bytes;
use hvac_core::{HvacClient, HvacClientOptions};
use hvac_net::Fabric;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where this test run keeps its scratch space and server logs.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic 3 MiB payload: large enough to pipeline chunk RPCs.
fn payload() -> Vec<u8> {
    (0..3 * 1024 * 1024u32)
        .map(|i| (i * 131 + 17) as u8)
        .collect()
}

struct SpawnedServer {
    child: Child,
    uri: String,
    name: String,
}

impl SpawnedServer {
    /// Launch the binary, redirecting stderr to a log file, and wait for
    /// the `HVAC_LISTEN <name> <uri>` announcement on stdout.
    fn launch(tag: &str, listen: &str, root: &Path) -> SpawnedServer {
        let logs = scratch(&format!("{tag}/hvac-server-logs"));
        let log = fs::File::create(logs.join("server.stderr.log")).unwrap();
        let mut child = Command::new(env!("CARGO_BIN_EXE_hvac-server"))
            .args(["--listen", listen])
            .args(["--root", &root.display().to_string()])
            .args(["--capacity-mib", "64"])
            .args(["--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::from(log))
            .spawn()
            .expect("spawn hvac-server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read announcement");
        let mut parts = line.split_whitespace();
        assert_eq!(
            parts.next(),
            Some("HVAC_LISTEN"),
            "bad announcement {line:?}"
        );
        let name = parts.next().expect("name in announcement").to_string();
        let uri = parts.next().expect("uri in announcement").to_string();
        SpawnedServer { child, uri, name }
    }

    /// SIGTERM the child and assert it exits cleanly within 5 seconds.
    fn terminate(mut self) {
        // SAFETY: plain kill(2) on a child pid this test owns.
        unsafe {
            assert_eq!(libc::kill(self.child.id() as libc::pid_t, libc::SIGTERM), 0);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server ignored SIGTERM for 5s");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Spawn a server over `listen`, read one file through a socket client,
/// verify the bytes, and shut the server down.
fn round_trip_via(tag: &str, listen: &str) {
    let dir = scratch(tag);
    let root = dir.join("pfs");
    let want = payload();
    fs::create_dir_all(root.join("data")).unwrap();
    fs::write(root.join("data/sample.bin"), &want).unwrap();

    let server = SpawnedServer::launch(tag, listen, &root);

    // Client side: a fresh fabric in *this* process that only knows the
    // advertised URI — exactly what a second process would be told.
    let fabric = Arc::new(Fabric::socket_from_env().unwrap());
    fabric.register_endpoint(&server.name, &server.uri).unwrap();
    let client = HvacClient::new(fabric, HvacClientOptions::new("/data", 1, 1)).unwrap();

    let got = client.read_file(Path::new("/data/sample.bin")).unwrap();
    assert_eq!(got, Bytes::from(want), "bytes differ over {listen}");

    server.terminate();
}

#[test]
fn serves_reads_over_tcp_and_exits_on_sigterm() {
    round_trip_via("tcp", "tcp:127.0.0.1:0");
}

#[test]
fn serves_reads_over_unix_socket_and_exits_on_sigterm() {
    let sock = scratch("uds").join("srv.sock");
    round_trip_via("uds", &format!("unix:{}", sock.display()));
    assert!(!sock.exists(), "socket file must be unlinked on shutdown");
}

#[test]
fn rejects_a_bad_command_line() {
    let out = Command::new(env!("CARGO_BIN_EXE_hvac-server"))
        .args(["--listen", "tcp:127.0.0.1:0"]) // no --root anywhere
        .env_remove("HVAC_PFS_ROOT")
        .output()
        .expect("run hvac-server");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PFS root"), "{stderr}");
}
