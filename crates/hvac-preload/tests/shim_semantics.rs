//! Direct-call semantics of the interposed symbols.
//!
//! The smoke test (`preload_smoke.rs`) proves interception works end-to-end
//! under `LD_PRELOAD`; this test pins down the POSIX edge cases of the shim
//! itself by calling the exported `extern "C"` functions in-process: EINVAL
//! on a negative `pread` offset, short reads near EOF, zero at EOF, and
//! buffer-bounded delivery.
//!
//! The assertions run in a re-executed child process: the shim's agent is a
//! process-global `OnceLock` configured from the environment at the *first*
//! interposed call, and the test harness itself touches files through the
//! interposed symbols during startup (before any `#[test]` runs). Spawning
//! the test binary again with `HVAC_DATASET_DIR` already in the environment
//! is the only way to win that race — exactly how the real shim is used
//! under `LD_PRELOAD`.

use hvac_preload::agent::FD_BASE;
use hvac_preload::shim;
use libc::{c_void, O_RDONLY};
use std::ffi::CString;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

const CHILD_ENV: &str = "HVAC_SHIM_SEM_CHILD";

fn errno() -> i32 {
    unsafe { *libc::__errno_location() }
}

fn set_errno(v: i32) {
    unsafe { *libc::__errno_location() = v }
}

fn payload() -> Vec<u8> {
    (0..100u32).map(|i| i as u8).collect()
}

/// The actual assertions; runs only in the child, where the dataset
/// directory was in the environment before the process started.
fn child_assertions() {
    let dir = PathBuf::from(std::env::var_os(hvac_core::intercept::DATASET_DIR_ENV).unwrap());
    let file = dir.join("data.bin");
    let payload = payload();

    let cpath = CString::new(file.to_str().unwrap()).unwrap();
    let fd = unsafe { shim::open(cpath.as_ptr(), O_RDONLY, 0) };
    assert!(
        fd as u64 >= FD_BASE,
        "dataset open was not intercepted (fd={fd})"
    );

    // Negative offset: EINVAL before the agent ever sees the call — the
    // unchecked cast used to turn -1 into offset 2^64-1.
    let mut buf = vec![0u8; 32];
    set_errno(0);
    let r = unsafe { shim::pread(fd, buf.as_mut_ptr() as *mut c_void, 32, -1) };
    assert_eq!(r, -1);
    assert_eq!(errno(), libc::EINVAL);

    // Short read near EOF returns the available prefix...
    let r = unsafe { shim::pread(fd, buf.as_mut_ptr().cast(), 32, 90) };
    assert_eq!(r, 10);
    assert_eq!(&buf[..10], &payload[90..]);
    // ...and a read at (or past) EOF returns 0, not an error.
    assert_eq!(
        unsafe { shim::pread(fd, buf.as_mut_ptr().cast(), 32, 100) },
        0
    );
    assert_eq!(
        unsafe { shim::pread64(fd, buf.as_mut_ptr().cast(), 32, 4096) },
        0
    );

    // Sequential read: at most `count` bytes reach the buffer and the file
    // position advances by exactly what was delivered.
    let r = unsafe { shim::read(fd, buf.as_mut_ptr().cast(), 8) };
    assert_eq!(r, 8);
    assert_eq!(&buf[..8], &payload[..8]);
    let r = unsafe { shim::read(fd, buf.as_mut_ptr().cast(), 8) };
    assert_eq!(r, 8);
    assert_eq!(&buf[..8], &payload[8..16]);

    assert_eq!(unsafe { shim::close(fd) }, 0);
    // The descriptor is gone; a second close falls through to libc, which
    // rejects the virtual fd.
    assert_eq!(unsafe { shim::close(fd) }, -1);
}

#[test]
fn pread_einval_eof_and_buffer_bounds() {
    if std::env::var_os(CHILD_ENV).is_some() {
        child_assertions();
        return;
    }

    let dir = std::env::temp_dir().join(format!("hvac-shim-sem-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("data.bin"), payload()).unwrap();

    let exe = std::env::current_exe().unwrap();
    let out = Command::new(&exe)
        .args(["--exact", "pread_einval_eof_and_buffer_bounds"])
        .env(CHILD_ENV, "1")
        .env(hvac_core::intercept::DATASET_DIR_ENV, &dir)
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child assertions failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}
