//! End-to-end smoke test: run a real external program under
//! `LD_PRELOAD=libhvac_preload.so` and verify (a) its output is byte-correct
//! and (b) the shim actually intercepted the dataset I/O (via the
//! `HVAC_STATS_FILE` report written at process exit).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Locate the built cdylib next to our own test binary.
fn preload_lib() -> Option<PathBuf> {
    // test executable lives in target/<profile>/deps/...
    let exe = std::env::current_exe().ok()?;
    let deps = exe.parent()?; // .../deps
    let profile = deps.parent()?; // .../debug or .../release
    for dir in [profile, deps] {
        let candidate = dir.join("libhvac_preload.so");
        if candidate.exists() {
            return Some(candidate);
        }
    }
    // Fall back to scanning deps for hashed artifacts.
    for entry in fs::read_dir(deps).ok()? {
        let p = entry.ok()?.path();
        let name = p.file_name()?.to_str()?;
        if name.starts_with("libhvac_preload") && name.ends_with(".so") {
            return Some(p);
        }
    }
    None
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hvac-preload-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cat_under_preload_is_intercepted_and_correct() {
    let Some(lib) = preload_lib() else {
        eprintln!(
            "skipping: libhvac_preload.so not built (run `cargo build -p hvac-preload` first)"
        );
        return;
    };
    let Ok(cat) = which_cat() else {
        eprintln!("skipping: no `cat` binary on this system");
        return;
    };

    let dataset = fresh_dir("dataset");
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let file = dataset.join("sample.bin");
    fs::write(&file, &payload).unwrap();
    let stats_file = dataset.join("stats.txt");

    let output = Command::new(&cat)
        .arg(&file)
        .env("LD_PRELOAD", &lib)
        .env("HVAC_DATASET_DIR", &dataset)
        .env("HVAC_STATS_FILE", &stats_file)
        .env("HVAC_CACHE_CAPACITY_MB", "16")
        .output()
        .expect("spawn cat");

    assert!(
        output.status.success(),
        "cat failed under preload: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(output.stdout, payload, "payload corrupted by interception");

    let stats = fs::read_to_string(&stats_file).expect("stats file written at exit");
    assert!(stats.contains("hvac_preload"), "stats: {stats}");
    assert!(
        stats.contains("opens=1"),
        "open was not intercepted: {stats}"
    );
    assert!(
        stats.contains("pfs_copies=1"),
        "no PFS copy recorded: {stats}"
    );

    let _ = fs::remove_dir_all(&dataset);
}

#[test]
fn non_dataset_io_passes_through_untouched() {
    let Some(lib) = preload_lib() else {
        eprintln!("skipping: libhvac_preload.so not built");
        return;
    };
    let Ok(cat) = which_cat() else {
        eprintln!("skipping: no `cat`");
        return;
    };

    let dataset = fresh_dir("passthrough-ds");
    let outside = fresh_dir("passthrough-out");
    let file = outside.join("plain.txt");
    fs::write(&file, b"outside the dataset\n").unwrap();
    let stats_file = dataset.join("stats.txt");

    let output = Command::new(&cat)
        .arg(&file)
        .env("LD_PRELOAD", &lib)
        .env("HVAC_DATASET_DIR", &dataset)
        .env("HVAC_STATS_FILE", &stats_file)
        .output()
        .expect("spawn cat");

    assert!(output.status.success());
    assert_eq!(output.stdout, b"outside the dataset\n");
    if let Ok(stats) = fs::read_to_string(&stats_file) {
        assert!(
            stats.contains("opens=0"),
            "unexpected interception: {stats}"
        );
    }
    let _ = fs::remove_dir_all(&dataset);
    let _ = fs::remove_dir_all(&outside);
}

fn which_cat() -> Result<PathBuf, ()> {
    for p in ["/bin/cat", "/usr/bin/cat"] {
        let pb = PathBuf::from(p);
        if pb.exists() {
            return Ok(pb);
        }
    }
    Err(())
}
