//! The interposed C symbols.
//!
//! Everything here is `unsafe extern "C"` glue: resolve the real libc
//! function with `dlsym(RTLD_NEXT, ...)`, decide whether the call targets the
//! dataset directory, and either forward to the [`crate::agent::LocalAgent`]
//! or fall through. Three guards prevent recursion:
//!
//! 1. a thread-local `IN_HOOK` flag covering agent calls on the intercepted
//!    thread,
//! 2. a thread-name check (`hvac-*`) so the agent's own data-mover and RPC
//!    threads always reach the real libc,
//! 3. write-mode opens are never intercepted (HVAC is read-only).

use crate::agent::{AgentConfig, LocalAgent, FD_BASE};
use libc::{c_char, c_int, c_void, mode_t, off_t, size_t, ssize_t};
use std::cell::Cell;
use std::ffi::CStr;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static AGENT: OnceLock<Option<LocalAgent>> = OnceLock::new();

thread_local! {
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

fn with_guard<T>(f: impl FnOnce() -> T) -> T {
    IN_HOOK.with(|g| {
        g.set(true);
        let out = f();
        g.set(false);
        out
    })
}

fn hooked() -> bool {
    IN_HOOK.with(|g| g.get())
}

fn on_internal_thread() -> bool {
    std::thread::current()
        .name()
        .map(|n| n.starts_with("hvac-"))
        .unwrap_or(false)
}

extern "C" fn dump_stats_at_exit() {
    if let Some(Some(agent)) = AGENT.get().map(|a| a.as_ref()) {
        if let Ok(path) = std::env::var("HVAC_STATS_FILE") {
            let (opens, reads, bytes, hits, copies) = agent.stats();
            let line = format!(
                "hvac_preload opens={opens} reads={reads} bytes={bytes} cache_hits={hits} pfs_copies={copies}\n"
            );
            let _ = with_guard(|| std::fs::write(&path, line));
        }
    }
}

fn agent() -> Option<&'static LocalAgent> {
    if hooked() || on_internal_thread() {
        return None;
    }
    AGENT
        .get_or_init(|| {
            with_guard(|| {
                let cfg = AgentConfig::from_env()?;
                let agent = LocalAgent::new(cfg).ok()?;
                unsafe {
                    libc::atexit(dump_stats_at_exit);
                }
                Some(agent)
            })
        })
        .as_ref()
}

fn set_errno(code: c_int) {
    unsafe {
        *libc::__errno_location() = code;
    }
}

/// Resolve a real libc symbol once.
macro_rules! real_fn {
    ($name:ident, $sym:literal, fn($($arg:ty),*) -> $ret:ty) => {
        unsafe fn $name() -> unsafe extern "C" fn($($arg),*) -> $ret {
            static PTR: AtomicUsize = AtomicUsize::new(0);
            let mut p = PTR.load(Ordering::Relaxed);
            if p == 0 {
                p = libc::dlsym(libc::RTLD_NEXT, $sym.as_ptr() as *const c_char) as usize;
                assert!(p != 0, concat!("dlsym failed for ", stringify!($name)));
                PTR.store(p, Ordering::Relaxed);
            }
            std::mem::transmute::<usize, unsafe extern "C" fn($($arg),*) -> $ret>(p)
        }
    };
}

real_fn!(
    real_open,
    b"open\0",
    fn(*const c_char, c_int, mode_t) -> c_int
);
real_fn!(
    real_open64,
    b"open64\0",
    fn(*const c_char, c_int, mode_t) -> c_int
);
real_fn!(
    real_openat,
    b"openat\0",
    fn(c_int, *const c_char, c_int, mode_t) -> c_int
);
real_fn!(
    real_read,
    b"read\0",
    fn(c_int, *mut c_void, size_t) -> ssize_t
);
real_fn!(
    real_pread,
    b"pread\0",
    fn(c_int, *mut c_void, size_t, off_t) -> ssize_t
);
real_fn!(real_lseek, b"lseek\0", fn(c_int, off_t, c_int) -> off_t);
real_fn!(real_close, b"close\0", fn(c_int) -> c_int);

unsafe fn path_of(raw: *const c_char) -> Option<&'static Path> {
    if raw.is_null() {
        return None;
    }
    let cstr = CStr::from_ptr(raw);
    std::str::from_utf8(cstr.to_bytes()).ok().map(Path::new)
}

fn is_read_only(flags: c_int) -> bool {
    flags & libc::O_ACCMODE == libc::O_RDONLY
}

unsafe fn open_common(path: *const c_char, flags: c_int) -> Option<c_int> {
    if !is_read_only(flags) {
        return None;
    }
    let p = path_of(path)?;
    if !p.is_absolute() {
        return None;
    }
    let agent = agent()?;
    if !agent.intercepts(p) {
        return None;
    }
    match with_guard(|| agent.open(p)) {
        Ok(fd) => Some(fd as c_int),
        Err(e) => {
            set_errno(e.errno());
            Some(-1)
        }
    }
}

/// Interposed `open(2)`.
///
/// # Safety
/// Called by arbitrary C code; `path` must be a valid C string per the libc
/// contract.
#[no_mangle]
pub unsafe extern "C" fn open(path: *const c_char, flags: c_int, mode: mode_t) -> c_int {
    if let Some(fd) = open_common(path, flags) {
        return fd;
    }
    real_open()(path, flags, mode)
}

/// Interposed `open64`.
///
/// # Safety
/// See [`open`].
#[no_mangle]
pub unsafe extern "C" fn open64(path: *const c_char, flags: c_int, mode: mode_t) -> c_int {
    if let Some(fd) = open_common(path, flags) {
        return fd;
    }
    real_open64()(path, flags, mode)
}

/// Interposed `openat(2)` (absolute paths only; relative ones pass through).
///
/// # Safety
/// See [`open`].
#[no_mangle]
pub unsafe extern "C" fn openat(
    dirfd: c_int,
    path: *const c_char,
    flags: c_int,
    mode: mode_t,
) -> c_int {
    if let Some(p) = path_of(path) {
        if p.is_absolute() {
            if let Some(fd) = open_common(path, flags) {
                return fd;
            }
        }
    }
    real_openat()(dirfd, path, flags, mode)
}

/// Copy agent data into the caller's buffer, never past `count` bytes — the
/// caller only guaranteed `count` writable bytes, so an oversized reply (a
/// buggy or malicious server) must be clamped, not trusted.
unsafe fn deliver(buf: *mut c_void, count: size_t, data: &[u8]) -> ssize_t {
    let n = data.len().min(count);
    std::ptr::copy_nonoverlapping(data.as_ptr(), buf as *mut u8, n);
    n as ssize_t
}

/// Interposed `read(2)`.
///
/// # Safety
/// `buf` must point to at least `count` writable bytes per the libc contract.
#[no_mangle]
pub unsafe extern "C" fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                return match with_guard(|| agent.read(fd as u64, count)) {
                    Ok(data) => deliver(buf, count, &data),
                    Err(e) => {
                        set_errno(e.errno());
                        -1
                    }
                };
            }
        }
    }
    real_read()(fd, buf, count)
}

unsafe fn pread_common(
    fd: c_int,
    buf: *mut c_void,
    count: size_t,
    offset: off_t,
) -> Option<ssize_t> {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                // POSIX: pread with a negative offset is EINVAL; the cast
                // below would otherwise turn -1 into a huge u64 offset.
                if offset < 0 {
                    set_errno(libc::EINVAL);
                    return Some(-1);
                }
                return Some(
                    match with_guard(|| agent.pread(fd as u64, offset as u64, count)) {
                        Ok(data) => deliver(buf, count, &data),
                        Err(e) => {
                            set_errno(e.errno());
                            -1
                        }
                    },
                );
            }
        }
    }
    None
}

/// Interposed `pread(2)`.
///
/// # Safety
/// See [`read`].
#[no_mangle]
pub unsafe extern "C" fn pread(
    fd: c_int,
    buf: *mut c_void,
    count: size_t,
    offset: off_t,
) -> ssize_t {
    if let Some(r) = pread_common(fd, buf, count, offset) {
        return r;
    }
    real_pread()(fd, buf, count, offset)
}

/// Interposed `pread64`.
///
/// # Safety
/// See [`read`].
#[no_mangle]
pub unsafe extern "C" fn pread64(
    fd: c_int,
    buf: *mut c_void,
    count: size_t,
    offset: off_t,
) -> ssize_t {
    if let Some(r) = pread_common(fd, buf, count, offset) {
        return r;
    }
    real_pread()(fd, buf, count, offset)
}

unsafe fn lseek_common(fd: c_int, offset: off_t, whence: c_int) -> Option<off_t> {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                return Some(
                    match with_guard(|| agent.lseek(fd as u64, offset, whence)) {
                        Ok(pos) => pos as off_t,
                        Err(e) => {
                            set_errno(e.errno());
                            -1
                        }
                    },
                );
            }
        }
    }
    None
}

/// Interposed `lseek(2)`.
///
/// # Safety
/// Standard libc contract.
#[no_mangle]
pub unsafe extern "C" fn lseek(fd: c_int, offset: off_t, whence: c_int) -> off_t {
    if let Some(r) = lseek_common(fd, offset, whence) {
        return r;
    }
    real_lseek()(fd, offset, whence)
}

/// Interposed `lseek64`.
///
/// # Safety
/// Standard libc contract.
#[no_mangle]
pub unsafe extern "C" fn lseek64(fd: c_int, offset: off_t, whence: c_int) -> off_t {
    if let Some(r) = lseek_common(fd, offset, whence) {
        return r;
    }
    real_lseek()(fd, offset, whence)
}

unsafe fn fill_stat(buf: *mut libc::stat, size: u64) {
    std::ptr::write_bytes(buf, 0, 1);
    let st = &mut *buf;
    st.st_size = size as off_t;
    st.st_mode = libc::S_IFREG | 0o444;
    st.st_nlink = 1;
    st.st_blksize = 4096;
    st.st_blocks = (size as i64 + 511) / 512;
}

unsafe fn fstat_common(fd: c_int, buf: *mut libc::stat) -> Option<c_int> {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                return Some(match with_guard(|| agent.fd_size(fd as u64)) {
                    Ok(size) => {
                        fill_stat(buf, size);
                        0
                    }
                    Err(e) => {
                        set_errno(e.errno());
                        -1
                    }
                });
            }
        }
    }
    None
}

real_fn!(real_fstat, b"fstat\0", fn(c_int, *mut libc::stat) -> c_int);

/// Interposed `fstat(2)` — `cat` and friends stat their input fd to size
/// buffers, so virtual descriptors must answer.
///
/// # Safety
/// `buf` must point to a writable `struct stat` per the libc contract.
#[no_mangle]
pub unsafe extern "C" fn fstat(fd: c_int, buf: *mut libc::stat) -> c_int {
    if let Some(r) = fstat_common(fd, buf) {
        return r;
    }
    real_fstat()(fd, buf)
}

/// Interposed `fstat64`.
///
/// # Safety
/// See [`fstat`].
#[no_mangle]
pub unsafe extern "C" fn fstat64(fd: c_int, buf: *mut libc::stat) -> c_int {
    if let Some(r) = fstat_common(fd, buf) {
        return r;
    }
    real_fstat()(fd, buf)
}

real_fn!(
    real_fxstat,
    b"__fxstat\0",
    fn(c_int, c_int, *mut libc::stat) -> c_int
);

/// Interposed `__fxstat` (pre-2.33 glibc routes `fstat` through here).
///
/// # Safety
/// See [`fstat`].
#[no_mangle]
pub unsafe extern "C" fn __fxstat(ver: c_int, fd: c_int, buf: *mut libc::stat) -> c_int {
    if let Some(r) = fstat_common(fd, buf) {
        return r;
    }
    real_fxstat()(ver, fd, buf)
}

/// Interposed `__fxstat64`.
///
/// # Safety
/// See [`fstat`].
#[no_mangle]
pub unsafe extern "C" fn __fxstat64(ver: c_int, fd: c_int, buf: *mut libc::stat) -> c_int {
    if let Some(r) = fstat_common(fd, buf) {
        return r;
    }
    real_fxstat()(ver, fd, buf)
}

real_fn!(
    real_posix_fadvise,
    b"posix_fadvise\0",
    fn(c_int, off_t, off_t, c_int) -> c_int
);

/// Interposed `posix_fadvise` — a no-op success on virtual descriptors.
///
/// # Safety
/// Standard libc contract.
#[no_mangle]
pub unsafe extern "C" fn posix_fadvise(
    fd: c_int,
    offset: off_t,
    len: off_t,
    advice: c_int,
) -> c_int {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                return 0;
            }
        }
    }
    real_posix_fadvise()(fd, offset, len, advice)
}

/// Interposed `close(2)`.
///
/// # Safety
/// Standard libc contract.
#[no_mangle]
pub unsafe extern "C" fn close(fd: c_int) -> c_int {
    if fd as u64 >= FD_BASE && !hooked() && !on_internal_thread() {
        if let Some(agent) = agent() {
            if agent.owns_fd(fd as u64) {
                return match with_guard(|| agent.close(fd as u64)) {
                    Ok(()) => 0,
                    Err(e) => {
                        set_errno(e.errno());
                        -1
                    }
                };
            }
        }
    }
    real_close()(fd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliver_clamps_oversized_replies_to_count() {
        // A reply larger than the caller's buffer must never overflow it;
        // only `count` bytes land and only `count` is reported.
        let data = [7u8; 16];
        let mut buf = [0u8; 8];
        let n = unsafe { deliver(buf.as_mut_ptr().cast(), buf.len(), &data) };
        assert_eq!(n, 8);
        assert_eq!(buf, [7u8; 8]);
    }

    #[test]
    fn deliver_short_data_copies_everything_and_reports_its_length() {
        let data = [3u8; 4];
        let mut buf = [9u8; 8];
        let n = unsafe { deliver(buf.as_mut_ptr().cast(), buf.len(), &data) };
        assert_eq!(n, 4);
        assert_eq!(&buf[..4], [3u8; 4]);
        assert_eq!(&buf[4..], [9u8; 4], "tail beyond the data is untouched");
    }

    #[test]
    fn deliver_empty_reply_is_zero() {
        let mut buf = [1u8; 4];
        let n = unsafe { deliver(buf.as_mut_ptr().cast(), buf.len(), &[]) };
        assert_eq!(n, 0);
        assert_eq!(buf, [1u8; 4]);
    }
}
