//! The embedded single-process HVAC agent.
//!
//! [`LocalAgent`] packages a real [`HvacServer`] (cache manager, data-mover
//! thread, eviction) plus a descriptor table behind a synchronous API the C
//! shim can call. It is also usable directly from Rust — the unit tests and
//! the preload smoke test share this code with the interposed symbols.
//!
//! The embedded server is a **solo allocation**: its membership view is the
//! epoch-0 single-server [`ClusterView`](hvac_types::ClusterView) and never
//! changes, so the agent bypasses the wire (and thus the epoch prefix) and
//! calls `handle_request` directly — epoch-0 requests are the static-launch
//! format every server accepts forever.

use hvac_core::cache::CacheManager;
use hvac_core::eviction::make_policy;
use hvac_core::intercept::DatasetMatcher;
use hvac_core::protocol::{Request, Response};
use hvac_core::server::{HvacServer, HvacServerOptions};
use hvac_pfs::DirStore;
use hvac_storage::LocalStore;
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{ByteSize, EvictionPolicyKind, HvacError, Result};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the embedded agent, read from the environment by the
/// shim (all paths absolute).
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Directory to cache (`HVAC_DATASET_DIR`).
    pub dataset_dir: PathBuf,
    /// Cache capacity (`HVAC_CACHE_CAPACITY_MB`, default 512 MiB).
    pub cache_capacity: ByteSize,
    /// Optional on-disk cache directory (`HVAC_CACHE_DIR`); memory if unset.
    pub cache_dir: Option<PathBuf>,
    /// Eviction policy (paper default: random).
    pub eviction: EvictionPolicyKind,
}

impl AgentConfig {
    /// Config for caching `dataset_dir` in memory.
    pub fn new<P: Into<PathBuf>>(dataset_dir: P) -> Self {
        Self {
            dataset_dir: dataset_dir.into(),
            cache_capacity: ByteSize::mib(512),
            cache_dir: None,
            eviction: EvictionPolicyKind::Random,
        }
    }

    /// Read configuration from the process environment; `None` when
    /// `HVAC_DATASET_DIR` is unset (shim disabled).
    pub fn from_env() -> Option<Self> {
        let dataset_dir = std::env::var_os(hvac_core::intercept::DATASET_DIR_ENV)?;
        let capacity_mb = std::env::var("HVAC_CACHE_CAPACITY_MB")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(512);
        let cache_dir = std::env::var_os("HVAC_CACHE_DIR").map(PathBuf::from);
        Some(Self {
            dataset_dir: PathBuf::from(dataset_dir),
            cache_capacity: ByteSize::mib(capacity_mb),
            cache_dir,
            eviction: EvictionPolicyKind::Random,
        })
    }
}

/// Virtual descriptors live far above any real fd so the shim can tell them
/// apart without bookkeeping collisions.
pub const FD_BASE: u64 = 1 << 28;

#[derive(Debug)]
struct OpenFile {
    path: PathBuf,
    size: u64,
    pos: u64,
}

/// One process-local HVAC instance.
pub struct LocalAgent {
    matcher: DatasetMatcher,
    server: Arc<HvacServer>,
    fds: OrderedMutex<HashMap<u64, OpenFile>>,
    next_fd: AtomicU64,
    opens: AtomicU64,
    reads: AtomicU64,
    bytes: AtomicU64,
}

impl LocalAgent {
    /// Build an agent whose PFS is the real root file system.
    pub fn new(config: AgentConfig) -> Result<Self> {
        let pfs = Arc::new(DirStore::new("/")?);
        let store = match &config.cache_dir {
            Some(dir) => LocalStore::on_directory(dir, config.cache_capacity)?,
            None => LocalStore::in_memory(config.cache_capacity),
        };
        let cache = Arc::new(CacheManager::new(
            store,
            make_policy(config.eviction, 0x48564143),
        ));
        let server = HvacServer::new(cache, pfs, HvacServerOptions::default(), "preload")?;
        Ok(Self {
            matcher: DatasetMatcher::new(&config.dataset_dir),
            server,
            fds: OrderedMutex::new(classes::AGENT_FDS, HashMap::new()),
            next_fd: AtomicU64::new(FD_BASE),
            opens: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Whether this path should be intercepted.
    pub fn intercepts(&self, path: &Path) -> bool {
        self.matcher.matches(path)
    }

    /// The embedded server's membership view: always the solo epoch-0
    /// layout (see the module docs for why the agent may skip the epoch
    /// check).
    pub fn view(&self) -> Arc<hvac_types::ClusterView> {
        self.server.view()
    }

    /// Whether `fd` is one of ours.
    pub fn owns_fd(&self, fd: u64) -> bool {
        fd >= FD_BASE && self.fds.lock().contains_key(&fd)
    }

    /// Open an intercepted path; returns a virtual descriptor.
    pub fn open(&self, path: &Path) -> Result<u64> {
        let (resp, _) = self.server.handle_request(Request::Stat {
            path: path.to_path_buf(),
        });
        let size = match resp.into_result()? {
            Response::Stat { size } => size,
            other => {
                return Err(HvacError::Protocol(format!(
                    "unexpected stat reply {other:?}"
                )))
            }
        };
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(
            fd,
            OpenFile {
                path: path.to_path_buf(),
                size,
                pos: 0,
            },
        );
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(fd)
    }

    fn serve_read(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        let (resp, bulk) = self.server.handle_request(Request::Read {
            path: path.to_path_buf(),
            offset,
            len: len as u64,
        });
        match resp.into_result()? {
            Response::Data { .. } => {
                let data = bulk.unwrap_or_default();
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(data.to_vec())
            }
            other => Err(HvacError::Protocol(format!(
                "unexpected read reply {other:?}"
            ))),
        }
    }

    /// Sequential read at the descriptor's position.
    pub fn read(&self, fd: u64, len: usize) -> Result<Vec<u8>> {
        let (path, pos) = {
            let fds = self.fds.lock();
            let of = fds.get(&fd).ok_or(HvacError::BadFd(fd as i32))?;
            (of.path.clone(), of.pos)
        };
        let data = self.serve_read(&path, pos, len)?;
        if let Some(of) = self.fds.lock().get_mut(&fd) {
            of.pos = pos + data.len() as u64;
        }
        Ok(data)
    }

    /// Positional read (`pread`).
    pub fn pread(&self, fd: u64, offset: u64, len: usize) -> Result<Vec<u8>> {
        let path = {
            let fds = self.fds.lock();
            fds.get(&fd)
                .ok_or(HvacError::BadFd(fd as i32))?
                .path
                .clone()
        };
        self.serve_read(&path, offset, len)
    }

    /// `lseek` with POSIX whence codes (0=SET, 1=CUR, 2=END).
    pub fn lseek(&self, fd: u64, offset: i64, whence: i32) -> Result<u64> {
        let mut fds = self.fds.lock();
        let of = fds.get_mut(&fd).ok_or(HvacError::BadFd(fd as i32))?;
        let base = match whence {
            0 => 0i64,
            1 => of.pos as i64,
            2 => of.size as i64,
            w => {
                return Err(HvacError::Protocol(format!("unsupported whence {w}")));
            }
        };
        let newpos = base
            .checked_add(offset)
            .filter(|&p| p >= 0)
            .ok_or_else(|| HvacError::Protocol("negative seek".into()))?;
        of.pos = newpos as u64;
        Ok(of.pos)
    }

    /// Size recorded at open time (for interposed `fstat`).
    pub fn fd_size(&self, fd: u64) -> Result<u64> {
        let fds = self.fds.lock();
        fds.get(&fd)
            .map(|of| of.size)
            .ok_or(HvacError::BadFd(fd as i32))
    }

    /// Close a virtual descriptor.
    pub fn close(&self, fd: u64) -> Result<()> {
        let of = self
            .fds
            .lock()
            .remove(&fd)
            .ok_or(HvacError::BadFd(fd as i32))?;
        let (resp, _) = self.server.handle_request(Request::Close { path: of.path });
        resp.into_result().map(|_| ())
    }

    /// `(opens, reads, bytes, cache_hits, pfs_copies)` — the stats line.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        let snap = self.server.metrics().snapshot();
        (
            self.opens.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            snap.cache_hits,
            snap.pfs_copies,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dataset(tag: &str, files: u32, size: usize) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hvac-agent-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for i in 0..files {
            fs::write(dir.join(format!("f{i}.bin")), vec![i as u8; size]).unwrap();
        }
        dir
    }

    #[test]
    fn open_read_close_against_real_files() {
        let dir = temp_dataset("orc", 3, 100);
        let agent = LocalAgent::new(AgentConfig::new(&dir)).unwrap();
        let p = dir.join("f1.bin");
        assert!(agent.intercepts(&p));
        assert!(!agent.intercepts(Path::new("/etc/hosts")));

        let fd = agent.open(&p).unwrap();
        assert!(agent.owns_fd(fd));
        assert!(fd >= FD_BASE);
        let data = agent.read(fd, 100).unwrap();
        assert_eq!(data, vec![1u8; 100]);
        assert!(agent.read(fd, 10).unwrap().is_empty()); // EOF
        agent.close(fd).unwrap();
        assert!(!agent.owns_fd(fd));
        assert!(agent.read(fd, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_read_of_same_file_hits_cache() {
        let dir = temp_dataset("hits", 1, 64);
        let agent = LocalAgent::new(AgentConfig::new(&dir)).unwrap();
        let p = dir.join("f0.bin");
        for _ in 0..3 {
            let fd = agent.open(&p).unwrap();
            agent.read(fd, 64).unwrap();
            agent.close(fd).unwrap();
        }
        let (opens, reads, bytes, hits, copies) = agent.stats();
        assert_eq!(opens, 3);
        assert_eq!(reads, 3);
        assert_eq!(bytes, 3 * 64);
        assert_eq!(copies, 1, "one PFS copy");
        assert_eq!(hits, 2, "subsequent reads hit the cache");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pread_and_lseek() {
        let dir = temp_dataset("seek", 1, 50);
        let agent = LocalAgent::new(AgentConfig::new(&dir)).unwrap();
        let p = dir.join("f0.bin");
        let fd = agent.open(&p).unwrap();
        assert_eq!(agent.pread(fd, 40, 100).unwrap().len(), 10);
        assert_eq!(agent.lseek(fd, -5, 2).unwrap(), 45);
        assert_eq!(agent.read(fd, 100).unwrap().len(), 5);
        assert_eq!(agent.lseek(fd, 0, 0).unwrap(), 0);
        assert!(agent.lseek(fd, 0, 9).is_err());
        assert!(agent.lseek(fd, -1, 0).is_err());
        agent.close(fd).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn agent_runs_on_the_solo_epoch0_view() {
        // The agent bypasses the wire and its epoch prefix; that is only
        // sound while its server stays on the epoch-0 solo view, which can
        // never bounce a request as stale.
        let dir = temp_dataset("view", 1, 8);
        let agent = LocalAgent::new(AgentConfig::new(&dir)).unwrap();
        let view = agent.view();
        assert_eq!(view.epoch(), 0);
        assert_eq!(view.n_servers(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_open_fails() {
        let dir = temp_dataset("missing", 0, 0);
        let agent = LocalAgent::new(AgentConfig::new(&dir)).unwrap();
        assert!(agent.open(&dir.join("absent")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_backed_cache_works() {
        let dir = temp_dataset("dircache", 2, 32);
        let cache_dir = dir.join("_cache");
        let mut cfg = AgentConfig::new(&dir);
        cfg.cache_dir = Some(cache_dir.clone());
        let agent = LocalAgent::new(cfg).unwrap();
        let p = dir.join("f0.bin");
        let fd = agent.open(&p).unwrap();
        assert_eq!(agent.read(fd, 32).unwrap(), vec![0u8; 32]);
        agent.close(fd).unwrap();
        // The cached object landed on disk.
        assert!(fs::read_dir(&cache_dir).unwrap().count() >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_from_env() {
        std::env::set_var(hvac_core::intercept::DATASET_DIR_ENV, "/envset");
        std::env::set_var("HVAC_CACHE_CAPACITY_MB", "64");
        let cfg = AgentConfig::from_env().unwrap();
        assert_eq!(cfg.dataset_dir, PathBuf::from("/envset"));
        assert_eq!(cfg.cache_capacity, ByteSize::mib(64));
        std::env::remove_var(hvac_core::intercept::DATASET_DIR_ENV);
        std::env::remove_var("HVAC_CACHE_CAPACITY_MB");
        assert!(AgentConfig::from_env().is_none());
    }
}
