//! `LD_PRELOAD` interposition for HVAC (paper §III-F).
//!
//! The paper's portability story rests on intercepting the POSIX
//! `<open, read, close>` calls of unmodified DL applications via
//! `LD_PRELOAD`. This crate builds a `cdylib` that does exactly that:
//!
//! ```text
//! HVAC_DATASET_DIR=/gpfs/train LD_PRELOAD=libhvac_preload.so python train.py
//! ```
//!
//! Interposed symbols: `open`, `open64`, `openat`, `read`, `pread`,
//! `pread64`, `lseek`, `lseek64`, `close`. Paths outside `HVAC_DATASET_DIR`
//! fall through to the real libc functions untouched; matching paths are
//! served by an embedded [`LocalAgent`] — an in-process HVAC server instance
//! whose "PFS" is the real file system and whose cache is node-local memory
//! or a directory (`HVAC_CACHE_DIR`).
//!
//! In a full allocation the shim would forward RPCs to remote HVAC servers
//! (that is what [`hvac_core::client::HvacClient`] does over a fabric); the
//! single-process agent here exercises the identical server code path
//! ([`hvac_core::server::HvacServer::handle_request`]) without requiring a
//! multi-process deployment, which keeps the shim testable under plain
//! `cargo test` (see `tests/preload_smoke.rs`).
//!
//! Set `HVAC_STATS_FILE=/path` to have the shim append a one-line report at
//! process exit — the smoke test uses it to prove interception happened.

pub mod agent;
pub mod shim;

pub use agent::{AgentConfig, LocalAgent};
