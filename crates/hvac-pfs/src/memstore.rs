//! An in-memory [`FileStore`] for hermetic tests and examples, with helpers
//! to synthesize deep-learning-shaped datasets (many files under one
//! directory, deterministic contents).

use crate::store::{slice_read_at, FileMeta, FileStore, StoreStats};
use bytes::Bytes;
use hvac_sync::{classes, OrderedRwLock};
use hvac_types::{HvacError, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// In-memory file store backed by a sorted map (so listing is ordered).
#[derive(Debug)]
pub struct MemStore {
    files: OrderedRwLock<BTreeMap<PathBuf, Bytes>>,
    stats: StoreStats,
}

impl Default for MemStore {
    fn default() -> Self {
        Self {
            files: OrderedRwLock::new(classes::PFS_FILES, BTreeMap::new()),
            stats: StoreStats::default(),
        }
    }
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a file.
    pub fn put<P: Into<PathBuf>>(&self, path: P, contents: impl Into<Bytes>) {
        self.files.write().insert(path.into(), contents.into());
    }

    /// Remove a file; returns whether it existed.
    pub fn remove(&self, path: &Path) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Deterministic content for sample `index` of `size` bytes: a repeating
    /// pattern derived from the index, so tests can verify byte-correct cache
    /// reads without storing golden data.
    pub fn sample_content(index: u64, size: usize) -> Bytes {
        let mut v = Vec::with_capacity(size);
        let seed = index.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut x = seed;
        while v.len() < size {
            // xorshift64 keeps it cheap and content distinct per file.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = x.to_le_bytes();
            let take = (size - v.len()).min(8);
            v.extend_from_slice(&b[..take]);
        }
        Bytes::from(v)
    }

    /// Populate `n_files` files under `dir` named `sample_<i>.bin`, with the
    /// size of file `i` given by `size_of(i)`. Returns the sorted paths.
    pub fn synthesize_dataset(
        &self,
        dir: &Path,
        n_files: u64,
        mut size_of: impl FnMut(u64) -> usize,
    ) -> Vec<PathBuf> {
        let mut paths = Vec::with_capacity(n_files as usize);
        for i in 0..n_files {
            let p = dir.join(format!("sample_{i:08}.bin"));
            self.put(p.clone(), Self::sample_content(i, size_of(i)));
            paths.push(p);
        }
        paths
    }
}

impl FileStore for MemStore {
    fn open_meta(&self, path: &Path) -> Result<FileMeta> {
        self.stats.record_open();
        let files = self.files.read();
        files
            .get(path)
            .map(|d| FileMeta {
                size: d.len() as u64,
            })
            .ok_or_else(|| HvacError::NotFound(path.to_path_buf()))
    }

    fn read_all(&self, path: &Path) -> Result<Bytes> {
        let files = self.files.read();
        let data = files
            .get(path)
            .cloned()
            .ok_or_else(|| HvacError::NotFound(path.to_path_buf()))?;
        self.stats.record_read(data.len() as u64);
        Ok(data)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let files = self.files.read();
        let data = files
            .get(path)
            .ok_or_else(|| HvacError::NotFound(path.to_path_buf()))?;
        let out = slice_read_at(data, offset, len);
        self.stats.record_read(out.len() as u64);
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.read().contains_key(path)
    }

    fn list(&self, prefix: &Path) -> Result<Vec<PathBuf>> {
        let files = self.files.read();
        Ok(files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_read_remove() {
        let s = MemStore::new();
        assert!(s.is_empty());
        s.put("/a", Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.open_meta(Path::new("/a")).unwrap().size, 3);
        assert_eq!(&s.read_all(Path::new("/a")).unwrap()[..], b"abc");
        assert_eq!(&s.read_at(Path::new("/a"), 1, 1).unwrap()[..], b"b");
        assert!(s.remove(Path::new("/a")));
        assert!(!s.remove(Path::new("/a")));
        assert!(matches!(
            s.read_all(Path::new("/a")),
            Err(HvacError::NotFound(_))
        ));
    }

    #[test]
    fn sample_content_is_deterministic_and_distinct() {
        assert_eq!(
            MemStore::sample_content(5, 100),
            MemStore::sample_content(5, 100)
        );
        assert_ne!(
            MemStore::sample_content(5, 100),
            MemStore::sample_content(6, 100)
        );
        assert_eq!(MemStore::sample_content(0, 13).len(), 13); // non-multiple of 8
        assert_eq!(MemStore::sample_content(0, 0).len(), 0);
    }

    #[test]
    fn synthesize_dataset_shapes() {
        let s = MemStore::new();
        let paths = s.synthesize_dataset(Path::new("/data/train"), 10, |i| 100 + i as usize);
        assert_eq!(paths.len(), 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.open_meta(&paths[3]).unwrap().size, 103);
        let listing = s.list(Path::new("/data/train")).unwrap();
        assert_eq!(listing, paths);
        // prefix filtering
        assert!(s.list(Path::new("/data/valid")).unwrap().is_empty());
    }

    #[test]
    fn stats_track_reads() {
        let s = MemStore::new();
        s.put("/x", Bytes::from(vec![0u8; 50]));
        s.open_meta(Path::new("/x")).unwrap();
        s.read_all(Path::new("/x")).unwrap();
        s.read_at(Path::new("/x"), 40, 100).unwrap(); // short read of 10
        assert_eq!(s.stats().snapshot(), (1, 2, 60));
    }
}
