//! Parallel-file-system substrate for HVAC.
//!
//! On Summit the training datasets live on Alpine, a 250 PB GPFS file system
//! (§IV-A1). In this reproduction the PFS role is played by pluggable
//! [`FileStore`] implementations:
//!
//! * [`DirStore`] — a real directory tree on local disk; the functional HVAC
//!   cluster uses it as its "GPFS",
//! * [`MemStore`] — an in-memory store for fast, hermetic tests, with helpers
//!   to synthesize DL-shaped datasets,
//! * [`ThrottledStore`] — a decorator that injects per-operation latency and
//!   bandwidth ceilings, so functional examples can demonstrate the paper's
//!   speedups with real wall-clock time.
//!
//! The *queueing model* of GPFS used by the at-scale simulator (metadata
//! server pool, token manager, striped data servers) lives in
//! `hvac-sim::gpfs`, because it is expressed in simulated time rather than
//! real I/O.

pub mod dirstore;
pub mod memstore;
pub mod store;
pub mod throttle;

pub use dirstore::DirStore;
pub use memstore::MemStore;
pub use store::{FileMeta, FileStore, StoreStats};
pub use throttle::ThrottledStore;
