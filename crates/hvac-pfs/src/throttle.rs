//! Latency/bandwidth throttling decorator.
//!
//! Wraps any [`FileStore`] and injects a fixed per-operation latency plus a
//! bandwidth ceiling on reads, turning a fast local directory into something
//! that *behaves* like a congested PFS. The functional examples use this to
//! demonstrate the paper's effect with real wall-clock time: reads through
//! the HVAC cache skip the throttled store after the first epoch.

use crate::store::{FileMeta, FileStore, StoreStats};
use bytes::Bytes;
use hvac_types::{Bandwidth, Result};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A [`FileStore`] decorator that sleeps to emulate a slower tier.
pub struct ThrottledStore<S> {
    inner: S,
    op_latency: Duration,
    bandwidth: Option<Bandwidth>,
}

impl<S: FileStore> ThrottledStore<S> {
    /// Throttle `inner` with `op_latency` per metadata/data operation and an
    /// optional read bandwidth ceiling.
    pub fn new(inner: S, op_latency: Duration, bandwidth: Option<Bandwidth>) -> Self {
        Self {
            inner,
            op_latency,
            bandwidth,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn pay_op(&self) {
        if !self.op_latency.is_zero() {
            std::thread::sleep(self.op_latency);
        }
    }

    fn pay_bytes(&self, n: usize) {
        if let Some(bw) = self.bandwidth {
            let secs = bw.transfer_secs(hvac_types::ByteSize(n as u64));
            if secs.is_finite() && secs > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }
}

impl<S: FileStore> FileStore for ThrottledStore<S> {
    fn open_meta(&self, path: &Path) -> Result<FileMeta> {
        self.pay_op();
        self.inner.open_meta(path)
    }

    fn read_all(&self, path: &Path) -> Result<Bytes> {
        self.pay_op();
        let data = self.inner.read_all(path)?;
        self.pay_bytes(data.len());
        Ok(data)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        self.pay_op();
        let data = self.inner.read_at(path, offset, len)?;
        self.pay_bytes(data.len());
        Ok(data)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &Path) -> Result<Vec<PathBuf>> {
        self.inner.list(prefix)
    }

    fn stats(&self) -> &StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;
    use std::time::Instant;

    #[test]
    fn throttling_adds_latency() {
        let mem = MemStore::new();
        mem.put("/f", Bytes::from(vec![1u8; 1000]));
        let throttled = ThrottledStore::new(mem, Duration::from_millis(5), None);
        let t0 = Instant::now();
        throttled.read_all(Path::new("/f")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn bandwidth_ceiling_slows_large_reads() {
        let mem = MemStore::new();
        mem.put("/big", Bytes::from(vec![1u8; 1_000_000]));
        // 10 MB/s -> 1 MB takes ~100 ms.
        let throttled = ThrottledStore::new(
            mem,
            Duration::ZERO,
            Some(Bandwidth::bytes_per_sec(10_000_000.0)),
        );
        let t0 = Instant::now();
        throttled.read_all(Path::new("/big")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn zero_throttle_is_transparent() {
        let mem = MemStore::new();
        mem.put("/f", Bytes::from_static(b"abc"));
        let throttled = ThrottledStore::new(mem, Duration::ZERO, None);
        assert_eq!(&throttled.read_all(Path::new("/f")).unwrap()[..], b"abc");
        assert_eq!(&throttled.read_at(Path::new("/f"), 1, 1).unwrap()[..], b"b");
        assert!(throttled.exists(Path::new("/f")));
        assert_eq!(throttled.list(Path::new("/")).unwrap().len(), 1);
        assert_eq!(throttled.open_meta(Path::new("/f")).unwrap().size, 3);
        // Stats pass through to the inner store.
        assert_eq!(throttled.stats().snapshot().0, 1);
    }
}
