//! A real directory-backed [`FileStore`].
//!
//! The functional HVAC cluster mounts one of these as its "GPFS". Paths
//! handed to the store are absolute application paths; the store maps them
//! under its root (so `/gpfs/data/x` is served from `<root>/gpfs/data/x`)
//! and refuses traversal outside the root.

use crate::store::{FileMeta, FileStore, StoreStats};
use bytes::Bytes;
use hvac_types::{HvacError, Result};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Component, Path, PathBuf};

/// Directory-tree file store.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    stats: StoreStats,
}

impl DirStore {
    /// Serve files from `root` (created if missing).
    pub fn new<P: Into<PathBuf>>(root: P) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            stats: StoreStats::default(),
        })
    }

    /// The backing root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Map an application path to the on-disk path, rejecting traversal.
    fn resolve(&self, path: &Path) -> Result<PathBuf> {
        let mut out = self.root.clone();
        for comp in path.components() {
            match comp {
                Component::RootDir | Component::Prefix(_) | Component::CurDir => {}
                Component::Normal(c) => out.push(c),
                Component::ParentDir => {
                    return Err(HvacError::InvalidConfig(format!(
                        "path {} escapes the store root",
                        path.display()
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Test/ingest helper: create `path` with `contents` inside the store.
    pub fn put(&self, path: &Path, contents: &[u8]) -> Result<()> {
        let disk = self.resolve(path)?;
        if let Some(parent) = disk.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(disk, contents)?;
        Ok(())
    }

    fn walk(&self, dir: &Path, out: &mut Vec<PathBuf>, strip: &Path) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let p = entry.path();
            if entry.file_type()?.is_dir() {
                self.walk(&p, out, strip)?;
            } else {
                // Report paths in application space: "/" + path under root.
                // read_dir only yields entries under `strip`, so the prefix
                // always matches; anything else is skipped defensively.
                let Ok(rel) = p.strip_prefix(strip) else {
                    continue;
                };
                out.push(Path::new("/").join(rel));
            }
        }
        Ok(())
    }
}

impl FileStore for DirStore {
    fn open_meta(&self, path: &Path) -> Result<FileMeta> {
        self.stats.record_open();
        let disk = self.resolve(path)?;
        let md = fs::metadata(&disk).map_err(|_| HvacError::NotFound(path.to_path_buf()))?;
        Ok(FileMeta { size: md.len() })
    }

    fn read_all(&self, path: &Path) -> Result<Bytes> {
        let disk = self.resolve(path)?;
        let data = fs::read(&disk).map_err(|_| HvacError::NotFound(path.to_path_buf()))?;
        self.stats.record_read(data.len() as u64);
        Ok(Bytes::from(data))
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes> {
        let disk = self.resolve(path)?;
        let mut f = fs::File::open(&disk).map_err(|_| HvacError::NotFound(path.to_path_buf()))?;
        let size = f.metadata()?.len();
        if offset >= size {
            self.stats.record_read(0);
            return Ok(Bytes::new());
        }
        f.seek(SeekFrom::Start(offset))?;
        let want = len.min((size - offset) as usize);
        let mut buf = vec![0u8; want];
        f.read_exact(&mut buf)?;
        self.stats.record_read(buf.len() as u64);
        Ok(Bytes::from(buf))
    }

    fn exists(&self, path: &Path) -> bool {
        self.resolve(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn list(&self, prefix: &Path) -> Result<Vec<PathBuf>> {
        let disk = self.resolve(prefix)?;
        let mut out = Vec::new();
        if disk.is_dir() {
            self.walk(&disk, &mut out, &self.root)?;
        } else if disk.is_file() {
            out.push(prefix.to_path_buf());
        }
        out.sort();
        Ok(out)
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> DirStore {
        let dir = std::env::temp_dir().join(format!(
            "hvac-dirstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DirStore::new(dir).unwrap()
    }

    #[test]
    fn put_then_read_round_trip() {
        let s = tmp_store("rt");
        let p = Path::new("/gpfs/data/a.bin");
        s.put(p, b"hello hvac").unwrap();
        assert!(s.exists(p));
        assert_eq!(s.open_meta(p).unwrap().size, 10);
        assert_eq!(&s.read_all(p).unwrap()[..], b"hello hvac");
        assert_eq!(&s.read_at(p, 6, 4).unwrap()[..], b"hvac");
        assert_eq!(&s.read_at(p, 6, 100).unwrap()[..], b"hvac"); // short read
        assert_eq!(s.read_at(p, 99, 1).unwrap().len(), 0); // past EOF
    }

    #[test]
    fn missing_file_is_not_found() {
        let s = tmp_store("missing");
        let p = Path::new("/nope");
        assert!(!s.exists(p));
        assert!(matches!(s.open_meta(p), Err(HvacError::NotFound(_))));
        assert!(matches!(s.read_all(p), Err(HvacError::NotFound(_))));
        assert!(matches!(s.read_at(p, 0, 1), Err(HvacError::NotFound(_))));
    }

    #[test]
    fn traversal_is_rejected() {
        let s = tmp_store("trav");
        let evil = Path::new("/../../etc/passwd");
        assert!(s.open_meta(evil).is_err());
        assert!(!s.exists(evil));
    }

    #[test]
    fn list_is_sorted_and_recursive() {
        let s = tmp_store("list");
        s.put(Path::new("/d/b/2.bin"), b"2").unwrap();
        s.put(Path::new("/d/a/1.bin"), b"1").unwrap();
        s.put(Path::new("/d/c.bin"), b"3").unwrap();
        let listing = s.list(Path::new("/d")).unwrap();
        assert_eq!(
            listing,
            vec![
                PathBuf::from("/d/a/1.bin"),
                PathBuf::from("/d/b/2.bin"),
                PathBuf::from("/d/c.bin"),
            ]
        );
        // Listing a single file returns it.
        assert_eq!(
            s.list(Path::new("/d/c.bin")).unwrap(),
            vec![PathBuf::from("/d/c.bin")]
        );
        // Listing a missing prefix is empty, not an error.
        assert!(s.list(Path::new("/absent")).unwrap().is_empty());
    }

    #[test]
    fn stats_count_pfs_traffic() {
        let s = tmp_store("stats");
        let p = Path::new("/f");
        s.put(p, &[7u8; 128]).unwrap();
        s.open_meta(p).unwrap();
        s.read_all(p).unwrap();
        s.read_at(p, 0, 64).unwrap();
        let (opens, reads, bytes) = s.stats().snapshot();
        assert_eq!(opens, 1);
        assert_eq!(reads, 2);
        assert_eq!(bytes, 192);
    }
}
