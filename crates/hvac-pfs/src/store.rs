//! The [`FileStore`] abstraction.
//!
//! HVAC's data path only ever needs read access to the PFS (§III: "a
//! transparent read-only caching layer"), so the trait is deliberately
//! read-only; attempting writes through HVAC is a
//! [`HvacError::ReadOnly`](hvac_types::HvacError::ReadOnly) at the cache
//! layer.

use bytes::Bytes;
use hvac_types::Result;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata returned by an open/stat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// File length in bytes.
    pub size: u64,
}

/// Cumulative operation counters for a store. Every implementation embeds
/// one so tests can assert *where* reads were served from — the central
/// observable of the whole paper (cache hits avoid PFS traffic).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// `open`/`stat` calls.
    pub opens: AtomicU64,
    /// `read`/`read_at` calls.
    pub reads: AtomicU64,
    /// Bytes returned by reads.
    pub bytes_read: AtomicU64,
}

impl StoreStats {
    /// Record an open.
    #[inline]
    pub fn record_open(&self) {
        self.opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a read of `n` bytes.
    #[inline]
    pub fn record_read(&self, n: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot `(opens, reads, bytes_read)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.opens.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
        )
    }
}

/// A read-only file store (the PFS role).
pub trait FileStore: Send + Sync {
    /// Stat a file.
    fn open_meta(&self, path: &Path) -> Result<FileMeta>;

    /// Read the entire file.
    fn read_all(&self, path: &Path) -> Result<Bytes>;

    /// Read `len` bytes at `offset`; short reads at EOF return the available
    /// prefix (possibly empty), mirroring POSIX `pread`.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Bytes>;

    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;

    /// All file paths under `prefix`, sorted (deterministic dataset listing).
    fn list(&self, prefix: &Path) -> Result<Vec<PathBuf>>;

    /// Operation counters.
    fn stats(&self) -> &StoreStats;
}

/// Shared `read_at` semantics on top of a full buffer (used by [`crate::MemStore`]
/// and tests): POSIX-style short reads at EOF.
pub fn slice_read_at(data: &Bytes, offset: u64, len: usize) -> Bytes {
    let size = data.len() as u64;
    if offset >= size {
        return Bytes::new();
    }
    let start = offset as usize;
    let end = (offset + len as u64).min(size) as usize;
    data.slice(start..end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let s = StoreStats::default();
        s.record_open();
        s.record_open();
        s.record_read(100);
        s.record_read(28);
        assert_eq!(s.snapshot(), (2, 2, 128));
    }

    #[test]
    fn slice_read_at_posix_semantics() {
        let data = Bytes::from_static(b"0123456789");
        assert_eq!(&slice_read_at(&data, 0, 4)[..], b"0123");
        assert_eq!(&slice_read_at(&data, 8, 100)[..], b"89"); // short read
        assert_eq!(slice_read_at(&data, 10, 1).len(), 0); // at EOF
        assert_eq!(slice_read_at(&data, 999, 1).len(), 0); // past EOF
        assert_eq!(&slice_read_at(&data, 3, 0)[..], b""); // zero-length
    }
}
