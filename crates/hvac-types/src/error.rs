//! The crate-spanning error type.
//!
//! Failure paths are **typed**, not stringly: a timed-out RPC is
//! [`HvacError::RpcTimeout`] (with the address and elapsed time), a remote
//! error reply is [`HvacError::Remote`] (with the server's errno intact),
//! and [`HvacError::is_retriable`] classifies every variant as transient
//! (retry / fail over may help) or fatal (it will not). The client's
//! degradation ladder — retry → replica failover → direct-PFS read — keys
//! off that classification.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Convenience alias used throughout the HVAC crates.
pub type Result<T> = std::result::Result<T, HvacError>;

/// Errors surfaced by the HVAC cache and its substrates.
#[derive(Debug)]
pub enum HvacError {
    /// Underlying I/O failure (PFS or node-local storage).
    Io(io::Error),
    /// A path was requested that the backing store does not contain.
    NotFound(PathBuf),
    /// A file descriptor was used that the client does not know about.
    BadFd(i32),
    /// The RPC layer failed in some transport-level way not covered by a
    /// more specific variant (queue closed, handler died mid-request,
    /// injected fault...). Treated as transient.
    Rpc(String),
    /// An RPC exceeded its per-call deadline: the server may be hung rather
    /// than down, so the fabric cannot tell us more than "no reply in time".
    RpcTimeout {
        /// Endpoint that failed to answer.
        addr: String,
        /// How long the caller waited.
        elapsed: Duration,
    },
    /// The server answered with an error reply. The remote errno survives
    /// the wire (`code`), so `ENOENT` from a server is `ENOENT` at the shim
    /// instead of collapsing to `EIO`.
    Remote {
        /// errno-equivalent reported by the server.
        code: i32,
        /// Human-readable description from the server.
        message: String,
    },
    /// A server was asked to cache more than its capacity and eviction could
    /// not make room.
    CapacityExhausted {
        /// What was being inserted.
        requested: u64,
        /// Capacity of the store.
        capacity: u64,
    },
    /// The addressed server is marked down and no replica could serve the
    /// request.
    ServerDown(String),
    /// The request carried a membership epoch older than the server's: the
    /// sender's [`crate::ClusterView`] is stale. The reply piggybacks the
    /// server's current view (decoded by the client before this error is
    /// surfaced), so the caller swaps views, re-resolves ownership, and
    /// retries — transient by construction.
    StaleView {
        /// Epoch the server is currently at.
        current_epoch: u64,
    },
    /// Configuration is internally inconsistent.
    InvalidConfig(String),
    /// Write access attempted through the read-only cache.
    ReadOnly(PathBuf),
    /// Catch-all for protocol violations.
    Protocol(String),
}

impl fmt::Display for HvacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvacError::Io(e) => write!(f, "I/O error: {e}"),
            HvacError::NotFound(p) => write!(f, "file not found: {}", p.display()),
            HvacError::BadFd(fd) => write!(f, "unknown file descriptor: {fd}"),
            HvacError::Rpc(m) => write!(f, "rpc failure: {m}"),
            HvacError::RpcTimeout { addr, elapsed } => {
                write!(f, "rpc to {addr} timed out after {elapsed:?}")
            }
            HvacError::Remote { code, message } => {
                write!(f, "server error (errno {code}): {message}")
            }
            HvacError::CapacityExhausted {
                requested,
                capacity,
            } => write!(
                f,
                "cache capacity exhausted: need {requested} B of {capacity} B"
            ),
            HvacError::ServerDown(s) => write!(f, "server down: {s}"),
            HvacError::StaleView { current_epoch } => {
                write!(f, "stale cluster view: server is at epoch {current_epoch}")
            }
            HvacError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HvacError::ReadOnly(p) => {
                write!(
                    f,
                    "HVAC is a read-only cache; write to {} refused",
                    p.display()
                )
            }
            HvacError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for HvacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HvacError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HvacError {
    fn from(e: io::Error) -> Self {
        HvacError::Io(e)
    }
}

impl HvacError {
    /// Map to an errno-style code for the LD_PRELOAD shim.
    pub fn errno(&self) -> i32 {
        match self {
            HvacError::NotFound(_) => 2,               // ENOENT
            HvacError::BadFd(_) => 9,                  // EBADF
            HvacError::ReadOnly(_) => 30,              // EROFS
            HvacError::CapacityExhausted { .. } => 28, // ENOSPC
            HvacError::RpcTimeout { .. } => 110,       // ETIMEDOUT
            HvacError::StaleView { .. } => 11,         // EAGAIN: retry with the new view
            HvacError::Remote { code, .. } => *code,
            HvacError::Io(e) => e.raw_os_error().unwrap_or(5),
            _ => 5, // EIO
        }
    }

    /// Whether retrying (on the same server after a backoff, on the next
    /// replica, or against the PFS directly) can plausibly succeed.
    ///
    /// Transient: the server never answered ([`HvacError::RpcTimeout`]),
    /// refused the connection ([`HvacError::ServerDown`]), the transport
    /// itself failed ([`HvacError::Rpc`]), or the request was rejected only
    /// because the sender's membership view was stale
    /// ([`HvacError::StaleView`] — retrying with the piggybacked new view
    /// succeeds). Everything else the server *did* answer — including error
    /// replies — is fatal: retrying a `NotFound` or a protocol violation
    /// elsewhere returns the same answer.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            HvacError::RpcTimeout { .. }
                | HvacError::ServerDown(_)
                | HvacError::Rpc(_)
                | HvacError::StaleView { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HvacError::NotFound(PathBuf::from("/data/x"));
        assert!(e.to_string().contains("/data/x"));
        let e = HvacError::CapacityExhausted {
            requested: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: HvacError = io::Error::other("boom").into();
        assert!(matches!(e, HvacError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errno_mapping() {
        assert_eq!(HvacError::NotFound(PathBuf::new()).errno(), 2);
        assert_eq!(HvacError::BadFd(3).errno(), 9);
        assert_eq!(HvacError::ReadOnly(PathBuf::new()).errno(), 30);
        assert_eq!(
            HvacError::CapacityExhausted {
                requested: 1,
                capacity: 0
            }
            .errno(),
            28
        );
        assert_eq!(HvacError::Rpc(String::new()).errno(), 5);
        assert_eq!(
            HvacError::RpcTimeout {
                addr: "n0/s0".into(),
                elapsed: Duration::from_secs(1),
            }
            .errno(),
            110
        );
        assert_eq!(HvacError::StaleView { current_epoch: 3 }.errno(), 11);
        // The remote errno survives instead of collapsing to EIO.
        assert_eq!(
            HvacError::Remote {
                code: 2,
                message: "file not found".into(),
            }
            .errno(),
            2
        );
    }

    #[test]
    fn transient_vs_fatal_classification() {
        let transient = [
            HvacError::RpcTimeout {
                addr: "n0/s0".into(),
                elapsed: Duration::from_millis(50),
            },
            HvacError::ServerDown("n0/s0".into()),
            HvacError::Rpc("queue closed".into()),
            HvacError::StaleView { current_epoch: 2 },
        ];
        for e in transient {
            assert!(e.is_retriable(), "{e} must be retriable");
        }
        let fatal = [
            HvacError::NotFound(PathBuf::from("/x")),
            HvacError::BadFd(3),
            HvacError::Remote {
                code: 2,
                message: "nope".into(),
            },
            HvacError::Protocol("bad tag".into()),
            HvacError::InvalidConfig("".into()),
            HvacError::ReadOnly(PathBuf::from("/x")),
            HvacError::CapacityExhausted {
                requested: 1,
                capacity: 0,
            },
            HvacError::Io(io::Error::other("disk on fire")),
        ];
        for e in fatal {
            assert!(!e.is_retriable(), "{e} must be fatal");
        }
    }

    #[test]
    fn timeout_display_names_the_endpoint() {
        let e = HvacError::RpcTimeout {
            addr: "node3/srv1".into(),
            elapsed: Duration::from_millis(40),
        };
        assert!(e.to_string().contains("node3/srv1"));
        assert!(e.to_string().contains("timed out"));
    }
}
