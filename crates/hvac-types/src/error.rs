//! The crate-spanning error type.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Convenience alias used throughout the HVAC crates.
pub type Result<T> = std::result::Result<T, HvacError>;

/// Errors surfaced by the HVAC cache and its substrates.
#[derive(Debug)]
pub enum HvacError {
    /// Underlying I/O failure (PFS or node-local storage).
    Io(io::Error),
    /// A path was requested that the backing store does not contain.
    NotFound(PathBuf),
    /// A file descriptor was used that the client does not know about.
    BadFd(i32),
    /// The RPC layer failed (endpoint gone, decode error, timeout...).
    Rpc(String),
    /// A server was asked to cache more than its capacity and eviction could
    /// not make room.
    CapacityExhausted {
        /// What was being inserted.
        requested: u64,
        /// Capacity of the store.
        capacity: u64,
    },
    /// The addressed server is marked down and no replica could serve the
    /// request.
    ServerDown(String),
    /// Configuration is internally inconsistent.
    InvalidConfig(String),
    /// Write access attempted through the read-only cache.
    ReadOnly(PathBuf),
    /// Catch-all for protocol violations.
    Protocol(String),
}

impl fmt::Display for HvacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvacError::Io(e) => write!(f, "I/O error: {e}"),
            HvacError::NotFound(p) => write!(f, "file not found: {}", p.display()),
            HvacError::BadFd(fd) => write!(f, "unknown file descriptor: {fd}"),
            HvacError::Rpc(m) => write!(f, "rpc failure: {m}"),
            HvacError::CapacityExhausted {
                requested,
                capacity,
            } => write!(
                f,
                "cache capacity exhausted: need {requested} B of {capacity} B"
            ),
            HvacError::ServerDown(s) => write!(f, "server down: {s}"),
            HvacError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HvacError::ReadOnly(p) => {
                write!(
                    f,
                    "HVAC is a read-only cache; write to {} refused",
                    p.display()
                )
            }
            HvacError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for HvacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HvacError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HvacError {
    fn from(e: io::Error) -> Self {
        HvacError::Io(e)
    }
}

impl HvacError {
    /// Map to an errno-style code for the LD_PRELOAD shim.
    pub fn errno(&self) -> i32 {
        match self {
            HvacError::NotFound(_) => 2,               // ENOENT
            HvacError::BadFd(_) => 9,                  // EBADF
            HvacError::ReadOnly(_) => 30,              // EROFS
            HvacError::CapacityExhausted { .. } => 28, // ENOSPC
            HvacError::Io(e) => e.raw_os_error().unwrap_or(5),
            _ => 5, // EIO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HvacError::NotFound(PathBuf::from("/data/x"));
        assert!(e.to_string().contains("/data/x"));
        let e = HvacError::CapacityExhausted {
            requested: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: HvacError = io::Error::other("boom").into();
        assert!(matches!(e, HvacError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errno_mapping() {
        assert_eq!(HvacError::NotFound(PathBuf::new()).errno(), 2);
        assert_eq!(HvacError::BadFd(3).errno(), 9);
        assert_eq!(HvacError::ReadOnly(PathBuf::new()).errno(), 30);
        assert_eq!(
            HvacError::CapacityExhausted {
                requested: 1,
                capacity: 0
            }
            .errno(),
            28
        );
        assert_eq!(HvacError::Rpc(String::new()).errno(), 5);
    }
}
