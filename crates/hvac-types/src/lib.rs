//! Common vocabulary types shared by every HVAC crate.
//!
//! HVAC ("High-Velocity AI Cache", Khan et al., IEEE CLUSTER 2022) is a
//! transparent, distributed, read-only cache that aggregates node-local
//! storage across a compute-job allocation to remove the parallel-file-system
//! I/O bottleneck of large-scale deep-learning training.
//!
//! This crate holds the pieces everybody agrees on:
//!
//! * [`ids`] — strongly typed identifiers ([`NodeId`], [`ServerId`],
//!   [`FileId`], ...),
//! * [`units`] — byte-count and bandwidth arithmetic with human-readable
//!   formatting,
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`]) used by the
//!   discrete-event simulator,
//! * [`error`] — the [`HvacError`] error type used across crate boundaries,
//! * [`config`] — configuration structs for clusters, the GPFS model, local
//!   devices and HVAC itself,
//! * [`view`] — the epoch-versioned [`ClusterView`] membership snapshot that
//!   every ownership decision resolves through,
//! * [`summit`] — the calibration constants of the Summit supercomputer from
//!   Table I and §IV of the paper.

pub mod config;
pub mod error;
pub mod ids;
pub mod summit;
pub mod time;
pub mod units;
pub mod view;

pub use config::{
    ClusterConfig, EvictionPolicyKind, GpfsConfig, HvacConfig, JobShare, JobWeights, NetworkConfig,
    NvmeConfig, PlacementKind, RetryPolicy, TransportKind,
};
pub use error::{HvacError, Result};
pub use ids::{ClientId, FileId, JobId, NodeId, Rank, ServerId};
pub use time::SimTime;
pub use units::{Bandwidth, ByteSize, GIB, KIB, MIB, TIB};
pub use view::ClusterView;
