//! Byte-count and bandwidth arithmetic.
//!
//! The HVAC models are calibrated in terms of file sizes (163 KB ImageNet-21K
//! samples, 8 MiB MDTest files, 1.6 TB NVMe drives) and bandwidths (2.5 TB/s
//! GPFS aggregate, 22.5 TB/s aggregate NVMe). These newtypes keep the
//! arithmetic honest and the printouts readable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte in bytes.
pub const TIB: u64 = 1024 * GIB;

/// A number of bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from kibibytes.
    #[inline]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }
    /// Construct from mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }
    /// Construct from gibibytes.
    #[inline]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }
    /// Construct from tebibytes.
    #[inline]
    pub const fn tib(n: u64) -> Self {
        ByteSize(n * TIB)
    }

    /// Raw byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Value as `f64` bytes (for rate arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// `self / rhs` as a dimensionless ratio.
    #[inline]
    pub fn ratio(self, rhs: ByteSize) -> f64 {
        if rhs.0 == 0 {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    #[inline]
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= TIB {
            write!(f, "{:.2} TiB", b / TIB as f64)
        } else if self.0 >= GIB {
            write!(f, "{:.2} GiB", b / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", b / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", b / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Construct from bytes per second.
    #[inline]
    pub const fn bytes_per_sec(b: f64) -> Self {
        Bandwidth(b)
    }
    /// Construct from mebibytes per second.
    #[inline]
    pub fn mib_per_sec(m: f64) -> Self {
        Bandwidth(m * MIB as f64)
    }
    /// Construct from gibibytes per second.
    #[inline]
    pub fn gib_per_sec(g: f64) -> Self {
        Bandwidth(g * GIB as f64)
    }
    /// Construct from decimal gigabytes per second (the unit vendors and the
    /// paper use: "2.5 TB/s").
    #[inline]
    pub fn gb_per_sec(g: f64) -> Self {
        Bandwidth(g * 1e9)
    }
    /// Construct from decimal terabytes per second.
    #[inline]
    pub fn tb_per_sec(t: f64) -> Self {
        Bandwidth(t * 1e12)
    }

    /// Raw bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time (in seconds) to move `size` at this rate. Infinite bandwidth (or
    /// any non-positive size) transfers instantly.
    #[inline]
    pub fn transfer_secs(self, size: ByteSize) -> f64 {
        if self.0 <= 0.0 {
            return f64::INFINITY;
        }
        size.as_f64() / self.0
    }

    /// Scale (e.g. aggregate bandwidth of `n` identical devices).
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1e12 {
            write!(f, "{:.2} TB/s", b / 1e12)
        } else if b >= 1e9 {
            write!(f, "{:.2} GB/s", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB/s", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} KB/s", b / 1e3)
        } else {
            write!(f, "{:.0} B/s", b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteSize::kib(32).bytes(), 32 * 1024);
        assert_eq!(ByteSize::mib(8).bytes(), 8 * 1024 * 1024);
        assert_eq!(ByteSize::gib(1).bytes(), GIB);
        assert_eq!(ByteSize::tib(2).bytes(), 2 * TIB);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(4);
        let b = ByteSize::mib(1);
        assert_eq!((a + b).bytes(), 5 * MIB);
        assert_eq!((a - b).bytes(), 3 * MIB);
        assert_eq!((a * 3).bytes(), 12 * MIB);
        assert_eq!((a / 2).bytes(), 2 * MIB);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ByteSize(10).ratio(ByteSize(0)), 0.0);
        assert!((ByteSize(10).ratio(ByteSize(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::kib(32).to_string(), "32.00 KiB");
        assert_eq!(ByteSize::mib(8).to_string(), "8.00 MiB");
        assert_eq!(ByteSize::tib(1).to_string(), "1.00 TiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::gb_per_sec(1.0); // 1e9 B/s
        let t = bw.transfer_secs(ByteSize(2_000_000_000));
        assert!((t - 2.0).abs() < 1e-9);
        assert!(Bandwidth(0.0).transfer_secs(ByteSize(1)).is_infinite());
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::tb_per_sec(2.5).to_string(), "2.50 TB/s");
        assert_eq!(Bandwidth::gb_per_sec(5.5).to_string(), "5.50 GB/s");
    }

    #[test]
    fn paper_calibration_sanity() {
        // Paper §II-C: 22.5 TB/s aggregate NVMe read at 4096 nodes.
        let per_node = Bandwidth::tb_per_sec(22.5).scale(1.0 / 4096.0);
        assert!(per_node.as_bytes_per_sec() > 5.0e9);
        assert!(per_node.as_bytes_per_sec() < 6.0e9);
    }
}
