//! Configuration structs shared by the functional cluster and the simulator.
//!
//! Every knob the paper's evaluation varies — node count, HVAC instances per
//! node ("HVAC (i×1)"), batch size, epochs, cache capacity, placement and
//! eviction policy — lives here, so experiments are plain data.

use crate::units::{Bandwidth, ByteSize};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which placement algorithm maps a file to its home server.
///
/// The paper uses plain hashing (`Modulo`); the others are provided for the
/// ablation study and for replication/fail-over (future work in the paper,
/// implemented here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementKind {
    /// `hash(path) % n_servers` — the paper's scheme.
    #[default]
    Modulo,
    /// Jump consistent hash (Lamping & Veach).
    Jump,
    /// Rendezvous / highest-random-weight hashing.
    Rendezvous,
    /// Consistent-hash ring with virtual nodes.
    Ring,
    /// CRUSH-style straw2 selection (what CephFS uses, cited in §III-E).
    Straw2,
}

/// Which transport carries client↔server RPCs.
///
/// The paper's deployment speaks Mercury over InfiniBand; this reproduction
/// offers an in-process loopback fabric (the default, used by unit tests and
/// the simulator) and a real socket transport in TCP and Unix-domain
/// flavours. The choice is made at `Cluster`/client construction and is
/// invisible above the fabric: deadlines, retries, breakers, hedging and
/// fault injection behave identically on every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TransportKind {
    /// In-process queues and worker threads; no bytes leave the process.
    #[default]
    Loopback,
    /// TCP sockets on 127.0.0.1 with length-prefixed frames.
    Tcp,
    /// Unix-domain stream sockets with the same framing.
    Unix,
}

impl TransportKind {
    /// Transport selected by the `HVAC_TRANSPORT` environment variable
    /// (`"tcp"`, `"unix"`/`"uds"`, `"loopback"`), falling back to
    /// [`TransportKind::Loopback`] when unset or unrecognized. This is how
    /// CI reruns the integration tiers over real sockets without touching
    /// the test code.
    pub fn from_env() -> Self {
        match std::env::var("HVAC_TRANSPORT") {
            Ok(v) => Self::parse(&v).unwrap_or(TransportKind::Loopback),
            Err(_) => TransportKind::Loopback,
        }
    }

    /// Parse a transport name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "loopback" | "" => Some(TransportKind::Loopback),
            "tcp" => Some(TransportKind::Tcp),
            "unix" | "uds" => Some(TransportKind::Unix),
            _ => None,
        }
    }
}

/// Cache eviction policy (paper §III-G: "Currently, HVAC is designed to
/// perform eviction and replacement randomly").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum EvictionPolicyKind {
    /// Evict a uniformly random resident file — the paper's default.
    #[default]
    Random,
    /// First-in first-out.
    Fifo,
    /// Least recently used.
    Lru,
    /// Least frequently used.
    Lfu,
    /// CoorDL's MinIO (cited in §II-D/§V): fill the cache once, then never
    /// replace — "at least some fraction of data for an epoch is always
    /// accessible from the cache". Un-admitted files are served from the
    /// PFS directly (cache bypass).
    MinIo,
}

/// HVAC-specific knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HvacConfig {
    /// Server instances per compute node; the "i" of HVAC (i×1).
    pub instances_per_node: u32,
    /// Data-mover threads per server instance (paper: one dedicated thread).
    pub movers_per_instance: u32,
    /// Placement algorithm.
    pub placement: PlacementKind,
    /// Eviction policy when a node-local store fills.
    pub eviction: EvictionPolicyKind,
    /// Number of replicas per file (1 = paper's single-home design; >1
    /// enables the fail-over extension of §III-H).
    pub replication: u32,
    /// Per-request server-side software overhead (RPC handling + queue),
    /// nanoseconds; the resource that HVAC (2×1)/(4×1) parallelize.
    pub request_overhead_ns: u64,
    /// Per-request client-side dispatch cost (interposition + Mercury RPC
    /// marshalling), nanoseconds, paid serially in the rank's loader thread.
    /// Together with `request_overhead_ns` this is calibrated so the HVAC
    /// variants land near the paper's 25 %/14 %/9 % overhead over
    /// XFS-on-NVMe (Fig. 9b).
    pub client_dispatch_ns: u64,
}

impl Default for HvacConfig {
    fn default() -> Self {
        Self {
            instances_per_node: 1,
            movers_per_instance: 1,
            placement: PlacementKind::Modulo,
            eviction: EvictionPolicyKind::Random,
            replication: 1,
            request_overhead_ns: 60_000,
            client_dispatch_ns: 5_000,
        }
    }
}

/// One tenant's share of a server: a weighted-fair scheduling weight and an
/// optional capacity-quota fraction. Parsed from `--job-weights` /
/// `HVAC_JOB_WEIGHTS` and threaded into the server's admission gate and the
/// store's per-tenant quota table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobShare {
    /// Tenant the share applies to (job 0 = the legacy/default namespace).
    pub job: u64,
    /// Deficit-round-robin weight; must be > 0.
    pub weight: f64,
    /// Fraction of the store capacity this tenant may hold, in `(0, 1]`.
    /// `None` = proportional to this tenant's weight share.
    pub quota_frac: Option<f64>,
}

/// Per-tenant QoS plan: the parsed form of `--job-weights`. An empty plan
/// means QoS is off — every tenant is admitted immediately and no quota is
/// enforced, which is exactly the pre-tenancy behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobWeights {
    /// One entry per configured tenant, in configuration order.
    pub shares: Vec<JobShare>,
}

impl JobWeights {
    /// Parse the `--job-weights` grammar: comma-separated
    /// `job=weight[@quota_frac]` entries, e.g. `1=4@0.5,2=1`. Zero or
    /// negative weights, quota fractions outside `(0, 1]`, duplicate jobs
    /// and malformed entries are configuration errors.
    pub fn parse(s: &str) -> crate::Result<Self> {
        use crate::HvacError::InvalidConfig;
        let mut shares: Vec<JobShare> = Vec::new();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (job_s, rest) = entry.split_once('=').ok_or_else(|| {
                InvalidConfig(format!(
                    "job-weights entry `{entry}`: expected job=weight[@quota]"
                ))
            })?;
            let job: u64 = job_s.trim().parse().map_err(|_| {
                InvalidConfig(format!("job-weights entry `{entry}`: bad job id `{job_s}`"))
            })?;
            let (weight_s, quota_s) = match rest.split_once('@') {
                Some((w, q)) => (w, Some(q)),
                None => (rest, None),
            };
            let weight: f64 = weight_s.trim().parse().map_err(|_| {
                InvalidConfig(format!(
                    "job-weights entry `{entry}`: bad weight `{weight_s}`"
                ))
            })?;
            if !weight.is_finite() || weight <= 0.0 {
                return Err(InvalidConfig(format!(
                    "job-weights entry `{entry}`: weight must be > 0, got {weight}"
                )));
            }
            let quota_frac = match quota_s {
                Some(q) => {
                    let f: f64 = q.trim().parse().map_err(|_| {
                        InvalidConfig(format!(
                            "job-weights entry `{entry}`: bad quota fraction `{q}`"
                        ))
                    })?;
                    if !f.is_finite() || f <= 0.0 || f > 1.0 {
                        return Err(InvalidConfig(format!(
                            "job-weights entry `{entry}`: quota fraction must be in (0, 1], got {f}"
                        )));
                    }
                    Some(f)
                }
                None => None,
            };
            if shares.iter().any(|sh| sh.job == job) {
                return Err(InvalidConfig(format!(
                    "job-weights: job {job} configured twice"
                )));
            }
            shares.push(JobShare {
                job,
                weight,
                quota_frac,
            });
        }
        Ok(Self { shares })
    }

    /// Plan from the `HVAC_JOB_WEIGHTS` environment variable; `Ok(empty)`
    /// when unset, `Err` when set but malformed.
    pub fn from_env() -> crate::Result<Self> {
        match std::env::var("HVAC_JOB_WEIGHTS") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Whether the plan configures nothing (QoS off).
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// DRR weight of a tenant: its configured weight, or 1.0 for tenants
    /// the plan does not mention.
    pub fn weight_of(&self, job: u64) -> f64 {
        self.shares
            .iter()
            .find(|sh| sh.job == job)
            .map_or(1.0, |sh| sh.weight)
    }

    /// Capacity-quota fraction of a tenant: the explicit fraction, else the
    /// tenant's weight share of all configured weights, else `None` (no
    /// quota) for unconfigured tenants.
    pub fn quota_frac_of(&self, job: u64) -> Option<f64> {
        let share = self.shares.iter().find(|sh| sh.job == job)?;
        if let Some(f) = share.quota_frac {
            return Some(f);
        }
        let total: f64 = self.shares.iter().map(|sh| sh.weight).sum();
        (total > 0.0).then(|| share.weight / total)
    }
}

/// Client-side failure-handling budget: per-call deadlines, bounded retry
/// with exponential backoff + seeded jitter, and the consecutive-failure
/// circuit breaker that proactively skips a wedged replica.
///
/// The degradation ladder this policy drives is: retry the same replica
/// (transient errors only) → fail over to the next replica → read the PFS
/// directly (when the client has a [`FileStore`] fallback configured).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Per-RPC deadline. A hung server costs at most this much per attempt,
    /// not the fabric's 30 s transport default.
    pub rpc_timeout: Duration,
    /// Attempts per replica (1 = no same-replica retry). Only timeouts and
    /// transport errors are retried on the same replica; `ServerDown` fails
    /// over immediately.
    pub max_attempts: u32,
    /// Base backoff between same-replica attempts; attempt `n` waits
    /// `backoff_base * 2^n` plus jitter in `[0, backoff_base)`.
    pub backoff_base: Duration,
    /// Consecutive failures after which a replica's breaker trips and the
    /// client skips it proactively.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before one probe call is
    /// allowed through (half-open).
    pub breaker_cooldown: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Hedged-read delay as a percentage of `rpc_timeout` (0 disables
    /// hedging, the default). When a primary replica has not answered
    /// after `rpc_timeout * hedge_delay_percent / 100`, the client issues
    /// a backup request to the next closed-breaker replica and takes
    /// whichever answers first; a tripped replica is never hedged to, so
    /// hedging cannot double the load on a failing server.
    pub hedge_delay_percent: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            rpc_timeout: Duration::from_secs(5),
            max_attempts: 2,
            backoff_base: Duration::from_millis(10),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
            jitter_seed: 0x4856_4143, // "HVAC"
            hedge_delay_percent: 0,
        }
    }
}

impl RetryPolicy {
    /// The hedge delay this policy encodes: `None` when hedging is
    /// disabled, otherwise the wait before the backup request is issued
    /// (clamped to at most one full deadline).
    pub fn hedge_delay(&self) -> Option<Duration> {
        if self.hedge_delay_percent == 0 {
            return None;
        }
        let pct = self.hedge_delay_percent.min(100);
        Some(self.rpc_timeout.mul_f64(f64::from(pct) / 100.0))
    }
}

/// GPFS model parameters (calibrated from the paper, §II-C and §IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpfsConfig {
    /// Number of metadata servers in the pool.
    pub mds_count: u32,
    /// Mean service time of one metadata operation (open token + lookup).
    pub mds_op_ns: u64,
    /// Number of data (NSD) servers.
    pub data_server_count: u32,
    /// Aggregate read bandwidth of the file system.
    pub aggregate_bandwidth: Bandwidth,
    /// Read bandwidth one client stream can extract (stripe fan-out is
    /// finite; a single POSIX read does not see the aggregate).
    pub per_stream_bandwidth: Bandwidth,
    /// Stripe (block) size for data distribution.
    pub stripe_size: ByteSize,
    /// Client-observed round-trip cost per request to any GPFS server.
    pub rpc_latency_ns: u64,
    /// Fractional MDS service-time inflation per 1,000 concurrent clients —
    /// lock/token contention makes metadata ops *slower* under massive
    /// concurrency, which is why the paper sees GPFS training time regress
    /// at 1,024 nodes relative to its 450-node peak (§IV-B).
    pub mds_overload_per_1k_clients: f64,
}

impl Default for GpfsConfig {
    fn default() -> Self {
        // Alpine: 2.5 TB/s aggregate, "tens of metadata servers and a few
        // hundreds of data servers" (§II-C). The per-op service time is
        // calibrated so that (a) the MDS ceiling (mds_count / mds_op ≈ 4 M
        // op/s) sits above the 8 MiB bandwidth ceiling (~300 K txn/s) —
        // small files metadata-bound (Fig. 3), large files bandwidth-bound
        // (Fig. 4) — and (b) an ImageNet-21K epoch at 1,024 nodes is
        // metadata-dominated, reproducing the Fig. 8 GPFS saturation.
        Self {
            mds_count: 32,
            mds_op_ns: 8_000,
            data_server_count: 288,
            aggregate_bandwidth: Bandwidth::tb_per_sec(2.5),
            per_stream_bandwidth: Bandwidth::gb_per_sec(1.8),
            stripe_size: ByteSize::mib(16),
            rpc_latency_ns: 60_000,
            mds_overload_per_1k_clients: 0.12,
        }
    }
}

impl GpfsConfig {
    /// Alpine as a *training job* sees it: center-wide sharing leaves a job
    /// an effective slice of the aggregate bandwidth and metadata capacity
    /// (Alpine is "directly accessed by all other OLCF resources",
    /// §IV-A1). The MDTest figures use [`GpfsConfig::default`] (dedicated
    /// benchmark); the training figures use this preset.
    pub fn shared_alpine() -> Self {
        Self {
            mds_op_ns: 16_000,                                 // ~2 M op/s slice
            aggregate_bandwidth: Bandwidth::gb_per_sec(200.0), // job-effective
            per_stream_bandwidth: Bandwidth::gb_per_sec(1.2),
            ..Self::default()
        }
    }
}

/// Node-local NVMe device parameters (Table I: 1.6 TB Samsung NVMe, XFS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvmeConfig {
    /// Usable capacity per node.
    pub capacity: ByteSize,
    /// Sequential read bandwidth per device.
    pub read_bandwidth: Bandwidth,
    /// Write bandwidth per device (used when the data mover populates the
    /// cache).
    pub write_bandwidth: Bandwidth,
    /// Per-operation latency (XFS open+submit on NVMe).
    pub op_latency_ns: u64,
    /// Random-read IOPS ceiling of the device.
    pub max_iops: u64,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        // §II-C: 22.5 TB/s aggregate at 4096 nodes => ~5.5 GB/s per node.
        Self {
            capacity: ByteSize::tib(1) + ByteSize::gib(614), // ~1.6 TB
            read_bandwidth: Bandwidth::gb_per_sec(5.5),
            write_bandwidth: Bandwidth::gb_per_sec(2.1),
            op_latency_ns: 25_000,
            max_iops: 800_000,
        }
    }
}

/// Interconnect parameters (Table I: dual-rail Mellanox EDR InfiniBand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way small-message latency between any two nodes.
    pub latency_ns: u64,
    /// Point-to-point bandwidth per node (dual-rail EDR ≈ 2 × 12.5 GB/s).
    pub node_bandwidth: Bandwidth,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            latency_ns: 1_500,
            node_bandwidth: Bandwidth::gb_per_sec(25.0),
        }
    }
}

/// A full cluster description: the unit of experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes in the job allocation.
    pub nodes: u32,
    /// Application processes (training ranks) per node. The paper runs two
    /// concurrent training processes per node in Fig. 8.
    pub procs_per_node: u32,
    /// HVAC configuration.
    pub hvac: HvacConfig,
    /// GPFS model configuration.
    pub gpfs: GpfsConfig,
    /// Node-local device configuration.
    pub nvme: NvmeConfig,
    /// Interconnect configuration.
    pub network: NetworkConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            procs_per_node: 2,
            hvac: HvacConfig::default(),
            gpfs: GpfsConfig::default(),
            nvme: NvmeConfig::default(),
            network: NetworkConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// A cluster of `nodes` nodes with everything else at Summit defaults.
    pub fn with_nodes(nodes: u32) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }

    /// Total HVAC server instances in the allocation.
    #[inline]
    pub fn total_servers(&self) -> usize {
        self.nodes as usize * self.hvac.instances_per_node as usize
    }

    /// Total training ranks in the allocation.
    #[inline]
    pub fn total_ranks(&self) -> usize {
        self.nodes as usize * self.procs_per_node as usize
    }

    /// Aggregate node-local cache capacity of the allocation.
    #[inline]
    pub fn aggregate_cache_capacity(&self) -> ByteSize {
        ByteSize(self.nvme.capacity.bytes() * self.nodes as u64)
    }

    /// Check internal consistency; experiments call this before running.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::HvacError::InvalidConfig;
        if self.nodes == 0 {
            return Err(InvalidConfig("nodes must be >= 1".into()));
        }
        if self.procs_per_node == 0 {
            return Err(InvalidConfig("procs_per_node must be >= 1".into()));
        }
        if self.hvac.instances_per_node == 0 {
            return Err(InvalidConfig("instances_per_node must be >= 1".into()));
        }
        if self.hvac.movers_per_instance == 0 {
            return Err(InvalidConfig("movers_per_instance must be >= 1".into()));
        }
        if self.hvac.replication == 0 {
            return Err(InvalidConfig("replication must be >= 1".into()));
        }
        if self.hvac.replication as usize > self.total_servers() {
            return Err(InvalidConfig(format!(
                "replication {} exceeds server count {}",
                self.hvac.replication,
                self.total_servers()
            )));
        }
        if self.gpfs.mds_count == 0 || self.gpfs.data_server_count == 0 {
            return Err(InvalidConfig("GPFS server counts must be >= 1".into()));
        }
        if self.nvme.capacity == ByteSize::ZERO {
            return Err(InvalidConfig("NVMe capacity must be non-zero".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ClusterConfig::default().validate().unwrap();
        ClusterConfig::with_nodes(1024).validate().unwrap();
    }

    #[test]
    fn totals() {
        let mut c = ClusterConfig::with_nodes(512);
        c.hvac.instances_per_node = 4;
        c.procs_per_node = 2;
        assert_eq!(c.total_servers(), 2048);
        assert_eq!(c.total_ranks(), 1024);
        assert_eq!(
            c.aggregate_cache_capacity().bytes(),
            c.nvme.capacity.bytes() * 512
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        let c = ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.hvac.instances_per_node = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.hvac.replication = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::with_nodes(2);
        c.hvac.replication = 5; // 2 nodes x 1 instance = 2 servers < 5 replicas
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.gpfs.mds_count = 0;
        assert!(c.validate().is_err());

        let c = ClusterConfig {
            nvme: NvmeConfig {
                capacity: ByteSize::ZERO,
                ..NvmeConfig::default()
            },
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn job_weights_parse_happy_paths() {
        let w = JobWeights::parse("1=4@0.5, 2=1").unwrap();
        assert_eq!(w.shares.len(), 2);
        assert_eq!(w.weight_of(1), 4.0);
        assert_eq!(w.weight_of(2), 1.0);
        assert_eq!(w.weight_of(99), 1.0, "unlisted tenants get unit weight");
        assert_eq!(w.quota_frac_of(1), Some(0.5), "explicit quota wins");
        assert_eq!(w.quota_frac_of(2), Some(1.0 / 5.0), "proportional default");
        assert_eq!(w.quota_frac_of(99), None, "unlisted tenants are unquoted");
        assert!(JobWeights::parse("").unwrap().is_empty());
        assert!(JobWeights::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn job_weights_reject_bad_entries() {
        for bad in [
            "1",        // no weight
            "1=0",      // zero weight
            "1=-2",     // negative weight
            "1=nan",    // non-finite
            "x=1",      // bad job id
            "1=1@0",    // zero quota
            "1=1@1.5",  // quota > 1
            "1=1@-0.1", // negative quota
            "1=1,1=2",  // duplicate job
            "1=1@oops", // unparsable quota
        ] {
            assert!(
                matches!(
                    JobWeights::parse(bad),
                    Err(crate::HvacError::InvalidConfig(_))
                ),
                "`{bad}` should be a config error"
            );
        }
    }

    #[test]
    fn serde_round_trip_via_debug_eq() {
        // serde round-trip through the self-describing serde_test-free path:
        // serialize to a string with serde's derived impls is covered by
        // serde_json in downstream crates; here we at least assert Clone/Eq.
        let c = ClusterConfig::with_nodes(64);
        let d = c.clone();
        assert_eq!(c, d);
    }
}
