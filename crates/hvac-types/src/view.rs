//! Epoch-versioned cluster membership view.
//!
//! HVAC computes a file's home server *algorithmically* — there is no
//! metadata service to consult — so every party (client, server, preload
//! agent) must agree on the set of live servers or they will disagree on
//! ownership. [`ClusterView`] makes that agreement explicit: a monotonic
//! **epoch** plus the ordered list of live [`ServerId`]s. The view is an
//! immutable value; membership changes produce a *new* view with a bumped
//! epoch via [`ClusterView::with_node_added`] / [`ClusterView::with_node_removed`].
//!
//! Wire protocol: requests carry the sender's epoch; a server holding a
//! newer view answers `StaleView` and piggybacks its current view so the
//! client can atomically swap and re-resolve. Placement implementations
//! hash the stable *identity* of each member (see `hvac-hash`), so a
//! single join/leave moves only the churn-bounded minority of files.

use crate::error::{HvacError, Result};
use crate::ids::{NodeId, ServerId};
use std::fmt;

/// An immutable, epoch-stamped snapshot of cluster membership.
///
/// Ordering of `servers` is canonical (sorted by `(node, instance)`): two
/// views with the same epoch and members compare equal regardless of the
/// order members were supplied in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    epoch: u64,
    servers: Vec<ServerId>,
    instances_per_node: u32,
}

impl ClusterView {
    /// Build a view from explicit parts. Rejects an empty member list and
    /// duplicate members; sorts members into canonical order.
    pub fn new(epoch: u64, mut servers: Vec<ServerId>, instances_per_node: u32) -> Result<Self> {
        if servers.is_empty() {
            return Err(HvacError::InvalidConfig(
                "cluster view must contain at least one server".into(),
            ));
        }
        servers.sort();
        if servers.windows(2).any(|w| w[0] == w[1]) {
            return Err(HvacError::InvalidConfig(
                "cluster view contains duplicate server ids".into(),
            ));
        }
        Ok(Self {
            epoch,
            servers,
            instances_per_node: instances_per_node.max(1),
        })
    }

    /// The launch-time view: epoch 0, servers `0..n_servers` laid out
    /// densely across nodes exactly as [`ServerId::from_global_index`]
    /// enumerates them. This matches the paper's static topology, so code
    /// that never changes membership behaves identically to before.
    pub fn initial(n_servers: usize, instances_per_node: u32) -> Result<Self> {
        let ipn = instances_per_node.max(1);
        let servers = (0..n_servers)
            .map(|idx| ServerId::from_global_index(idx, ipn))
            .collect();
        Self::new(0, servers, ipn)
    }

    /// Membership epoch. Strictly increases on every membership change.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live servers.
    #[inline]
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Live servers in canonical order.
    #[inline]
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Server at a placement slot (slot indices are positions in the
    /// canonical member list, *not* global indices).
    #[inline]
    pub fn server_at(&self, slot: usize) -> ServerId {
        self.servers[slot % self.servers.len()]
    }

    /// Configured instances per node (used when growing the view).
    #[inline]
    pub fn instances_per_node(&self) -> u32 {
        self.instances_per_node
    }

    /// Whether `sid` is a live member.
    pub fn contains(&self, sid: ServerId) -> bool {
        self.servers.binary_search(&sid).is_ok()
    }

    /// Fabric address of a member — the `Display` form of its id, which is
    /// stable across view changes (identity, not slot, names the endpoint).
    pub fn addr(&self, sid: ServerId) -> String {
        sid.to_string()
    }

    /// Distinct node ids with at least one live server instance, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.servers.iter().map(|s| s.node).collect();
        nodes.dedup();
        nodes
    }

    /// Smallest node id not currently in the view — the id [`ClusterView`]
    /// assigns to the next joining node.
    pub fn next_node_id(&self) -> NodeId {
        NodeId(self.servers.iter().map(|s| s.node.0 + 1).max().unwrap_or(0))
    }

    /// Successor view with `instances_per_node` fresh server instances on
    /// `node`; epoch bumps by one. Rejects a node that already has members.
    pub fn with_node_added(&self, node: NodeId) -> Result<Self> {
        if self.servers.iter().any(|s| s.node == node) {
            return Err(HvacError::InvalidConfig(format!(
                "{node} is already a member of the view"
            )));
        }
        let mut servers = self.servers.clone();
        for inst in 0..self.instances_per_node {
            servers.push(ServerId {
                node,
                instance: inst,
            });
        }
        Self::new(self.epoch + 1, servers, self.instances_per_node)
    }

    /// Successor view with every server instance on `node` removed; epoch
    /// bumps by one. Rejects unknown nodes and refuses to empty the view.
    pub fn with_node_removed(&self, node: NodeId) -> Result<Self> {
        if !self.servers.iter().any(|s| s.node == node) {
            return Err(HvacError::InvalidConfig(format!(
                "{node} is not a member of the view"
            )));
        }
        let servers: Vec<ServerId> = self
            .servers
            .iter()
            .copied()
            .filter(|s| s.node != node)
            .collect();
        if servers.is_empty() {
            return Err(HvacError::InvalidConfig(
                "removing the last node would empty the view".into(),
            ));
        }
        Self::new(self.epoch + 1, servers, self.instances_per_node)
    }

    /// Order-independent content signature (epoch excluded): two views with
    /// the same membership share a signature. Used by `hvac-hash` to memoize
    /// per-membership consistent-hash rings.
    pub fn membership_signature(&self) -> u64 {
        // FNV-1a over the canonical member list; collision here only costs a
        // spurious ring rebuild, never wrong placement.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for s in &self.servers {
            for part in [u64::from(s.node.0), u64::from(s.instance)] {
                h ^= part.wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl fmt::Display for ClusterView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view@{} [{} servers on {} nodes]",
            self.epoch,
            self.servers.len(),
            self.node_ids().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_matches_dense_layout() {
        let v = ClusterView::initial(6, 2).unwrap();
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.n_servers(), 6);
        for idx in 0..6 {
            assert_eq!(v.server_at(idx), ServerId::from_global_index(idx, 2));
        }
        assert_eq!(v.node_ids(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_and_duplicate_views_rejected() {
        assert!(ClusterView::new(0, vec![], 1).is_err());
        let dup = vec![ServerId::new(0, 0), ServerId::new(0, 0)];
        assert!(ClusterView::new(0, dup, 1).is_err());
    }

    #[test]
    fn add_and_remove_bump_epoch() {
        let v0 = ClusterView::initial(2, 1).unwrap();
        let v1 = v0.with_node_added(NodeId(2)).unwrap();
        assert_eq!(v1.epoch(), 1);
        assert_eq!(v1.n_servers(), 3);
        assert!(v1.contains(ServerId::new(2, 0)));
        let v2 = v1.with_node_removed(NodeId(0)).unwrap();
        assert_eq!(v2.epoch(), 2);
        assert!(!v2.contains(ServerId::new(0, 0)));
        assert_eq!(v2.n_servers(), 2);
    }

    #[test]
    fn add_existing_and_remove_absent_rejected() {
        let v = ClusterView::initial(2, 1).unwrap();
        assert!(v.with_node_added(NodeId(0)).is_err());
        assert!(v.with_node_removed(NodeId(7)).is_err());
    }

    #[test]
    fn cannot_empty_the_view() {
        let v = ClusterView::initial(1, 1).unwrap();
        assert!(v.with_node_removed(NodeId(0)).is_err());
    }

    #[test]
    fn next_node_id_skips_past_members() {
        let v = ClusterView::initial(3, 1).unwrap();
        assert_eq!(v.next_node_id(), NodeId(3));
        let v = v.with_node_removed(NodeId(1)).unwrap();
        // Holes are not reused: the max member still wins.
        assert_eq!(v.next_node_id(), NodeId(3));
    }

    #[test]
    fn membership_signature_ignores_epoch_and_order() {
        let a = ClusterView::new(0, vec![ServerId::new(1, 0), ServerId::new(0, 0)], 1).unwrap();
        let b = ClusterView::new(9, vec![ServerId::new(0, 0), ServerId::new(1, 0)], 1).unwrap();
        assert_eq!(a.membership_signature(), b.membership_signature());
        let c = ClusterView::new(0, vec![ServerId::new(0, 0)], 1).unwrap();
        assert_ne!(a.membership_signature(), c.membership_signature());
    }

    #[test]
    fn display_names_epoch_and_sizes() {
        let v = ClusterView::initial(4, 2).unwrap();
        let s = v.to_string();
        assert!(s.contains("view@0"));
        assert!(s.contains("4 servers"));
        assert!(s.contains("2 nodes"));
    }
}
