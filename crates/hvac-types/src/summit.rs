//! Calibration constants of the Summit supercomputer and the paper's
//! datasets (Table I, §II-C, §IV-A).
//!
//! Everything the simulator needs to know about the paper's testbed is
//! centralized here so the experiment harness and the documentation agree on
//! a single source of truth.

use crate::units::{Bandwidth, ByteSize};

/// Total compute nodes in Summit.
pub const SUMMIT_TOTAL_NODES: u32 = 4_608;
/// GPUs per node (6× NVIDIA V100).
pub const GPUS_PER_NODE: u32 = 6;
/// CPU cores per node (2× POWER9, 22 cores).
pub const CPU_CORES_PER_NODE: u32 = 44;
/// DDR4 per node.
pub const NODE_MEMORY: ByteSize = ByteSize(512 * crate::units::GIB);
/// Node-local NVMe capacity (1.6 TB Samsung, XFS).
pub const NODE_NVME_CAPACITY: ByteSize = ByteSize(1_600_000_000_000);

/// Alpine (GPFS) aggregate read bandwidth: 2.5 TB/s (§IV-A1).
pub fn gpfs_aggregate_bandwidth() -> Bandwidth {
    Bandwidth::tb_per_sec(2.5)
}

/// Aggregate node-local NVMe read bandwidth at 4,096 nodes: 22.5 TB/s
/// (§II-C), i.e. ~5.5 GB/s per node.
pub fn nvme_aggregate_bandwidth_4096() -> Bandwidth {
    Bandwidth::tb_per_sec(22.5)
}

/// Per-node NVMe read bandwidth implied by §II-C.
pub fn nvme_per_node_bandwidth() -> Bandwidth {
    nvme_aggregate_bandwidth_4096().scale(1.0 / 4096.0)
}

/// ImageNet-21K training set: 11,797,632 samples (§IV-A3).
pub const IMAGENET21K_TRAIN_SAMPLES: u64 = 11_797_632;
/// ImageNet-21K test set: 561,052 samples.
pub const IMAGENET21K_TEST_SAMPLES: u64 = 561_052;
/// ImageNet-21K mean sample size ≈163 KB; total ≈1.1 TB.
pub const IMAGENET21K_MEAN_SAMPLE: ByteSize = ByteSize(163 * 1_000);
/// ImageNet-21K total dataset size (≈1.1 TB).
pub const IMAGENET21K_TOTAL: ByteSize = ByteSize(1_100_000_000_000);
/// ImageNet-21K class count.
pub const IMAGENET21K_CLASSES: u32 = 11_221;

/// cosmoUniverse training samples: 524,288 TFRecord samples (§IV-A3).
pub const COSMOFLOW_TRAIN_SAMPLES: u64 = 524_288;
/// cosmoUniverse validation samples.
pub const COSMOFLOW_VALID_SAMPLES: u64 = 65_536;
/// cosmoUniverse total dataset size (≈1.3 TB).
pub const COSMOFLOW_TOTAL: ByteSize = ByteSize(1_300_000_000_000);

/// Mean cosmoUniverse sample size implied by the totals above (~2.5 MB).
pub fn cosmoflow_mean_sample() -> ByteSize {
    ByteSize(COSMOFLOW_TOTAL.bytes() / COSMOFLOW_TRAIN_SAMPLES)
}

/// DeepCAM sample: 768×1152 pixels × 16 channels (§IV-A2); float16 pixels
/// put one sample around 27 MB on disk (the paper stores HDF5/NPZ-like
/// records; we model ~27 MB).
pub const DEEPCAM_SAMPLE: ByteSize = ByteSize(27_000_000);

/// Table I rendered as rows of (attribute, description) for the `reproduce`
/// binary.
pub fn table1_rows() -> Vec<(&'static str, String)> {
    vec![
        ("Supercomputer", "Summit".to_string()),
        ("CPU", "2 x IBM POWER9 22Cores 3.07GHz".to_string()),
        (
            "GPU",
            format!("{GPUS_PER_NODE} x NVIDIA Tesla Volta (V100)"),
        ),
        ("Memory Capacity", format!("{NODE_MEMORY} DDR4")),
        (
            "Node-local Storage",
            format!("{NODE_NVME_CAPACITY} Samsung NVMe SSD with XFS"),
        ),
        (
            "Network Interconnect Family",
            "Dual-rail Mellanox EDR Infiniband".to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_nvme_bandwidth_matches_paper() {
        let per = nvme_per_node_bandwidth().as_bytes_per_sec();
        assert!(per > 5.0e9 && per < 6.0e9, "got {per}");
    }

    #[test]
    fn imagenet_mean_size_consistent_with_total() {
        // 11.8M files at ~163 KB ≈ 1.9 TB raw; paper rounds the *dataset* to
        // 1.1 TB (train shards are compressed). Assert we stay within the
        // order of magnitude so nobody "fixes" a constant silently.
        let implied = IMAGENET21K_MEAN_SAMPLE.bytes() * IMAGENET21K_TRAIN_SAMPLES;
        assert!(implied > IMAGENET21K_TOTAL.bytes() / 4);
        assert!(implied < IMAGENET21K_TOTAL.bytes() * 4);
    }

    #[test]
    fn cosmoflow_mean_sample_is_megabytes() {
        let m = cosmoflow_mean_sample().bytes();
        assert!(m > 1_000_000 && m < 10_000_000, "got {m}");
    }

    #[test]
    fn table1_has_all_attributes() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|(k, _)| *k == "Node-local Storage"));
    }
}
