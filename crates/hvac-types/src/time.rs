//! Simulated time.
//!
//! The discrete-event simulator advances a virtual clock in integer
//! nanoseconds. [`SimTime`] is a point on that clock; durations are also
//! represented as `SimTime` offsets (the engine only ever adds them).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start), or a
/// duration when used as an offset.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and NaN inputs clamp to zero; overflow clamps to
    /// [`SimTime::MAX`].
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Value in fractional minutes (the unit of the paper's training-time
    /// figures).
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Saturating addition (durations near `MAX` stay at `MAX`).
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 60_000_000_000 {
            write!(f, "{:.2} min", self.as_minutes_f64())
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} us", ns as f64 / 1e3)
        } else {
            write!(f, "{} ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs(90).as_minutes_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime(1)), SimTime::MAX);
        assert_eq!(SimTime(5).saturating_since(SimTime(9)), SimTime::ZERO);
        assert_eq!(SimTime(9).saturating_since(SimTime(5)), SimTime(4));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime(500).to_string(), "500 ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000 us");
        assert_eq!(SimTime::from_millis(15).to_string(), "15.000 ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000 s");
        assert_eq!(SimTime::from_secs(120).to_string(), "2.00 min");
    }
}
