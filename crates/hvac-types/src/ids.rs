//! Strongly typed identifiers.
//!
//! HVAC routes every file to exactly one *home* server inside a job
//! allocation. Keeping node, server-instance, client and file identifiers as
//! distinct newtypes prevents the classic "which usize was that again?"
//! placement bugs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a compute node within a job allocation (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Numeric value as `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identity of one HVAC server instance.
///
/// The paper runs `i` server instances per node — the "HVAC (i×1)" variants
/// of §IV — so a server is addressed by `(node, instance)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServerId {
    /// Hosting compute node.
    pub node: NodeId,
    /// Instance index on that node (`0..instances_per_node`).
    pub instance: u32,
}

impl ServerId {
    /// Construct from raw parts.
    #[inline]
    pub fn new(node: u32, instance: u32) -> Self {
        Self {
            node: NodeId(node),
            instance,
        }
    }

    /// Dense global index given the per-node instance count, matching the
    /// order in which [`crate::config::ClusterConfig`] enumerates servers.
    #[inline]
    pub fn global_index(self, instances_per_node: u32) -> usize {
        self.node.index() * instances_per_node as usize + self.instance as usize
    }

    /// Inverse of [`ServerId::global_index`].
    #[inline]
    pub fn from_global_index(idx: usize, instances_per_node: u32) -> Self {
        let per = instances_per_node.max(1) as usize;
        Self {
            node: NodeId((idx / per) as u32),
            instance: (idx % per) as u32,
        }
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/srv{}", self.node, self.instance)
    }
}

/// Identity of an HVAC client (one per application process).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// 64-bit content-free identifier of a file, derived from its path hash.
///
/// HVAC never stores a path→location table; the [`FileId`] *is* the input to
/// placement (paper §III-E). Two paths colliding to one `FileId` would merely
/// share a home server, never corrupt data, because servers key their caches
/// by full path.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{:016x}", self.0)
    }
}

/// Identity of a batch job / allocation. The HVAC cache lifetime is coupled to
/// the job lifetime (paper §III-D).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl JobId {
    /// The legacy/default namespace: what every pre-tenancy client encodes
    /// and every server accepts. Mirrors epoch 0 of the membership protocol.
    pub const DEFAULT: JobId = JobId(0);

    /// Job selected by the `HVAC_JOB_ID` environment variable, falling back
    /// to [`JobId::DEFAULT`] when unset or unparsable. This is how a
    /// launcher scopes a whole training job without touching its code.
    pub fn from_env() -> Self {
        match std::env::var("HVAC_JOB_ID") {
            Ok(v) => JobId(v.trim().parse().unwrap_or(0)),
            Err(_) => JobId::DEFAULT,
        }
    }

    /// Whether this is the legacy/default namespace.
    #[inline]
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A distributed-training rank (one per application process, as in MPI).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Rank(pub u32);

impl Rank {
    /// Numeric value as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_global_index_round_trips() {
        for per in 1..=4u32 {
            for idx in 0..64usize {
                let sid = ServerId::from_global_index(idx, per);
                assert_eq!(sid.global_index(per), idx, "per={per} idx={idx}");
            }
        }
    }

    #[test]
    fn server_global_index_is_dense_and_ordered() {
        let per = 3;
        let mut expect = 0usize;
        for node in 0..5u32 {
            for inst in 0..per {
                let sid = ServerId::new(node, inst);
                assert_eq!(sid.global_index(per), expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(ServerId::new(3, 1).to_string(), "node3/srv1");
        assert_eq!(ClientId(9).to_string(), "client9");
        assert_eq!(Rank(2).to_string(), "rank2");
        assert_eq!(JobId(7).to_string(), "job7");
        assert_eq!(FileId(0xdead_beef).to_string(), "file#00000000deadbeef");
    }

    #[test]
    fn job_default_is_the_legacy_namespace() {
        assert_eq!(JobId::default(), JobId::DEFAULT);
        assert!(JobId(0).is_default());
        assert!(!JobId(7).is_default());
    }

    #[test]
    fn from_global_index_tolerates_zero_instances() {
        // Degenerate config must not panic; it clamps to one instance.
        let sid = ServerId::from_global_index(5, 0);
        assert_eq!(sid.node, NodeId(5));
        assert_eq!(sid.instance, 0);
    }
}
