//! Property tests for the zero-copy data plane's pure parts: the slab
//! buffer pool (refcount/return invariants, poisoning, quiescence,
//! concurrent acquire/release) and the read planner + batch codec (exact
//! tiling, destination purity, framing round-trips).

use bytes::{Bytes, BytesMut};
use hvac_net::framing;
use hvac_net::plan::{coalesce_plan, decode_batch_items, encode_batch_items, BatchItem};
use hvac_net::pool::{BufferPool, POISON_BYTE, SLAB_CLASSES};
use proptest::prelude::*;

/// Deterministic fill pattern so every buffer's bytes witness its identity.
fn pattern(tag: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (tag as usize ^ (i * 131)) as u8).collect()
}

proptest! {
    /// Arbitrary acquire/freeze/clone/drop interleavings: every frozen
    /// buffer keeps its exact bytes (shared slabs are never recycled while
    /// referenced), and once everything drops the pool is quiescent — each
    /// slab came home exactly once (no leak, no double return).
    #[test]
    fn pool_refcounts_and_quiesces(
        sizes in proptest::collection::vec(0usize..40_000, 1..24),
        clones in proptest::collection::vec(0usize..4, 1..24),
        drop_order in proptest::collection::vec(any::<u16>(), 1..24),
    ) {
        let pool = BufferPool::new();
        let mut held: Vec<(u64, Vec<Bytes>)> = Vec::new();
        for (tag, &len) in sizes.iter().enumerate() {
            let tag = tag as u64;
            let fill = pattern(tag, len);
            let frozen = pool.bytes_from_slice(&fill);
            prop_assert_eq!(&frozen[..], &fill[..]);
            let n = clones[tag as usize % clones.len()];
            let copies = std::iter::repeat_with(|| frozen.clone()).take(n).collect();
            held.push((tag, copies));
            held.push((tag, vec![frozen]));
        }
        // Drop groups in an arbitrary order, re-verifying survivors after
        // every drop: a premature slab reuse would corrupt one of them.
        let mut order: Vec<usize> = (0..held.len()).collect();
        let n = order.len();
        for (i, &r) in drop_order.iter().enumerate() {
            order.swap(i % n, r as usize % n);
        }
        for &victim in &order {
            held[victim].1.clear();
            for (tag, copies) in &held {
                for b in copies {
                    prop_assert_eq!(&b[..], &pattern(*tag, b.len())[..]);
                }
            }
        }
        drop(held);
        let s = pool.stats();
        prop_assert_eq!(s.in_flight(), 0, "pool not quiescent: {:?}", s);
        prop_assert_eq!(s.acquires, s.returns + s.overflow_frees);
        prop_assert_eq!(s.acquires, s.pool_hits + s.fresh_allocs);
        // Parked slabs are exactly the returns that were never re-issued.
        prop_assert_eq!(pool.free_slabs() as u64, s.returns - s.pool_hits);
    }

    /// A recycled slab arrives poisoned in debug builds: stale bytes from
    /// the previous owner are never observable.
    #[test]
    fn recycled_slabs_are_poisoned(len in 1usize..70_000) {
        let pool = BufferPool::new();
        let mut first = pool.acquire(len);
        first[..].fill(0xAA);
        drop(first);
        let second = pool.acquire(len);
        prop_assert_eq!(pool.stats().pool_hits, 1, "same class must reuse the slab");
        if cfg!(debug_assertions) {
            prop_assert!(
                second[..].iter().all(|&b| b == POISON_BYTE),
                "recycled slab leaked previous contents"
            );
        }
    }

    /// Oversize requests (beyond the largest class) are served unpooled
    /// and never touch the ledger's pooled counters.
    #[test]
    fn oversize_requests_bypass_the_pool(extra in 1usize..4096) {
        let pool = BufferPool::new();
        let len = SLAB_CLASSES[SLAB_CLASSES.len() - 1] + extra;
        let buf = pool.acquire(len);
        prop_assert_eq!(buf.len(), len);
        drop(buf);
        let s = pool.stats();
        prop_assert_eq!(s.oversize, 1);
        prop_assert_eq!(s.acquires, 0);
        prop_assert_eq!(pool.free_slabs(), 0);
    }

    /// For arbitrary requests and placement maps the plan exactly tiles
    /// `[offset, offset+len)`: no gap, no overlap, ascending, every entry
    /// destination-pure, segment bookkeeping consistent, and maximal —
    /// two adjacent entries that could have merged under the cap never
    /// both survive.
    #[test]
    fn coalesce_plan_exactly_tiles(
        offset in 0u64..10_000,
        len in 0u64..50_000,
        segment_size in 1u64..4_096,
        cap in 0u64..20_000,
        dests in proptest::collection::vec(0u8..5, 1..32),
    ) {
        let dest_of = |seg: u64| dests[(seg % dests.len() as u64) as usize];
        let plan = coalesce_plan(offset, len, segment_size, cap, dest_of);
        if len == 0 {
            prop_assert!(plan.is_empty());
            return Ok(());
        }
        let mut at = offset;
        for e in &plan {
            prop_assert_eq!(e.offset, at, "gap or overlap");
            prop_assert!(e.len > 0);
            // Segment bookkeeping matches the byte range.
            prop_assert_eq!(e.first_seg, e.offset / segment_size);
            prop_assert_eq!(e.last_seg, (e.offset + e.len - 1) / segment_size);
            // Destination purity: every merged segment maps to `dest`.
            for seg in e.first_seg..=e.last_seg {
                prop_assert_eq!(dest_of(seg), e.dest, "cross-destination merge");
            }
            // A multi-segment entry respects the cap.
            if e.first_seg != e.last_seg {
                prop_assert!(e.len <= cap, "merged range exceeds the cap");
            }
            at += e.len;
        }
        prop_assert_eq!(at, offset + len, "plan does not cover the request");
        for w in plan.windows(2) {
            let mergeable = w[0].dest == w[1].dest
                && w[0].offset + w[0].len == w[1].offset
                && w[1].first_seg > w[0].last_seg
                && w[0].len + (w[1].offset + w[1].len).min((w[1].first_seg + 1) * segment_size)
                    - w[1].offset
                    <= cap;
            prop_assert!(!mergeable, "missed merge between adjacent same-dest entries");
        }
    }

    /// The batch payload codec round-trips arbitrary item lists — paths
    /// stay with their items (no cross-file mixing) — and survives the
    /// full wire path: batch payload → request frame → decoded payload.
    #[test]
    fn batch_items_round_trip_through_framing(
        items in proptest::collection::vec(
            ("[^\\u{0}]{0,40}", any::<u64>(), any::<u64>())
                .prop_map(|(path, offset, len)| BatchItem { path, offset, len }),
            0..32,
        ),
        req_id in any::<u64>(),
        deadline_ms in any::<u32>(),
    ) {
        let mut payload = BytesMut::new();
        encode_batch_items(&mut payload, &items).unwrap();
        let wire_bytes = framing::encode_request(
            req_id,
            deadline_ms,
            &payload,
            framing::DEFAULT_MAX_FRAME,
        ).unwrap();
        let mut cursor = &wire_bytes[..];
        let body = framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        let decoded = framing::decode_request(body).unwrap();
        prop_assert_eq!(decoded.req_id, req_id);
        let mut buf = decoded.payload;
        prop_assert_eq!(decode_batch_items(&mut buf).unwrap(), items);
        prop_assert_eq!(bytes::Buf::remaining(&buf), 0, "codec left trailing bytes");
    }
}

/// Sixteen threads hammer one pool with acquire/fill/freeze/verify/release
/// cycles across every size class: bytes never cross threads and the pool
/// is quiescent at the end.
#[test]
fn sixteen_threads_share_one_pool_without_corruption() {
    const THREADS: u64 = 16;
    const OPS: u64 = 300;
    let pool = BufferPool::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut live: Vec<(u64, Bytes)> = Vec::new();
                    for op in 0..OPS {
                        let tag = (t << 32) | op;
                        // Sizes sweep the small classes plus odd lengths.
                        let len = ((tag.wrapping_mul(0x9E37_79B9)) % 9000) as usize;
                        let fill = pattern(tag, len);
                        live.push((tag, pool.bytes_from_slice(&fill)));
                        if live.len() > 8 {
                            let (old_tag, old) = live.remove((op % 8) as usize);
                            assert_eq!(&old[..], &pattern(old_tag, old.len())[..]);
                        }
                        for (tag, b) in &live {
                            assert_eq!(&b[..], &pattern(*tag, b.len())[..]);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let s = pool.stats();
    assert_eq!(s.in_flight(), 0, "pool not quiescent after join: {s:?}");
    assert_eq!(s.acquires, s.returns + s.overflow_frees);
    assert_eq!(s.acquires, THREADS * OPS);
}
