//! Property-based tests for the RPC substrate: codec totality, bulk
//! chunking round-trips, pipelined reassembly, and fabric behaviour under
//! arbitrary payloads.

use bytes::{Bytes, BytesMut};
use hvac_net::bulk::{chunk_bulk, reassemble_bulk};
use hvac_net::fabric::{Fabric, Reply, RpcHandler};
use hvac_net::pipeline::pipelined_fetch;
use hvac_net::wire;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn wire_strings_round_trip(strings in proptest::collection::vec("[^\\u{0}]{0,64}", 0..8)) {
        let mut b = BytesMut::new();
        for s in &strings {
            wire::put_str(&mut b, s);
        }
        let mut r = b.freeze();
        for s in &strings {
            prop_assert_eq!(&wire::get_str(&mut r).unwrap(), s);
        }
        prop_assert_eq!(bytes::Buf::remaining(&r), 0);
    }

    #[test]
    fn wire_blobs_round_trip(blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..8)) {
        let mut b = BytesMut::new();
        for blob in &blobs {
            wire::put_blob(&mut b, blob);
        }
        let mut r = b.freeze();
        for blob in &blobs {
            prop_assert_eq!(&wire::get_blob(&mut r).unwrap()[..], &blob[..]);
        }
    }

    #[test]
    fn wire_readers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let b = Bytes::from(bytes);
        let _ = wire::get_str(&mut b.clone());
        let _ = wire::get_blob(&mut b.clone());
        let _ = wire::get_u8(&mut b.clone());
        let _ = wire::get_u32(&mut b.clone());
        let _ = wire::get_u64(&mut b.clone());
        let _ = wire::get_i64(&mut b.clone());
    }

    #[test]
    fn bulk_chunking_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..10_000), chunk in 1usize..4096) {
        let payload = Bytes::from(payload);
        let chunks = chunk_bulk(&payload, chunk);
        // Every chunk respects the size bound...
        for c in &chunks {
            prop_assert!(c.len() <= chunk);
            prop_assert!(!c.is_empty());
        }
        // ...the count is exact...
        prop_assert_eq!(chunks.len(), payload.len().div_ceil(chunk));
        // ...and reassembly is lossless.
        prop_assert_eq!(reassemble_bulk(&chunks), payload);
    }

    #[test]
    fn pipelined_fetch_round_trips_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..10_000),
        chunk in 1usize..4096,
        window in 1usize..9,
        offset in 0u64..256,
    ) {
        // A pipelined chunked read over an in-memory "file" must return the
        // exact bytes a single contiguous read would — for any payload
        // (including empty), any chunk size, and any window width. Requests
        // deliberately overrun EOF to exercise short-read reassembly.
        let data = Bytes::from(payload);
        let fetch = |off: u64, len: usize| {
            let start = (off as usize).min(data.len());
            let end = (start + len).min(data.len());
            Ok(data.slice(start..end))
        };
        let len = data.len() + 512; // always runs past EOF
        let out = pipelined_fetch(offset, len, chunk, window, fetch).unwrap();
        let expected = data.slice((offset as usize).min(data.len())..);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn fabric_echoes_arbitrary_payloads(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let fabric = Arc::new(Fabric::new());
        let handler: Arc<dyn RpcHandler> = Arc::new(|req: Bytes| Reply {
            bulk: Some(req.clone()),
            header: req,
        });
        let _ep = fabric.serve("echo", 1, handler).unwrap();
        let msg = Bytes::from(payload);
        let reply = fabric.call("echo", msg.clone()).unwrap();
        prop_assert_eq!(reply.header, msg.clone());
        prop_assert_eq!(reply.bulk.unwrap(), msg);
    }
}
