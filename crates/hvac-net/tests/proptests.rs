//! Property-based tests for the RPC substrate: codec totality, bulk
//! chunking round-trips, pipelined reassembly, and fabric behaviour under
//! arbitrary payloads.

use bytes::{Bytes, BytesMut};
use hvac_net::bulk::{chunk_bulk, reassemble_bulk};
use hvac_net::fabric::{Fabric, Reply, RpcHandler};
use hvac_net::framing;
use hvac_net::pipeline::pipelined_fetch;
use hvac_net::wire;
use hvac_types::HvacError;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn wire_strings_round_trip(strings in proptest::collection::vec("[^\\u{0}]{0,64}", 0..8)) {
        let mut b = BytesMut::new();
        for s in &strings {
            wire::put_str(&mut b, s).unwrap();
        }
        let mut r = b.freeze();
        for s in &strings {
            prop_assert_eq!(&wire::get_str(&mut r).unwrap(), s);
        }
        prop_assert_eq!(bytes::Buf::remaining(&r), 0);
    }

    #[test]
    fn wire_blobs_round_trip(blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..8)) {
        let mut b = BytesMut::new();
        for blob in &blobs {
            wire::put_blob(&mut b, blob).unwrap();
        }
        let mut r = b.freeze();
        for blob in &blobs {
            prop_assert_eq!(&wire::get_blob(&mut r).unwrap()[..], &blob[..]);
        }
    }

    #[test]
    fn wire_readers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let b = Bytes::from(bytes);
        let _ = wire::get_str(&mut b.clone());
        let _ = wire::get_blob(&mut b.clone());
        let _ = wire::get_u8(&mut b.clone());
        let _ = wire::get_u32(&mut b.clone());
        let _ = wire::get_u64(&mut b.clone());
        let _ = wire::get_i64(&mut b.clone());
    }

    #[test]
    fn bulk_chunking_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..10_000), chunk in 1usize..4096) {
        let payload = Bytes::from(payload);
        let chunks = chunk_bulk(&payload, chunk);
        // Every chunk respects the size bound...
        for c in &chunks {
            prop_assert!(c.len() <= chunk);
            prop_assert!(!c.is_empty());
        }
        // ...the count is exact...
        prop_assert_eq!(chunks.len(), payload.len().div_ceil(chunk));
        // ...and reassembly is lossless.
        prop_assert_eq!(reassemble_bulk(&chunks), payload);
    }

    #[test]
    fn pipelined_fetch_round_trips_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..10_000),
        chunk in 1usize..4096,
        window in 1usize..9,
        offset in 0u64..256,
    ) {
        // A pipelined chunked read over an in-memory "file" must return the
        // exact bytes a single contiguous read would — for any payload
        // (including empty), any chunk size, and any window width. Requests
        // deliberately overrun EOF to exercise short-read reassembly.
        let data = Bytes::from(payload);
        let fetch = |off: u64, len: usize| {
            let start = (off as usize).min(data.len());
            let end = (start + len).min(data.len());
            Ok(data.slice(start..end))
        };
        let len = data.len() + 512; // always runs past EOF
        let out = pipelined_fetch(offset, len, chunk, window, fetch).unwrap();
        let expected = data.slice((offset as usize).min(data.len())..);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn framing_request_round_trips(
        req_id in any::<u64>(),
        deadline_ms in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let wire_bytes = framing::encode_request(req_id, deadline_ms, &payload, framing::DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = &wire_bytes[..];
        let body = framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME).unwrap().unwrap();
        let decoded = framing::decode_request(body).unwrap();
        prop_assert_eq!(decoded.req_id, req_id);
        prop_assert_eq!(decoded.deadline_ms, deadline_ms);
        prop_assert_eq!(decoded.payload.as_ref(), &payload[..]);
        // Clean EOF after the frame, not an error.
        prop_assert!(framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn framing_reply_round_trips(
        req_id in any::<u64>(),
        header in proptest::collection::vec(any::<u8>(), 0..1024),
        has_bulk in any::<bool>(),
        bulk_body in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let bulk = if has_bulk { Some(bulk_body) } else { None };
        let reply = Reply {
            header: Bytes::from(header.clone()),
            bulk: bulk.clone().map(Bytes::from),
        };
        let wire_bytes = framing::encode_reply(req_id, &reply, framing::DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = &wire_bytes[..];
        let body = framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME).unwrap().unwrap();
        let decoded = framing::decode_reply(body).unwrap();
        prop_assert_eq!(decoded.req_id, req_id);
        prop_assert_eq!(decoded.reply.header.as_ref(), &header[..]);
        prop_assert_eq!(decoded.reply.bulk.map(|b| b.to_vec()), bulk);
    }

    #[test]
    fn truncated_frames_are_protocol_errors_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut_fraction in 0.0f64..1.0,
    ) {
        // Every strict prefix of a valid frame must decode to a typed
        // Protocol error (mid-frame EOF), never a panic or a bogus frame.
        let frame = framing::encode_request(9, 1000, &payload, framing::DEFAULT_MAX_FRAME).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < frame.len());
        if cut == 0 {
            // Zero bytes is a clean EOF at a frame boundary, not an error.
            let mut cursor = &frame[..0];
            prop_assert!(framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME).unwrap().is_none());
        } else {
            let mut cursor = &frame[..cut];
            let err = framing::read_frame(&mut cursor, framing::DEFAULT_MAX_FRAME).unwrap_err();
            prop_assert!(matches!(err, HvacError::Protocol(_)), "{}", err);
        }
    }

    #[test]
    fn garbage_frames_never_panic_and_never_overallocate(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Arbitrary bytes through the frame reader: any outcome but a panic
        // or an unbounded allocation is acceptable, and the tiny max_frame
        // bounds what a hostile length prefix can make us allocate.
        let mut cursor = &garbage[..];
        let _ = framing::read_frame(&mut cursor, 1024);
        // Arbitrary bytes as a frame *body* through both decoders.
        let _ = framing::decode_request(Bytes::from(garbage.clone()));
        let _ = framing::decode_reply(Bytes::from(garbage));
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation(
        len in any::<u32>(),
        kind_ok in any::<bool>(),
    ) {
        // A header advertising up to 4 GiB of body on a 64 KiB cap must be
        // refused without allocating the advertised length.
        let cap = 64 * 1024;
        prop_assume!(len as usize > cap);
        let magic = if kind_ok { framing::FRAME_MAGIC } else { 0xDEAD_BEEF };
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&magic.to_le_bytes());
        hdr.extend_from_slice(&len.to_le_bytes());
        let mut cursor = &hdr[..];
        let err = framing::read_frame(&mut cursor, cap).unwrap_err();
        prop_assert!(matches!(err, HvacError::Protocol(_)), "{}", err);
    }

    #[test]
    fn fabric_echoes_arbitrary_payloads(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let fabric = Arc::new(Fabric::new());
        let handler: Arc<dyn RpcHandler> = Arc::new(|req: Bytes| Reply {
            bulk: Some(req.clone()),
            header: req,
        });
        let _ep = fabric.serve("echo", 1, handler).unwrap();
        let msg = Bytes::from(payload);
        let reply = fabric.call("echo", msg.clone()).unwrap();
        prop_assert_eq!(reply.header, msg.clone());
        prop_assert_eq!(reply.bulk.unwrap(), msg);
    }
}
