//! Integration tests for the real socket transport behind [`Fabric`].
//!
//! Everything the loopback fabric promises — byte-exact replies, the
//! stats-ledger invariant, all five fault-injector actions, down-latch
//! semantics — must hold identically when the frames travel through the
//! kernel. These tests run each contract over TCP and Unix-domain sockets,
//! including the cross-fabric case (a client fabric resolving a server
//! served by a *different* fabric, which is the in-process stand-in for
//! cross-process deployment).

use bytes::Bytes;
use hvac_net::socket::{EndpointUri, SocketConfig, SocketFamily};
use hvac_net::{Fabric, FaultSpec, Reply, RpcHandler};
use hvac_types::HvacError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Echo handler: header = request reversed, bulk = request repeated twice.
/// Asymmetric on purpose so a mixed-up header/bulk split cannot pass.
fn echo_handler() -> Arc<dyn RpcHandler> {
    Arc::new(|req: Bytes| -> Reply {
        let mut header: Vec<u8> = req.to_vec();
        header.reverse();
        let mut bulk = Vec::with_capacity(req.len() * 2);
        bulk.extend_from_slice(&req);
        bulk.extend_from_slice(&req);
        Reply {
            header: Bytes::from(header),
            bulk: if req.is_empty() {
                None
            } else {
                Some(Bytes::from(bulk))
            },
        }
    })
}

fn round_trip_on(family: SocketFamily) {
    let fabric = Arc::new(Fabric::socket(family));
    let _ep = fabric.serve("node0/srv0", 2, echo_handler()).unwrap();

    // Metadata-only reply.
    let reply = fabric.call("node0/srv0", Bytes::new()).unwrap();
    assert!(reply.header.is_empty());
    assert!(reply.bulk.is_none());

    // Multi-megabyte bulk payload: spans many kernel read()s, so a framing
    // bug that only shows up on short reads cannot hide.
    let big: Vec<u8> = (0..3 * 1024 * 1024u32)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let reply = fabric.call("node0/srv0", Bytes::from(big.clone())).unwrap();
    let want_header: Vec<u8> = big.iter().rev().copied().collect();
    assert_eq!(reply.header.as_ref(), want_header.as_slice());
    let bulk = reply.bulk.expect("bulk expected");
    assert_eq!(&bulk[..big.len()], big.as_slice());
    assert_eq!(&bulk[big.len()..], big.as_slice());

    let (rpcs, req_b, reply_b, bulk_b, failed) = fabric.stats().snapshot();
    assert_eq!((rpcs, failed), (2, 0));
    assert_eq!(req_b, big.len() as u64);
    assert_eq!(reply_b, big.len() as u64);
    assert_eq!(bulk_b, 2 * big.len() as u64);
}

#[test]
fn tcp_round_trip_is_byte_exact() {
    round_trip_on(SocketFamily::Tcp);
}

#[test]
fn unix_round_trip_is_byte_exact() {
    round_trip_on(SocketFamily::Unix);
}

#[test]
fn concurrent_calls_multiplex_over_one_pooled_connection() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("s", 4, echo_handler()).unwrap();

    let threads: Vec<_> = (0..8u8)
        .map(|t| {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                for i in 0..25u8 {
                    let payload = Bytes::from(vec![t, i, t ^ i, 0xAB]);
                    let reply = fabric.call("s", payload.clone()).unwrap();
                    let mut want: Vec<u8> = payload.to_vec();
                    want.reverse();
                    assert_eq!(reply.header.as_ref(), want.as_slice());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (rpcs, req_b, _, _, failed) = fabric.stats().snapshot();
    assert_eq!((rpcs, failed), (200, 0));
    assert_eq!(req_b, 200 * 4);
}

#[test]
fn cross_fabric_client_resolves_a_registered_endpoint() {
    // Server side: its own fabric, auto-bound ephemeral TCP address.
    let server_fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = server_fabric
        .serve("node0/srv0", 2, echo_handler())
        .unwrap();
    let uri = server_fabric.endpoint_uri("node0/srv0").unwrap();
    assert!(uri.starts_with("tcp:"), "{uri}");

    // Client side: a separate fabric (as a separate process would build)
    // that only knows the advertised URI.
    let client = Arc::new(Fabric::socket(SocketFamily::Tcp));
    client.register_endpoint("node0/srv0", &uri).unwrap();
    let reply = client
        .call("node0/srv0", Bytes::from_static(b"hello"))
        .unwrap();
    assert_eq!(reply.header.as_ref(), b"olleh");

    // Loopback fabrics have no addresses to register.
    let loopback = Arc::new(Fabric::new());
    assert!(matches!(
        loopback.register_endpoint("x", "tcp:127.0.0.1:1"),
        Err(HvacError::InvalidConfig(_))
    ));
}

#[test]
fn endpoint_list_env_round_trip() {
    // `socket_from_env` is what a standalone client process runs at
    // startup; exercise the whole env → registry → RPC path.
    let server_fabric = Arc::new(Fabric::socket(SocketFamily::Unix));
    let _ep = server_fabric
        .serve("node0/srv0", 1, echo_handler())
        .unwrap();
    let uri = server_fabric.endpoint_uri("node0/srv0").unwrap();

    std::env::set_var("HVAC_ENDPOINTS", format!("node0/srv0={uri}"));
    let client = Arc::new(Fabric::socket_from_env().unwrap());
    std::env::remove_var("HVAC_ENDPOINTS");

    let reply = client
        .call("node0/srv0", Bytes::from_static(b"abc"))
        .unwrap();
    assert_eq!(reply.header.as_ref(), b"cba");
}

#[test]
fn duplicate_serve_is_rejected() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("dup", 1, echo_handler()).unwrap();
    let err = fabric.serve("dup", 1, echo_handler()).unwrap_err();
    assert!(matches!(err, HvacError::InvalidConfig(_)), "{err}");
}

#[test]
fn unreachable_endpoint_is_server_down_and_moves_no_bytes() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    // Registered but nobody listening: the dial fails.
    fabric
        .register_endpoint("ghost", "tcp:127.0.0.1:1")
        .unwrap();
    let err = fabric
        .call_with_deadline(
            "ghost",
            Bytes::from_static(b"xxxx"),
            Duration::from_millis(500),
        )
        .unwrap_err();
    assert!(matches!(err, HvacError::ServerDown(_)), "{err}");
    let (rpcs, req_b, _, _, failed) = fabric.stats().snapshot();
    assert_eq!((rpcs, req_b, failed), (0, 0, 1));
}

#[test]
fn client_reconnects_after_server_restart() {
    // Unix sockets give us a stable address across restarts.
    let path = std::env::temp_dir().join(format!("hvac-restart-{}.sock", std::process::id()));
    let uri = format!("unix:{}", path.display());

    let server_fabric = Arc::new(Fabric::socket(SocketFamily::Unix));
    server_fabric.register_endpoint("s", &uri).unwrap();
    let ep = server_fabric.serve("s", 1, echo_handler()).unwrap();

    let client = Arc::new(Fabric::socket(SocketFamily::Unix));
    client.register_endpoint("s", &uri).unwrap();
    assert_eq!(
        client
            .call("s", Bytes::from_static(b"one"))
            .unwrap()
            .header
            .as_ref(),
        b"eno"
    );

    // Server goes away: the pooled connection dies and calls fail.
    drop(ep);
    assert!(client
        .call_with_deadline("s", Bytes::from_static(b"two"), Duration::from_millis(500))
        .is_err());

    // Server comes back on the same address: the pool dials afresh.
    let server_fabric2 = Arc::new(Fabric::socket(SocketFamily::Unix));
    server_fabric2.register_endpoint("s", &uri).unwrap();
    let _ep2 = server_fabric2.serve("s", 1, echo_handler()).unwrap();
    let mut revived = None;
    for _ in 0..20 {
        match client.call_with_deadline("s", Bytes::from_static(b"three"), Duration::from_secs(2)) {
            Ok(r) => {
                revived = Some(r);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let reply = revived.expect("client never reconnected");
    assert_eq!(reply.header.as_ref(), b"eerht");
}

#[test]
fn set_down_latches_the_socket_endpoint() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("d", 1, echo_handler()).unwrap();
    assert!(fabric.is_up("d"));
    assert!(fabric.set_down("d", true));
    assert!(!fabric.is_up("d"));
    let err = fabric.call("d", Bytes::new()).unwrap_err();
    assert!(matches!(err, HvacError::ServerDown(_)), "{err}");
    assert!(fabric.set_down("d", false));
    assert!(fabric.call("d", Bytes::new()).is_ok());
}

// ---- fault-injector parity: all five actions over real sockets ----------

#[test]
fn injected_error_and_delay_work_over_sockets() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("f", 1, echo_handler()).unwrap();

    fabric.fault_injector().set(
        "f",
        FaultSpec {
            error_prob: 1.0,
            ..FaultSpec::default()
        },
    );
    let err = fabric.call("f", Bytes::new()).unwrap_err();
    assert!(matches!(err, HvacError::Rpc(_)), "{err}");

    fabric.fault_injector().set(
        "f",
        FaultSpec {
            delay_prob: 1.0,
            delay: Duration::from_millis(60),
            ..FaultSpec::default()
        },
    );
    let start = Instant::now();
    fabric.call("f", Bytes::from_static(b"x")).unwrap();
    assert!(start.elapsed() >= Duration::from_millis(60));
    fabric.fault_injector().clear_all();
}

#[test]
fn dropped_requests_time_out_and_never_reach_the_server() {
    let served = Arc::new(AtomicU64::new(0));
    let counter = served.clone();
    let handler: Arc<dyn RpcHandler> = Arc::new(move |req: Bytes| -> Reply {
        counter.fetch_add(1, Ordering::Relaxed);
        Reply {
            header: req,
            bulk: None,
        }
    });
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("drp", 1, handler).unwrap();
    fabric
        .fault_injector()
        .set("drp", FaultSpec::always_drop(7));

    let err = fabric
        .call_with_deadline("drp", Bytes::from_static(b"x"), Duration::from_millis(40))
        .unwrap_err();
    assert!(matches!(err, HvacError::RpcTimeout { .. }), "{err}");
    // The request was dropped client-side: no bytes moved, nothing served.
    let (_, req_b, _, _, failed) = fabric.stats().snapshot();
    assert_eq!((req_b, failed), (0, 1));
    assert_eq!(served.load(Ordering::Relaxed), 0);
}

#[test]
fn hung_server_serves_the_request_but_the_caller_times_out() {
    let served = Arc::new(AtomicU64::new(0));
    let counter = served.clone();
    let handler: Arc<dyn RpcHandler> = Arc::new(move |req: Bytes| -> Reply {
        counter.fetch_add(1, Ordering::Relaxed);
        Reply {
            header: req,
            bulk: None,
        }
    });
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("hng", 1, handler).unwrap();
    fabric
        .fault_injector()
        .set("hng", FaultSpec::always_hang(7));

    let err = fabric
        .call_with_deadline("hng", Bytes::from_static(b"abc"), Duration::from_millis(80))
        .unwrap_err();
    assert!(matches!(err, HvacError::RpcTimeout { .. }), "{err}");
    // Hang ≠ drop: the request *was* delivered (bytes counted, handler ran)
    // but the reply was abandoned.
    let (rpcs, req_b, _, _, failed) = fabric.stats().snapshot();
    assert_eq!((rpcs, req_b, failed), (0, 3, 1));
    for _ in 0..40 {
        if served.load(Ordering::Relaxed) == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(served.load(Ordering::Relaxed), 1);
}

#[test]
fn crash_latches_the_endpoint_down_until_revived() {
    let fabric = Arc::new(Fabric::socket(SocketFamily::Tcp));
    let _ep = fabric.serve("c", 1, echo_handler()).unwrap();
    fabric.fault_injector().set("c", FaultSpec::always_crash(3));

    let err = fabric.call("c", Bytes::new()).unwrap_err();
    assert!(matches!(err, HvacError::ServerDown(_)), "{err}");
    assert!(!fabric.is_up("c"));

    // The latch persists even after the fault is disarmed.
    fabric.fault_injector().clear_all();
    let err = fabric.call("c", Bytes::new()).unwrap_err();
    assert!(matches!(err, HvacError::ServerDown(_)), "{err}");

    // Explicit revival restores service.
    assert!(fabric.set_down("c", false));
    assert!(fabric.call("c", Bytes::new()).is_ok());
}

#[test]
fn frame_cap_is_enforced_on_the_client_side() {
    let fabric = Arc::new(Fabric::socket_with(SocketConfig {
        family: SocketFamily::Tcp,
        max_frame: 1024,
        ..SocketConfig::default()
    }));
    let _ep = fabric.serve("cap", 1, echo_handler()).unwrap();
    let err = fabric
        .call("cap", Bytes::from(vec![0u8; 4096]))
        .unwrap_err();
    assert!(matches!(err, HvacError::Protocol(_)), "{err}");
    let (rpcs, req_b, _, _, failed) = fabric.stats().snapshot();
    assert_eq!((rpcs, req_b, failed), (0, 0, 1));
}

#[test]
fn uri_parse_accepts_what_serve_advertises() {
    for family in [SocketFamily::Tcp, SocketFamily::Unix] {
        let fabric = Arc::new(Fabric::socket(family));
        let _ep = fabric.serve("adv", 1, echo_handler()).unwrap();
        let uri = fabric.endpoint_uri("adv").unwrap();
        EndpointUri::parse(&uri).unwrap();
    }
}
