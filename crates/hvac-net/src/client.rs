//! Client-side RPC convenience wrapper.
//!
//! HVAC clients hold one [`RpcClient`] per process; it remembers the fabric
//! and offers retry-on-replica semantics for the fail-over extension
//! (paper §III-H).

use crate::fabric::{Fabric, Reply};
use bytes::Bytes;
use hvac_types::{HvacError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A handle for issuing RPCs over a [`Fabric`].
pub struct RpcClient {
    fabric: Arc<Fabric>,
    calls: AtomicU64,
    failovers: AtomicU64,
}

impl RpcClient {
    /// Bind a client to a fabric.
    pub fn new(fabric: Arc<Fabric>) -> Self {
        Self {
            fabric,
            calls: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Issue one RPC to a single address.
    pub fn call(&self, addr: &str, request: Bytes) -> Result<Reply> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.fabric.call(addr, request)
    }

    /// Issue an RPC to the first healthy address in `addrs` (replica
    /// preference order). Every transient failure — `ServerDown`, a typed
    /// `RpcTimeout` from a hung server, a transport error — triggers
    /// fail-over; fatal errors from a live server are returned as-is.
    pub fn call_with_failover(&self, addrs: &[String], request: Bytes) -> Result<Reply> {
        if addrs.is_empty() {
            return Err(HvacError::InvalidConfig("empty replica set".into()));
        }
        let mut last_err = None;
        for (i, addr) in addrs.iter().enumerate() {
            match self.call(addr, request.clone()) {
                Ok(reply) => {
                    if i > 0 {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Err(e) if e.is_retriable() => last_err = Some(e),
                Err(other) => return Err(other),
            }
        }
        // The loop body ran at least once (addrs is non-empty) and only
        // falls through on ServerDown, so last_err is Some; the fallback
        // mirrors the empty-set error above rather than panicking.
        Err(last_err.unwrap_or_else(|| HvacError::InvalidConfig("empty replica set".into())))
    }

    /// `(total calls, calls answered by a non-primary replica)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::RpcHandler;

    fn tagged_handler(tag: &'static str) -> Arc<dyn RpcHandler> {
        Arc::new(move |_req: Bytes| Reply {
            header: Bytes::from_static(tag.as_bytes()),
            bulk: None,
        })
    }

    #[test]
    fn plain_call() {
        let fabric = Arc::new(Fabric::new());
        let _a = fabric.serve("a", 1, tagged_handler("A")).unwrap();
        let client = RpcClient::new(fabric);
        let r = client.call("a", Bytes::new()).unwrap();
        assert_eq!(&r.header[..], b"A");
        assert_eq!(client.stats(), (1, 0));
    }

    #[test]
    fn failover_skips_down_primary() {
        let fabric = Arc::new(Fabric::new());
        let a = fabric.serve("a", 1, tagged_handler("A")).unwrap();
        let _b = fabric.serve("b", 1, tagged_handler("B")).unwrap();
        let client = RpcClient::new(fabric);
        a.set_down(true);
        let r = client
            .call_with_failover(&["a".into(), "b".into()], Bytes::new())
            .unwrap();
        assert_eq!(&r.header[..], b"B");
        let (_calls, failovers) = client.stats();
        assert_eq!(failovers, 1);
    }

    #[test]
    fn failover_exhausted_returns_server_down() {
        let fabric = Arc::new(Fabric::new());
        let client = RpcClient::new(fabric);
        let err = client
            .call_with_failover(&["x".into(), "y".into()], Bytes::new())
            .unwrap_err();
        assert!(matches!(err, HvacError::ServerDown(_)));
    }

    #[test]
    fn hung_primary_fails_over_to_replica() {
        use crate::fault::FaultSpec;
        use std::time::Duration;
        let fabric = Arc::new(Fabric::with_timeout(Duration::from_millis(25)));
        let _a = fabric.serve("a", 1, tagged_handler("A")).unwrap();
        let _b = fabric.serve("b", 1, tagged_handler("B")).unwrap();
        fabric.fault_injector().set("a", FaultSpec::always_hang(11));
        let client = RpcClient::new(fabric);
        let start = std::time::Instant::now();
        let r = client
            .call_with_failover(&["a".into(), "b".into()], Bytes::new())
            .unwrap();
        assert_eq!(&r.header[..], b"B");
        assert_eq!(client.stats().1, 1, "failover counted");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "one hung replica costs one deadline, not 30 s"
        );
    }

    #[test]
    fn empty_replica_set_is_config_error() {
        let fabric = Arc::new(Fabric::new());
        let client = RpcClient::new(fabric);
        assert!(matches!(
            client.call_with_failover(&[], Bytes::new()),
            Err(HvacError::InvalidConfig(_))
        ));
    }

    #[test]
    fn healthy_primary_never_fails_over() {
        let fabric = Arc::new(Fabric::new());
        let _a = fabric.serve("a", 1, tagged_handler("A")).unwrap();
        let _b = fabric.serve("b", 1, tagged_handler("B")).unwrap();
        let client = RpcClient::new(fabric);
        for _ in 0..5 {
            let r = client
                .call_with_failover(&["a".into(), "b".into()], Bytes::new())
                .unwrap();
            assert_eq!(&r.header[..], b"A");
        }
        assert_eq!(client.stats().1, 0);
    }
}
