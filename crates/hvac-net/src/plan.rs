//! Read planning: adjacent-segment coalescing and per-destination batching.
//!
//! A segmented read issues one small RPC per fixed-size segment, each
//! placed independently by its segment hash. FanStore's observation is
//! that small-request overhead, not bandwidth, dominates distributed DL
//! reads — so the client first *plans* the request:
//!
//! 1. [`coalesce_plan`] walks the request's segments in offset order and
//!    merges runs of **adjacent** segments that hash to the **same
//!    destination** into one contiguous range (bounded by
//!    `max_coalesced_bytes`). The resulting entries exactly tile the
//!    request: no gap, no overlap, no reordering, and never a merge across
//!    destinations — so each entry is still a single-server read.
//! 2. The caller groups entries per destination (order preserved) and
//!    ships each group as **one** batch RPC via the
//!    [`sq`](crate::sq) submission queue, using the
//!    [`encode_batch_items`]/[`decode_batch_items`] payload codec below
//!    (which rides inside the ordinary request framing of
//!    [`framing`](crate::framing)).
//!
//! Planning is pure computation over offsets — no I/O, no locks — which is
//! what makes it property-testable: for arbitrary segment maps the plan
//! must tile the request exactly and the codec must round-trip.

use bytes::{Bytes, BytesMut};
use hvac_types::{HvacError, Result};

use crate::wire;

/// One coalesced read range: `len` bytes at `offset`, covering segments
/// `first_seg ..= last_seg` of the file, all of which place on `dest`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry<D> {
    /// Destination every merged segment hashes to.
    pub dest: D,
    /// Byte offset of the range start (within the file).
    pub offset: u64,
    /// Range length in bytes.
    pub len: u64,
    /// Index of the first segment merged into this range.
    pub first_seg: u64,
    /// Index of the last segment merged into this range (inclusive).
    pub last_seg: u64,
}

/// Plan a segmented read of `len` bytes at `offset` in a file whose
/// segments are `segment_size` bytes: merge adjacent same-destination
/// segments into contiguous ranges of at most `max_coalesced_bytes`.
///
/// `dest_of(seg_index)` is the placement oracle (typically "home server of
/// segment `i` under the current view"). The returned entries are in
/// strictly ascending offset order and exactly tile `[offset,
/// offset+len)`; a `max_coalesced_bytes` of zero (or anything smaller than
/// one segment) disables merging rather than producing empty ranges.
///
/// `len == 0` yields an empty plan. Panics if `segment_size` is zero or the
/// range end overflows `u64` (the caller validates its options, mirroring
/// `pipelined_fetch`).
pub fn coalesce_plan<D, F>(
    offset: u64,
    len: u64,
    segment_size: u64,
    max_coalesced_bytes: u64,
    dest_of: F,
) -> Vec<PlanEntry<D>>
where
    D: PartialEq,
    F: Fn(u64) -> D,
{
    assert!(segment_size > 0, "segment size must be positive");
    let mut entries: Vec<PlanEntry<D>> = Vec::new();
    if len == 0 {
        return entries;
    }
    assert!(
        offset.checked_add(len).is_some(),
        "read range end overflows u64"
    );
    let end = offset + len;
    let mut at = offset;
    while at < end {
        let seg = at / segment_size;
        // A range never crosses a segment boundary unless it is merged, so
        // each iteration covers the remainder of exactly one segment.
        let seg_end = (seg + 1).saturating_mul(segment_size).min(end);
        let piece = seg_end - at;
        let dest = dest_of(seg);
        match entries.last_mut() {
            Some(prev)
                if prev.dest == dest
                    && prev.offset + prev.len == at
                    && prev.len + piece <= max_coalesced_bytes =>
            {
                prev.len += piece;
                prev.last_seg = seg;
            }
            _ => entries.push(PlanEntry {
                dest,
                offset: at,
                len: piece,
                first_seg: seg,
                last_seg: seg,
            }),
        }
        at = seg_end;
    }
    entries
}

/// One read in a batch RPC: `len` bytes at `offset` of `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// File path (the cache key namespace, same as `Request::ReadSegment`).
    pub path: String,
    /// Byte offset within the file.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
}

/// Sanity cap on a decoded batch's item count: far above any real batch
/// (clients cap batches at tens of items) but small enough that a hostile
/// count can't size a meaningful allocation.
pub const MAX_BATCH_ITEMS: usize = 65_536;

/// Encode a batch of read items as a length-prefixed payload:
/// `[count u32][item: path, offset u64, len u64]*`. The payload rides
/// inside the ordinary request framing — batching changes how many reads
/// share one frame, not the frame format.
pub fn encode_batch_items(buf: &mut BytesMut, items: &[BatchItem]) -> Result<()> {
    let count = u32::try_from(items.len()).map_err(|_| {
        HvacError::Protocol(format!("batch of {} items exceeds u32 count", items.len()))
    })?;
    if items.len() > MAX_BATCH_ITEMS {
        return Err(HvacError::Protocol(format!(
            "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item cap",
            items.len()
        )));
    }
    use bytes::BufMut;
    buf.put_u32_le(count);
    for item in items {
        wire::put_str(buf, &item.path)?;
        buf.put_u64_le(item.offset);
        buf.put_u64_le(item.len);
    }
    Ok(())
}

/// Decode a batch payload produced by [`encode_batch_items`]. Bounded:
/// the item count is validated against [`MAX_BATCH_ITEMS`] before any
/// allocation is sized from it.
pub fn decode_batch_items(buf: &mut Bytes) -> Result<Vec<BatchItem>> {
    let count = wire::get_u32(buf)? as usize;
    if count > MAX_BATCH_ITEMS {
        return Err(HvacError::Protocol(format!(
            "batch count {count} exceeds the {MAX_BATCH_ITEMS}-item cap"
        )));
    }
    let mut items = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let path = wire::get_str(buf)?;
        let offset = wire::get_u64(buf)?;
        let len = wire::get_u64(buf)?;
        items.push(BatchItem { path, offset, len });
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiles<D: PartialEq + std::fmt::Debug>(plan: &[PlanEntry<D>], offset: u64, len: u64) {
        if len == 0 {
            assert!(plan.is_empty());
            return;
        }
        let mut at = offset;
        for e in plan {
            assert_eq!(e.offset, at, "gap or overlap at {at}");
            assert!(e.len > 0, "empty range");
            at += e.len;
        }
        assert_eq!(at, offset + len, "plan does not cover the request");
    }

    #[test]
    fn uniform_destination_merges_up_to_the_cap() {
        // 10 segments of 100 B, all on one server, cap 350 B → ranges of
        // 3+ segments: 300,300,300,100.
        let plan = coalesce_plan(0, 1000, 100, 350, |_| 0u32);
        assert_tiles(&plan, 0, 1000);
        let lens: Vec<u64> = plan.iter().map(|e| e.len).collect();
        assert_eq!(lens, vec![300, 300, 300, 100]);
        assert_eq!((plan[0].first_seg, plan[0].last_seg), (0, 2));
    }

    #[test]
    fn never_merges_across_destinations() {
        // Alternating homes: nothing can merge.
        let plan = coalesce_plan(0, 800, 100, u64::MAX, |seg| seg % 2);
        assert_tiles(&plan, 0, 800);
        assert_eq!(plan.len(), 8);
    }

    #[test]
    fn zero_cap_disables_merging() {
        let plan = coalesce_plan(0, 500, 100, 0, |_| 0u32);
        assert_tiles(&plan, 0, 500);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn unaligned_offset_and_tail_are_partial_segments() {
        // Read [150, 460) of a 100 B-segment file on one home: pieces are
        // 50 (rest of seg 1), 100, 100, 60 — merged into one range when
        // the cap allows.
        let plan = coalesce_plan(150, 310, 100, u64::MAX, |_| 0u32);
        assert_tiles(&plan, 150, 310);
        assert_eq!(plan.len(), 1);
        assert_eq!((plan[0].first_seg, plan[0].last_seg), (1, 4));
        let unmerged = coalesce_plan(150, 310, 100, 1, |_| 0u32);
        assert_tiles(&unmerged, 150, 310);
        assert_eq!(unmerged.len(), 4);
        assert_eq!(unmerged[0].len, 50);
        assert_eq!(unmerged[3].len, 60);
    }

    #[test]
    fn empty_read_is_an_empty_plan() {
        assert!(coalesce_plan(500, 0, 100, 1000, |_| 0u32).is_empty());
    }

    #[test]
    fn batch_codec_round_trips() {
        let items = vec![
            BatchItem {
                path: "/gpfs/train/a.bin".into(),
                offset: 0,
                len: 4096,
            },
            BatchItem {
                path: "/gpfs/train/b.bin".into(),
                offset: u64::MAX - 7,
                len: 7,
            },
        ];
        let mut buf = BytesMut::new();
        encode_batch_items(&mut buf, &items).unwrap();
        let mut payload = buf.freeze();
        assert_eq!(decode_batch_items(&mut payload).unwrap(), items);
        assert_eq!(payload.len(), 0, "codec consumed exactly its payload");
    }

    #[test]
    fn hostile_batch_count_is_rejected_before_allocating() {
        use bytes::BufMut;
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_batch_items(&mut buf.freeze()),
            Err(HvacError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_batch_is_a_protocol_error() {
        let items = vec![BatchItem {
            path: "/p".into(),
            offset: 9,
            len: 9,
        }];
        let mut buf = BytesMut::new();
        encode_batch_items(&mut buf, &items).unwrap();
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut prefix = full.slice(0..cut);
            if cut < 4 {
                assert!(decode_batch_items(&mut prefix).is_err(), "cut={cut}");
            } else {
                // Count decoded but the item is truncated.
                assert!(decode_batch_items(&mut prefix).is_err(), "cut={cut}");
            }
        }
    }
}
