//! Submission-queue API for small-RPC batching.
//!
//! io_uring replaced one-syscall-per-I/O with a prepared queue of
//! submission entries drained by persistent kernel workers; this module
//! gives the HVAC client the same shape for small RPCs: `prep` entries
//! into a [`SubmissionQueue`], then `submit_and_wait` drains them —
//! dispatching up to the pool's worker count concurrently — and returns
//! one [`Completion`] per entry, matched by the caller's `user_data` tag
//! exactly like a CQE.
//!
//! Keeping the io_uring signature (prep / submit_and_wait / user_data) is
//! deliberate: a future liburing backend slots in behind this API without
//! touching callers. The current backend issues each entry through
//! [`Fabric::call_with_deadline`], so every entry carries the full
//! deadline/fault-injection semantics of a standalone RPC.
//!
//! Dispatch concurrency comes from an [`SqPool`] — a small set of
//! long-lived worker threads fed over a crossbeam channel, mirroring
//! io_uring's persistent workers. Spawning threads per submit was
//! measured at ~100 µs per read on the segmented hot path, swamping the
//! round trips it parallelized; a pool pays that cost once at client
//! construction. The submitting thread always runs the first entry
//! itself, so a submit makes progress even when every pool worker is
//! busy with other submits. Nothing here enters the `hvac-sync` lock
//! hierarchy: the queue and pool own channels and atomics only.

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use hvac_types::{HvacError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fabric::{Fabric, Reply};

/// Default number of in-flight RPCs per `submit_and_wait`.
pub const DEFAULT_SQ_DEPTH: usize = 8;

/// One prepared RPC: `payload` to `dest`, answered within `deadline`.
#[derive(Debug, Clone)]
pub struct SqEntry {
    /// Destination endpoint address (a [`Fabric`] endpoint name).
    pub dest: String,
    /// Encoded request payload, handed to the fabric verbatim.
    pub payload: Bytes,
    /// Per-entry RPC deadline.
    pub deadline: Duration,
    /// Opaque caller tag, echoed on the matching [`Completion`].
    pub user_data: u64,
}

/// One completed RPC, tagged with the submitting entry's `user_data`.
#[derive(Debug)]
pub struct Completion {
    /// The `user_data` of the [`SqEntry`] this completes.
    pub user_data: u64,
    /// The RPC outcome: a reply, or the entry's own typed error.
    pub result: Result<Reply>,
}

/// One dispatched entry in flight on a pool worker.
struct Job {
    dest: String,
    payload: Bytes,
    deadline: Duration,
    user_data: u64,
    /// Position of this entry in its submit, echoed back so the caller
    /// can reassemble completions in submission order.
    idx: usize,
    done: Sender<(usize, Completion)>,
}

struct PoolInner {
    fabric: Arc<Fabric>,
    /// Jobs dispatched to the channel and not yet completed (queued or
    /// running). Shared with every worker; used to scale a submit's
    /// overall recv bound by the backlog it queues behind.
    outstanding: Arc<AtomicU64>,
    /// `Some` for the pool's whole life; taken in `Drop` to close the
    /// queue so workers drain and exit.
    tx: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A persistent pool of RPC dispatch workers shared by every
/// [`SubmissionQueue`] built over it (io_uring's kernel workers, in
/// userspace). Cloning is cheap and shares the same workers; the threads
/// exit when the last clone drops.
#[derive(Clone)]
pub struct SqPool {
    inner: Arc<PoolInner>,
}

impl SqPool {
    /// Spawn a pool of `workers` dispatch threads (clamped to at least
    /// one) issuing through `fabric`.
    pub fn new(fabric: Arc<Fabric>, workers: usize) -> Result<Self> {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let outstanding = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx = rx.clone();
            let fabric = fabric.clone();
            let outstanding = Arc::clone(&outstanding);
            let spawned = std::thread::Builder::new()
                .name(format!("hvac-sq-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result =
                            fabric.call_with_deadline(&job.dest, job.payload, job.deadline);
                        // Submitter may have given up on the batch; a dead
                        // completion channel is not the worker's problem.
                        let _ = job.done.send((
                            job.idx,
                            Completion {
                                user_data: job.user_data,
                                result,
                            },
                        ));
                        outstanding.fetch_sub(1, Ordering::Relaxed);
                    }
                });
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(e) => {
                    // Roll back: close the queue so the already-spawned
                    // workers drain and exit, then join them.
                    drop(tx);
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(HvacError::Io(e));
                }
            }
        }
        Ok(Self {
            inner: Arc::new(PoolInner {
                fabric,
                outstanding,
                tx: Some(tx),
                threads,
            }),
        })
    }

    /// Number of dispatch workers.
    pub fn workers(&self) -> usize {
        self.inner.threads.len()
    }

    fn dispatch(&self, job: Job) {
        // `tx` is `Some` for the pool's whole life (only `Drop` takes it),
        // and workers never hang up their receiver while it lives.
        if let Some(tx) = &self.inner.tx {
            self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
            if tx.send(job).is_err() {
                self.inner.outstanding.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Overall recv bound for one submit. Per-entry deadlines are enforced by
/// the fabric once a job reaches a worker, but on a shared pool a job can
/// first sit in the channel behind `backlog` earlier jobs (and behind this
/// submit's own earlier entries) — queue wait a single `max_deadline + 5s`
/// bound does not cover, which falsely abandoned whole batches under load.
/// The pool drains at least `workers` jobs per `max_deadline` round, so
/// `ceil((backlog + dispatched) / workers)` rounds plus slack covers the
/// worst-case queueing; the bound still exists only to turn a lost worker
/// into per-slot errors instead of a hang.
fn overall_bound(max_deadline: Duration, dispatched: u64, backlog: u64, workers: u64) -> Duration {
    let rounds = backlog
        .saturating_add(dispatched)
        .div_ceil(workers.max(1))
        .max(1);
    max_deadline
        .saturating_mul(u32::try_from(rounds).unwrap_or(u32::MAX))
        .saturating_add(Duration::from_secs(5))
}

/// A prepared queue of small RPCs drained concurrently on submit.
pub struct SubmissionQueue {
    pool: SqPool,
    entries: Vec<SqEntry>,
}

impl SubmissionQueue {
    /// Create a standalone queue with its own private `depth`-worker pool.
    /// Callers on a hot path should build one [`SqPool`] up front and use
    /// [`SubmissionQueue::with_pool`] per batch instead.
    pub fn new(fabric: Arc<Fabric>, depth: usize) -> Result<Self> {
        Ok(Self {
            pool: SqPool::new(fabric, depth)?,
            entries: Vec::new(),
        })
    }

    /// Create a queue over an existing pool. Costs nothing: the queue is a
    /// prep buffer, and dispatch concurrency lives in the shared pool.
    pub fn with_pool(pool: &SqPool) -> Self {
        Self {
            pool: pool.clone(),
            entries: Vec::new(),
        }
    }

    /// Queue one entry for the next submit. No I/O happens here.
    pub fn prep(&mut self, entry: SqEntry) {
        self.entries.push(entry);
    }

    /// Number of entries queued for the next submit.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Drain the queue: dispatch every prepared entry to the pool (the
    /// first entry runs on the submitting thread itself) and block until
    /// all complete. Completions are returned in submission order (index
    /// `i` completes entry `i`); one entry failing does not cancel the
    /// others — each completion carries its own `Result`, and the caller
    /// decides whether a partial batch is usable.
    ///
    /// The queue is empty afterwards and can be re-prepped and resubmitted.
    pub fn submit_and_wait(&mut self) -> Vec<Completion> {
        let mut entries = std::mem::take(&mut self.entries);
        if entries.is_empty() {
            return Vec::new();
        }
        let fabric = &self.pool.inner.fabric;
        if entries.len() == 1 {
            // Degenerate queue: no dispatch, same as a plain call.
            return entries
                .drain(..)
                .map(|e| Completion {
                    user_data: e.user_data,
                    result: fabric.call_with_deadline(&e.dest, e.payload, e.deadline),
                })
                .collect();
        }
        let n = entries.len();
        let max_deadline = entries.iter().map(|e| e.deadline).max().unwrap_or_default();
        // Snapshot the pool backlog before dispatching: our n-1 dispatched
        // jobs queue behind it, and the bound must absorb that wait.
        let backlog = self.pool.inner.outstanding.load(Ordering::Relaxed);
        let overall = overall_bound(
            max_deadline,
            (n - 1) as u64,
            backlog,
            self.pool.workers() as u64,
        );
        let (done_tx, done_rx) = bounded::<(usize, Completion)>(n);
        let mut drained = entries.drain(..);
        let Some(first) = drained.next() else {
            return Vec::new();
        };
        for (off, e) in drained.enumerate() {
            self.pool.dispatch(Job {
                dest: e.dest,
                payload: e.payload,
                deadline: e.deadline,
                user_data: e.user_data,
                idx: off + 1,
                done: done_tx.clone(),
            });
        }
        let mut slots: Vec<Option<Completion>> = (0..n).map(|_| None).collect();
        slots[0] = Some(Completion {
            user_data: first.user_data,
            result: fabric.call_with_deadline(&first.dest, first.payload, first.deadline),
        });
        let start = Instant::now();
        for _ in 1..n {
            match done_rx.recv_timeout(overall.saturating_sub(start.elapsed())) {
                Ok((idx, c)) => slots[idx] = Some(c),
                Err(_) => break,
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or(Completion {
                    user_data: u64::MAX,
                    result: Err(HvacError::Rpc(
                        "submission queue lost a dispatch worker".into(),
                    )),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::RpcHandler;

    struct Echo;
    impl RpcHandler for Echo {
        fn handle(&self, request: Bytes) -> Reply {
            Reply {
                header: request,
                bulk: None,
            }
        }
    }

    fn fabric_with_echo(addrs: &[&str]) -> (Arc<Fabric>, Vec<crate::fabric::ServerEndpoint>) {
        let fabric = Arc::new(Fabric::new());
        let servers = addrs
            .iter()
            .map(|addr| fabric.serve(addr, 2, Arc::new(Echo)).unwrap())
            .collect();
        (fabric, servers)
    }

    #[test]
    fn completions_come_back_in_submission_order() {
        let (fabric, _servers) = fabric_with_echo(&["s0", "s1"]);
        let mut sq = SubmissionQueue::new(fabric, 4).unwrap();
        for i in 0..16u64 {
            sq.prep(SqEntry {
                dest: format!("s{}", i % 2),
                payload: Bytes::from(format!("req-{i}")),
                deadline: Duration::from_secs(5),
                user_data: i,
            });
        }
        assert_eq!(sq.pending(), 16);
        let completions = sq.submit_and_wait();
        assert_eq!(sq.pending(), 0);
        assert_eq!(completions.len(), 16);
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.user_data, i as u64);
            let reply = c.result.as_ref().unwrap();
            assert_eq!(reply.header, Bytes::from(format!("req-{i}")));
        }
    }

    #[test]
    fn one_failure_does_not_poison_the_batch() {
        let (fabric, _servers) = fabric_with_echo(&["s0"]);
        let mut sq = SubmissionQueue::new(fabric, 3).unwrap();
        // The middle entry targets an endpoint that was never registered,
        // so only it fails; the batch's other completions are unaffected.
        for (i, dest) in ["s0", "nowhere", "s0"].iter().enumerate() {
            sq.prep(SqEntry {
                dest: (*dest).into(),
                payload: Bytes::from_static(b"ok"),
                deadline: Duration::from_secs(5),
                user_data: i as u64,
            });
        }
        let completions = sq.submit_and_wait();
        assert!(completions[0].result.is_ok());
        assert!(completions[1].result.is_err());
        assert!(completions[2].result.is_ok());
    }

    #[test]
    fn empty_and_single_entry_submits_avoid_dispatch() {
        let (fabric, _servers) = fabric_with_echo(&["s0"]);
        let mut sq = SubmissionQueue::new(fabric, 8).unwrap();
        assert!(sq.submit_and_wait().is_empty());
        sq.prep(SqEntry {
            dest: "s0".into(),
            payload: Bytes::from_static(b"solo"),
            deadline: Duration::from_secs(5),
            user_data: 42,
        });
        let completions = sq.submit_and_wait();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].user_data, 42);
        assert_eq!(
            completions[0].result.as_ref().unwrap().header,
            Bytes::from_static(b"solo")
        );
    }

    #[test]
    fn queue_is_reusable_after_submit() {
        let (fabric, _servers) = fabric_with_echo(&["s0"]);
        let mut sq = SubmissionQueue::new(fabric, 2).unwrap();
        for round in 0..3u64 {
            for i in 0..4u64 {
                sq.prep(SqEntry {
                    dest: "s0".into(),
                    payload: Bytes::from(format!("r{round}-{i}")),
                    deadline: Duration::from_secs(5),
                    user_data: i,
                });
            }
            let completions = sq.submit_and_wait();
            assert_eq!(completions.len(), 4);
            assert!(completions.iter().all(|c| c.result.is_ok()));
        }
    }

    #[test]
    fn one_pool_serves_many_queues_concurrently() {
        let (fabric, _servers) = fabric_with_echo(&["s0", "s1"]);
        let pool = SqPool::new(fabric, 4).unwrap();
        assert_eq!(pool.workers(), 4);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let pool = pool.clone();
                    s.spawn(move || {
                        let mut sq = SubmissionQueue::with_pool(&pool);
                        for i in 0..6u64 {
                            sq.prep(SqEntry {
                                dest: format!("s{}", i % 2),
                                payload: Bytes::from(format!("t{t}-{i}")),
                                deadline: Duration::from_secs(5),
                                user_data: i,
                            });
                        }
                        let completions = sq.submit_and_wait();
                        assert_eq!(completions.len(), 6);
                        for (i, c) in completions.iter().enumerate() {
                            assert_eq!(c.user_data, i as u64);
                            assert_eq!(
                                c.result.as_ref().unwrap().header,
                                Bytes::from(format!("t{t}-{i}"))
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn overall_bound_scales_with_queue_rounds() {
        let d = Duration::from_secs(1);
        let slack = Duration::from_secs(5);
        // Empty pool, everything fits in one round: one deadline + slack.
        assert_eq!(overall_bound(d, 3, 0, 4), d + slack);
        // 7 of our jobs + 9 backlogged jobs over 4 workers: 4 rounds.
        assert_eq!(overall_bound(d, 7, 9, 4), 4 * d + slack);
        // A busy shared pool must not shrink the bound below one round,
        // and zero workers must not divide by zero.
        assert_eq!(overall_bound(d, 0, 0, 4), d + slack);
        assert_eq!(overall_bound(d, 1, 0, 0), d + slack);
        // Absurd backlogs saturate instead of overflowing.
        let huge = overall_bound(Duration::from_secs(3600), u64::MAX, u64::MAX, 1);
        assert!(huge >= Duration::from_secs(3600));
    }

    #[test]
    fn pool_workers_exit_when_the_last_clone_drops() {
        let (fabric, _servers) = fabric_with_echo(&["s0"]);
        let pool = SqPool::new(fabric, 2).unwrap();
        let clone = pool.clone();
        drop(pool);
        // The clone still dispatches fine.
        let mut sq = SubmissionQueue::with_pool(&clone);
        for i in 0..3u64 {
            sq.prep(SqEntry {
                dest: "s0".into(),
                payload: Bytes::from_static(b"x"),
                deadline: Duration::from_secs(5),
                user_data: i,
            });
        }
        assert_eq!(sq.submit_and_wait().len(), 3);
        drop(sq);
        drop(clone); // joins the workers; a hang here would fail the test
    }
}
