//! Chunked bulk transfer.
//!
//! Mercury separates RPC metadata from bulk data and moves the latter in
//! RDMA-sized pieces. The loopback fabric does not need chunking for
//! correctness, but the protocol layer uses it so that transfer accounting
//! (and the simulator's network model) see the same message sizes a real
//! deployment would.

use crate::pool::BufferPool;
use bytes::{Bytes, BytesMut};

/// Default bulk chunk size (1 MiB, a typical RDMA registration unit).
pub const BULK_CHUNK_SIZE: usize = 1 << 20;

/// Split a payload into chunks of at most `chunk_size` bytes (zero-copy
/// slices). An empty payload produces no chunks.
pub fn chunk_bulk(payload: &Bytes, chunk_size: usize) -> Vec<Bytes> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut chunks = Vec::with_capacity(payload.len().div_ceil(chunk_size));
    let mut offset = 0;
    while offset < payload.len() {
        let end = (offset + chunk_size).min(payload.len());
        chunks.push(payload.slice(offset..end));
        offset = end;
    }
    chunks
}

/// Reassemble chunks into one contiguous payload.
pub fn reassemble_bulk(chunks: &[Bytes]) -> Bytes {
    match chunks {
        [] => Bytes::new(),
        [one] => one.clone(),
        many => {
            let total: usize = many.iter().map(|c| c.len()).sum();
            let mut out = BytesMut::with_capacity(total);
            for c in many {
                out.extend_from_slice(c);
            }
            out.freeze()
        }
    }
}

/// [`reassemble_bulk`] into a pooled buffer: the destination slab comes
/// from (and returns to) `pool` instead of a per-read heap allocation, so a
/// multi-chunk read costs one slab reuse rather than an allocator round
/// trip. Single-chunk and empty inputs stay zero-copy, exactly like the
/// unpooled path.
pub fn reassemble_bulk_pooled(chunks: &[Bytes], pool: &BufferPool) -> Bytes {
    match chunks {
        [] => Bytes::new(),
        [one] => one.clone(),
        many => {
            let total: usize = many.iter().map(|c| c.len()).sum();
            let mut out = pool.acquire(total);
            let mut at = 0usize;
            for c in many {
                out[at..at + c.len()].copy_from_slice(c);
                at += c.len();
            }
            out.freeze()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_round_trips() {
        let payload = Bytes::from(
            (0..10_000u32)
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        for chunk_size in [1usize, 7, 1024, BULK_CHUNK_SIZE, usize::MAX / 2] {
            let chunks = chunk_bulk(&payload, chunk_size);
            assert_eq!(reassemble_bulk(&chunks), payload, "chunk={chunk_size}");
        }
    }

    #[test]
    fn chunk_count_and_sizes() {
        let payload = Bytes::from(vec![7u8; 2_500_000]);
        let chunks = chunk_bulk(&payload, BULK_CHUNK_SIZE);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), BULK_CHUNK_SIZE);
        assert_eq!(chunks[1].len(), BULK_CHUNK_SIZE);
        assert_eq!(chunks[2].len(), 2_500_000 - 2 * BULK_CHUNK_SIZE);
    }

    #[test]
    fn empty_payload() {
        assert!(chunk_bulk(&Bytes::new(), 64).is_empty());
        assert_eq!(reassemble_bulk(&[]), Bytes::new());
    }

    #[test]
    fn single_chunk_is_zero_copy() {
        let payload = Bytes::from_static(b"hello");
        let chunks = chunk_bulk(&payload, 64);
        assert_eq!(chunks.len(), 1);
        // Same backing storage: slice of the original.
        assert_eq!(chunks[0].as_ptr(), payload.as_ptr());
        let joined = reassemble_bulk(&chunks);
        assert_eq!(joined.as_ptr(), payload.as_ptr());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        chunk_bulk(&Bytes::from_static(b"x"), 0);
    }

    #[test]
    fn pooled_reassembly_matches_unpooled_and_quiesces() {
        let pool = BufferPool::new();
        let payload = Bytes::from((0..50_000u32).map(|x| x as u8).collect::<Vec<u8>>());
        for chunk_size in [1usize, 977, 4096, usize::MAX / 2] {
            let chunks = chunk_bulk(&payload, chunk_size);
            let pooled = reassemble_bulk_pooled(&chunks, &pool);
            assert_eq!(pooled, reassemble_bulk(&chunks), "chunk={chunk_size}");
            if chunks.len() == 1 {
                assert_eq!(pooled.as_ptr(), payload.as_ptr(), "single chunk zero-copy");
            }
        }
        assert_eq!(pool.stats().in_flight(), 0);
        assert!(pool.stats().pool_hits > 0, "slabs were reused across reads");
    }
}
