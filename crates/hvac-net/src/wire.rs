//! A small explicit binary codec.
//!
//! HVAC's RPC messages are tiny and fixed-shape, so rather than pulling in a
//! serialization framework the protocol crates encode fields explicitly with
//! these helpers. All integers are little-endian; strings and blobs are
//! length-prefixed with a `u32`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hvac_types::{HvacError, Result};

/// Append a length-prefixed UTF-8 string.
///
/// Fails with a typed [`HvacError::Protocol`] if the string cannot be
/// represented in the `u32` length prefix (≥ 4 GiB). Truncating `len as u32`
/// here would silently produce a frame whose prefix disagrees with its body —
/// harmless on loopback where `Bytes` are handed over whole, but real
/// corruption once the encoding crosses a socket.
pub fn put_str(buf: &mut BytesMut, s: &str) -> Result<()> {
    let len = u32::try_from(s.len()).map_err(|_| {
        HvacError::Protocol(format!(
            "string length {} exceeds u32 wire prefix (max {})",
            s.len(),
            u32::MAX
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    let bytes = get_blob(buf)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|e| HvacError::Protocol(format!("invalid utf-8 in wire string: {e}")))
}

/// Append a length-prefixed byte blob.
///
/// Fails with a typed [`HvacError::Protocol`] for blobs ≥ 4 GiB, for the same
/// reason as [`put_str`]: the `u32` prefix must describe the body exactly.
pub fn put_blob(buf: &mut BytesMut, b: &[u8]) -> Result<()> {
    let len = u32::try_from(b.len()).map_err(|_| {
        HvacError::Protocol(format!(
            "blob length {} exceeds u32 wire prefix (max {})",
            b.len(),
            u32::MAX
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(b);
    Ok(())
}

/// Read a length-prefixed byte blob (zero-copy slice of the input).
pub fn get_blob(buf: &mut Bytes) -> Result<Bytes> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(HvacError::Protocol(format!(
            "truncated blob: want {len}, have {}",
            buf.remaining()
        )));
    }
    Ok(buf.split_to(len))
}

/// Read a `u8`, checking for truncation.
pub fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(HvacError::Protocol("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

/// Read a little-endian `u32`, checking for truncation.
pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(HvacError::Protocol("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

/// Read a little-endian `u64`, checking for truncation.
pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(HvacError::Protocol("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

/// Read a little-endian `i64`, checking for truncation.
pub fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(HvacError::Protocol("truncated i64".into()));
    }
    Ok(buf.get_i64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let mut b = BytesMut::new();
        put_str(&mut b, "/gpfs/alpine/data.bin").unwrap();
        put_str(&mut b, "").unwrap();
        let mut r = b.freeze();
        assert_eq!(get_str(&mut r).unwrap(), "/gpfs/alpine/data.bin");
        assert_eq!(get_str(&mut r).unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn blob_round_trip_is_zero_copy() {
        let mut b = BytesMut::new();
        put_blob(&mut b, &[1, 2, 3, 4]).unwrap();
        let mut r = b.freeze();
        let blob = get_blob(&mut r).unwrap();
        assert_eq!(&blob[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut r = Bytes::from_static(&[1, 2]);
        assert!(get_u32(&mut r.clone()).is_err());
        assert!(get_u64(&mut r.clone()).is_err());
        assert!(get_i64(&mut r.clone()).is_err());
        let mut empty = Bytes::new();
        assert!(get_u8(&mut empty).is_err());

        // Blob header says 100 bytes but only 2 follow.
        let mut b = BytesMut::new();
        b.put_u32_le(100);
        b.put_slice(&[9, 9]);
        assert!(get_blob(&mut b.freeze()).is_err());
        assert!(matches!(get_str(&mut r), Err(HvacError::Protocol(_))));
    }

    #[test]
    fn invalid_utf8_is_a_protocol_error() {
        let mut b = BytesMut::new();
        put_blob(&mut b, &[0xff, 0xfe]).unwrap();
        assert!(matches!(
            get_str(&mut b.freeze()),
            Err(HvacError::Protocol(_))
        ));
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_lengths_are_rejected_not_truncated() {
        // A payload of u32::MAX + 1 bytes used to truncate its prefix to 0 —
        // a corrupt frame. The allocation is virtual only: `vec![0; n]` maps
        // lazy zero pages and `put_blob` must fail *before* copying a byte,
        // so this test never commits 4 GiB of physical memory.
        let huge = vec![0u8; u32::MAX as usize + 1];
        let mut b = BytesMut::new();
        assert!(matches!(
            put_blob(&mut b, &huge),
            Err(HvacError::Protocol(_))
        ));
        assert!(b.is_empty(), "failed put must not write a partial prefix");
        // `put_str` shares the same checked conversion; prove the happy path
        // still round-trips at a boundary-adjacent size without the copy cost.
        assert!(u32::try_from(u32::MAX as usize).is_ok());
    }

    #[test]
    fn integer_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX);
        b.put_i64_le(-42);
        let mut r = b.freeze();
        assert_eq!(get_u8(&mut r).unwrap(), 7);
        assert_eq!(get_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(get_u64(&mut r).unwrap(), u64::MAX);
        assert_eq!(get_i64(&mut r).unwrap(), -42);
    }
}
