//! The RPC fabric: Mercury's programming model over a pluggable transport.
//!
//! A [`Fabric`] is a registry of named endpoints. Server endpoints own a
//! request queue drained by worker threads (mirroring the HVAC server's RPC
//! handler threads); clients issue blocking calls and receive a [`Reply`]
//! containing a small response header plus an optional bulk payload —
//! Mercury's RPC/bulk split.
//!
//! Two backends implement that contract: the in-process **loopback** fabric
//! (the default — queues and worker threads, no bytes leave the process)
//! and the **socket** transport of [`crate::socket`] (TCP or Unix-domain
//! streams with length-prefixed frames, per-destination connection pooling,
//! and request-id multiplexing). The backend is chosen at construction
//! ([`Fabric::new`] vs. [`Fabric::socket`]/[`Fabric::for_transport`]) and
//! is invisible to callers.
//!
//! Fault injection comes in two flavours: `set_down` (a *dead* server —
//! calls fail fast with `ServerDown`) and the seeded [`FaultInjector`]
//! (a *misbehaving* server — requests dropped, delayed, hung, or answered
//! with errors), which together exercise both halves of the paper's §III-H
//! "node-local NVMe fails ⇒ failed training run" scenario. All fault
//! decisions, liveness checks, deadline bookkeeping, and traffic accounting
//! live in backend-independent code, so the injector (including Crash
//! latching) behaves identically over loopback and real sockets. Calls
//! carry a per-call deadline ([`Fabric::call_with_deadline`]); missing it
//! returns a typed [`HvacError::RpcTimeout`] that the client's failover
//! path matches.
//!
//! The stats ledger keeps one invariant: every call lands in exactly one of
//! `rpcs` (answered) or `failed_calls` (any error), and `request_bytes`
//! counts only requests actually delivered to a server queue or socket.

use crate::fault::{FaultAction, FaultInjector};
use crate::socket::{
    CallClock, EndpointUri, ServerCore, SocketBackend, SocketConfig, SocketFamily,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hvac_sync::{classes, OrderedMutex, OrderedRwLock};
use hvac_types::{HvacError, Result, TransportKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A response to one RPC: a small header plus an optional bulk payload,
/// mirroring Mercury's separation of RPC arguments from bulk transfers.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Decoded by the protocol layer (status, sizes, ...).
    pub header: Bytes,
    /// File data moved via the bulk path; `None` for metadata-only replies.
    pub bulk: Option<Bytes>,
}

/// Server-side request handler. One handler instance serves all worker
/// threads of an endpoint, so it must be internally synchronized.
pub trait RpcHandler: Send + Sync + 'static {
    /// Process one request and produce a reply.
    fn handle(&self, request: Bytes) -> Reply;
}

impl<F> RpcHandler for F
where
    F: Fn(Bytes) -> Reply + Send + Sync + 'static,
{
    fn handle(&self, request: Bytes) -> Reply {
        self(request)
    }
}

struct Incoming {
    request: Bytes,
    reply_tx: Sender<Reply>,
}

struct EndpointSlot {
    tx: Sender<Incoming>,
    down: Arc<AtomicBool>,
}

/// Cumulative traffic counters of a fabric.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// RPCs successfully delivered to a handler.
    pub rpcs: AtomicU64,
    /// Request header bytes.
    pub request_bytes: AtomicU64,
    /// Reply header bytes.
    pub reply_bytes: AtomicU64,
    /// Bulk payload bytes.
    pub bulk_bytes: AtomicU64,
    /// Calls rejected because the target endpoint was down/absent.
    pub failed_calls: AtomicU64,
}

impl FabricStats {
    /// Snapshot of (rpcs, request_bytes, reply_bytes, bulk_bytes, failed).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.rpcs.load(Ordering::Relaxed),
            self.request_bytes.load(Ordering::Relaxed),
            self.reply_bytes.load(Ordering::Relaxed),
            self.bulk_bytes.load(Ordering::Relaxed),
            self.failed_calls.load(Ordering::Relaxed),
        )
    }
}

/// The transport behind a [`Fabric`]: in-process queues or real sockets.
enum Backend {
    Loopback {
        endpoints: OrderedRwLock<HashMap<String, EndpointSlot>>,
    },
    Socket(SocketBackend),
}

impl Backend {
    fn loopback() -> Self {
        Backend::Loopback {
            endpoints: OrderedRwLock::new(classes::FABRIC_ENDPOINTS, HashMap::new()),
        }
    }
}

/// The interconnect: endpoint registry + traffic accounting over a
/// loopback or socket backend.
pub struct Fabric {
    backend: Backend,
    stats: FabricStats,
    call_timeout: Duration,
    faults: FaultInjector,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    fn with_backend(backend: Backend) -> Self {
        Self {
            backend,
            stats: FabricStats::default(),
            call_timeout: Duration::from_secs(30),
            faults: FaultInjector::new(),
        }
    }

    /// A loopback fabric with the default 30 s call timeout.
    pub fn new() -> Self {
        Self::with_backend(Backend::loopback())
    }

    /// A loopback fabric with a custom call timeout (tests use short ones).
    pub fn with_timeout(call_timeout: Duration) -> Self {
        Self {
            call_timeout,
            ..Self::new()
        }
    }

    /// A socket-backed fabric of the given family with default knobs.
    pub fn socket(family: SocketFamily) -> Self {
        Self::socket_with(SocketConfig {
            family,
            ..SocketConfig::default()
        })
    }

    /// A socket-backed fabric with explicit [`SocketConfig`] knobs.
    pub fn socket_with(config: SocketConfig) -> Self {
        Self::with_backend(Backend::Socket(SocketBackend::new(config)))
    }

    /// A fabric for the given [`TransportKind`] (how `Cluster` and the
    /// `hvac-server` binary pick their backend).
    pub fn for_transport(kind: TransportKind) -> Self {
        match kind {
            TransportKind::Loopback => Self::new(),
            TransportKind::Tcp => Self::socket(SocketFamily::Tcp),
            TransportKind::Unix => Self::socket(SocketFamily::Unix),
        }
    }

    /// A socket-backed fabric (TCP family by default) with every endpoint
    /// named in the `HVAC_ENDPOINTS` environment variable pre-registered —
    /// the cross-process client bootstrap path.
    pub fn socket_from_env() -> Result<Self> {
        let fabric = Self::socket(SocketFamily::Tcp);
        for (name, uri) in crate::socket::endpoints_from_env()? {
            fabric.register_endpoint(&name, &uri.to_string())?;
        }
        Ok(fabric)
    }

    /// Record the concrete socket address of a logical endpoint name
    /// (`tcp:host:port` or `unix:/path`). Errors on a loopback fabric,
    /// which has no remote endpoints to point at.
    pub fn register_endpoint(&self, addr: &str, uri: &str) -> Result<()> {
        match &self.backend {
            Backend::Loopback { .. } => Err(HvacError::InvalidConfig(format!(
                "cannot register remote endpoint {addr} on a loopback fabric"
            ))),
            Backend::Socket(sb) => {
                sb.register_endpoint(addr, EndpointUri::parse(uri)?);
                Ok(())
            }
        }
    }

    /// The concrete `tcp:`/`unix:` address a logical endpoint resolves to
    /// (`None` for unknown endpoints and for loopback fabrics). Servers
    /// bound to an ephemeral address use this to announce where they
    /// actually listen.
    pub fn endpoint_uri(&self, addr: &str) -> Option<String> {
        match &self.backend {
            Backend::Loopback { .. } => None,
            Backend::Socket(sb) => sb.endpoint_uri(addr),
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The fault injector (install per-endpoint misbehaviour here).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// The default per-call timeout.
    pub fn call_timeout(&self) -> Duration {
        self.call_timeout
    }

    /// Register a server endpoint under `addr` and spawn `workers` handler
    /// threads. Returns a handle that unregisters and joins on drop.
    ///
    /// `workers == 0` is a configuration error: a worker-less endpoint
    /// would accept requests that can never be answered, so it is rejected
    /// up front (mirroring the zero `bulk_chunk`/`bulk_window` treatment)
    /// instead of being silently clamped to 1.
    pub fn serve(
        self: &Arc<Self>,
        addr: &str,
        workers: usize,
        handler: Arc<dyn RpcHandler>,
    ) -> Result<ServerEndpoint> {
        if workers == 0 {
            return Err(HvacError::InvalidConfig(format!(
                "endpoint {addr}: RPC worker count must be positive (got 0)"
            )));
        }
        let endpoints = match &self.backend {
            Backend::Loopback { endpoints } => endpoints,
            Backend::Socket(sb) => {
                let (core, down) = sb.serve(addr, workers, handler)?;
                return Ok(ServerEndpoint {
                    fabric: self.clone(),
                    addr: addr.to_string(),
                    down,
                    threads: OrderedMutex::new(classes::FABRIC_THREADS, Vec::new()),
                    core: Some(core),
                });
            }
        };
        let (tx, rx) = unbounded::<Incoming>();
        let down = Arc::new(AtomicBool::new(false));
        {
            let mut eps = endpoints.write();
            if eps.contains_key(addr) {
                return Err(HvacError::InvalidConfig(format!(
                    "endpoint {addr} already registered"
                )));
            }
            eps.insert(
                addr.to_string(),
                EndpointSlot {
                    tx,
                    down: down.clone(),
                },
            );
        }
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx: Receiver<Incoming> = rx.clone();
            let handler = handler.clone();
            let name = format!("hvac-rpc-{addr}-{w}");
            let spawned = std::thread::Builder::new().name(name).spawn(move || {
                while let Ok(incoming) = rx.recv() {
                    let reply = handler.handle(incoming.request);
                    // Receiver may have timed out; ignore send errors.
                    let _ = incoming.reply_tx.send(reply);
                }
            });
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(e) => {
                    // Roll back: unregister (dropping the queue sender) so
                    // the already-spawned workers drain and exit, then join.
                    self.unregister(addr);
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(HvacError::Io(e));
                }
            }
        }
        Ok(ServerEndpoint {
            fabric: self.clone(),
            addr: addr.to_string(),
            down,
            threads: OrderedMutex::new(classes::FABRIC_THREADS, threads),
            core: None,
        })
    }

    /// Issue a blocking RPC to `addr` with the fabric's default timeout.
    pub fn call(&self, addr: &str, request: Bytes) -> Result<Reply> {
        self.call_with_deadline(addr, request, self.call_timeout)
    }

    /// Issue a blocking RPC to `addr`, waiting at most `deadline` for the
    /// reply. A missed deadline is a typed [`HvacError::RpcTimeout`] — the
    /// caller cannot distinguish a hung server from a lost reply, and the
    /// error says exactly that much and no more.
    ///
    /// Ledger invariant: exactly one of `rpcs` (on success) or
    /// `failed_calls` (on any error) is bumped per call, and
    /// `request_bytes` counts only requests actually handed to a server
    /// queue or written to a socket.
    pub fn call_with_deadline(
        &self,
        addr: &str,
        request: Bytes,
        deadline: Duration,
    ) -> Result<Reply> {
        let result = self.call_inner(addr, request, deadline);
        match &result {
            Ok(reply) => {
                self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .reply_bytes
                    .fetch_add(reply.header.len() as u64, Ordering::Relaxed);
                if let Some(b) = &reply.bulk {
                    self.stats
                        .bulk_bytes
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.stats.failed_calls.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Backend-independent fault prologue: decide this call's fate after
    /// the liveness check (so `set_down` always wins) and before any bytes
    /// move (so a dropped request really never reaches the server). Returns
    /// whether the reply must be discarded (Hang).
    fn apply_faults(
        &self,
        addr: &str,
        down: &AtomicBool,
        deadline: Duration,
        start: Instant,
    ) -> Result<bool> {
        match self.faults.decide(addr) {
            FaultAction::None => Ok(false),
            FaultAction::Crash => {
                // Crash-stop: latch the endpoint down exactly as `set_down`
                // would, so every later call fails fast until the harness
                // revives the endpoint. The fabric only kills the transport;
                // wiping the server's cached state is `Cluster::crash_node`.
                down.store(true, Ordering::Relaxed);
                Err(HvacError::ServerDown(format!("{addr} (crashed)")))
            }
            FaultAction::Error => Err(HvacError::Rpc(format!("injected error reply from {addr}"))),
            FaultAction::Drop => {
                // The request vanished; the caller waits out its deadline.
                std::thread::sleep(deadline);
                Err(HvacError::RpcTimeout {
                    addr: addr.to_string(),
                    elapsed: start.elapsed(),
                })
            }
            FaultAction::Hang => Ok(true),
            FaultAction::Delay(d) => {
                if d >= deadline {
                    std::thread::sleep(deadline);
                    return Err(HvacError::RpcTimeout {
                        addr: addr.to_string(),
                        elapsed: start.elapsed(),
                    });
                }
                std::thread::sleep(d);
                Ok(false)
            }
        }
    }

    fn call_inner(&self, addr: &str, request: Bytes, deadline: Duration) -> Result<Reply> {
        let start = Instant::now();
        let endpoints = match &self.backend {
            Backend::Loopback { endpoints } => endpoints,
            Backend::Socket(sb) => {
                let Some((uri, down)) = sb.resolve(addr) else {
                    return Err(HvacError::ServerDown(format!("{addr} (not registered)")));
                };
                if down.load(Ordering::Relaxed) {
                    return Err(HvacError::ServerDown(addr.to_string()));
                }
                let discard_reply = self.apply_faults(addr, &down, deadline, start)?;
                return sb.dispatch(
                    addr,
                    &uri,
                    request,
                    CallClock { deadline, start },
                    discard_reply,
                    &self.stats,
                );
            }
        };
        let (tx, down) = {
            let eps = endpoints.read();
            match eps.get(addr) {
                None => {
                    return Err(HvacError::ServerDown(format!("{addr} (not registered)")));
                }
                Some(slot) => {
                    if slot.down.load(Ordering::Relaxed) {
                        return Err(HvacError::ServerDown(addr.to_string()));
                    }
                    (slot.tx.clone(), slot.down.clone())
                }
            }
        };
        let discard_reply = self.apply_faults(addr, &down, deadline, start)?;
        let request_len = request.len() as u64;
        let (reply_tx, reply_rx) = bounded::<Reply>(1);
        // The request is counted only once it is actually in the queue: a
        // closed queue (all workers dead) is a failed call that moved no
        // bytes, not a delivered request.
        tx.send(Incoming { request, reply_tx })
            .map_err(|_| HvacError::ServerDown(format!("{addr} (queue closed)")))?;
        self.stats
            .request_bytes
            .fetch_add(request_len, Ordering::Relaxed);
        if discard_reply {
            // Hung server: the handler runs, but the reply is dropped on the
            // floor. Waiting the full remaining deadline reproduces exactly
            // what the caller of a wedged endpoint experiences.
            std::thread::sleep(deadline.saturating_sub(start.elapsed()));
            return Err(HvacError::RpcTimeout {
                addr: addr.to_string(),
                elapsed: start.elapsed(),
            });
        }
        reply_rx
            .recv_timeout(deadline.saturating_sub(start.elapsed()))
            .map_err(|_| HvacError::RpcTimeout {
                addr: addr.to_string(),
                elapsed: start.elapsed(),
            })
    }

    /// Mark an endpoint up/down without unregistering it (fault injection).
    /// Returns false if the endpoint is unknown.
    pub fn set_down(&self, addr: &str, down: bool) -> bool {
        match &self.backend {
            Backend::Loopback { endpoints } => {
                let eps = endpoints.read();
                match eps.get(addr) {
                    Some(slot) => {
                        slot.down.store(down, Ordering::Relaxed);
                        true
                    }
                    None => false,
                }
            }
            Backend::Socket(sb) => sb.set_down(addr, down),
        }
    }

    /// Whether an endpoint exists and is up.
    pub fn is_up(&self, addr: &str) -> bool {
        match &self.backend {
            Backend::Loopback { endpoints } => {
                let eps = endpoints.read();
                eps.get(addr)
                    .map(|s| !s.down.load(Ordering::Relaxed))
                    .unwrap_or(false)
            }
            Backend::Socket(sb) => sb.is_up(addr),
        }
    }

    /// Registered endpoint names (sorted, for reporting).
    pub fn endpoint_names(&self) -> Vec<String> {
        match &self.backend {
            Backend::Loopback { endpoints } => {
                let mut names: Vec<String> = endpoints.read().keys().cloned().collect();
                names.sort();
                names
            }
            Backend::Socket(sb) => sb.endpoint_names(),
        }
    }

    fn unregister(&self, addr: &str) {
        match &self.backend {
            Backend::Loopback { endpoints } => {
                endpoints.write().remove(addr);
            }
            Backend::Socket(sb) => sb.unregister(addr),
        }
    }
}

/// A live server endpoint; dropping it unregisters the address and joins the
/// worker threads (the HVAC server's job-lifetime coupling, §III-C).
pub struct ServerEndpoint {
    fabric: Arc<Fabric>,
    addr: String,
    down: Arc<AtomicBool>,
    threads: OrderedMutex<Vec<JoinHandle<()>>>,
    /// Socket backends park their listener/worker machinery here; loopback
    /// endpoints keep it `None`. Dropped (= stopped and joined) after the
    /// address is unregistered.
    core: Option<ServerCore>,
}

impl std::fmt::Debug for ServerEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerEndpoint")
            .field("addr", &self.addr)
            .field("down", &self.down.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServerEndpoint {
    /// The registered address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Fault-inject this endpoint.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }
}

impl Drop for ServerEndpoint {
    fn drop(&mut self) {
        self.fabric.unregister(&self.addr);
        // Unregistering drops the sender held in the registry; worker threads
        // exit when every sender is gone and the queue drains.
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // Socket machinery (listener, connection readers, workers) stops
        // and joins here.
        self.core.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler() -> Arc<dyn RpcHandler> {
        Arc::new(|req: Bytes| Reply {
            header: req.clone(),
            bulk: None,
        })
    }

    #[test]
    fn call_round_trip() {
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("node0/srv0", 2, echo_handler()).unwrap();
        let reply = fabric
            .call("node0/srv0", Bytes::from_static(b"ping"))
            .unwrap();
        assert_eq!(&reply.header[..], b"ping");
        assert!(reply.bulk.is_none());
        let (rpcs, req, rep, bulk, failed) = fabric.stats().snapshot();
        assert_eq!(rpcs, 1);
        assert_eq!(req, 4);
        assert_eq!(rep, 4);
        assert_eq!(bulk, 0);
        assert_eq!(failed, 0);
    }

    #[test]
    fn unknown_endpoint_is_server_down() {
        let fabric = Arc::new(Fabric::new());
        let err = fabric.call("nowhere", Bytes::new()).unwrap_err();
        assert!(matches!(err, HvacError::ServerDown(_)));
        assert_eq!(fabric.stats().snapshot().4, 1);
    }

    #[test]
    fn zero_workers_is_invalid_config() {
        let fabric = Arc::new(Fabric::new());
        let err = fabric.serve("z", 0, echo_handler()).unwrap_err();
        assert!(matches!(err, HvacError::InvalidConfig(_)), "{err}");
        assert!(
            fabric.endpoint_names().is_empty(),
            "a rejected serve must not leave a registration behind"
        );
        // Same contract on the socket backend.
        let fabric = Arc::new(Fabric::socket(crate::socket::SocketFamily::Tcp));
        let err = fabric.serve("z", 0, echo_handler()).unwrap_err();
        assert!(matches!(err, HvacError::InvalidConfig(_)), "{err}");
        assert!(fabric.endpoint_names().is_empty());
    }

    #[test]
    fn queue_closed_path_keeps_the_stats_ledger_consistent() {
        // A lone worker that dies on its first request leaves the endpoint
        // registered but its queue receiver-less: the next send fails on
        // the "queue closed" path, which must count as a failed call that
        // moved zero request bytes.
        let fabric = Arc::new(Fabric::with_timeout(Duration::from_secs(5)));
        let handler: Arc<dyn RpcHandler> = Arc::new(|_req: Bytes| -> Reply {
            panic!("injected worker death");
        });
        let _ep = fabric.serve("dead", 1, handler).unwrap();
        // Call 1: delivered (5 request bytes), then the worker panics and
        // the caller errors out on the dropped reply slot.
        assert!(fabric.call("dead", Bytes::from_static(b"first")).is_err());
        // Give the unwind a moment to drop the worker's queue receiver.
        std::thread::sleep(Duration::from_millis(100));
        // Call 2: the queue is closed — ServerDown, no bytes moved.
        let err = fabric
            .call("dead", Bytes::from_static(b"xxxxx"))
            .unwrap_err();
        assert!(matches!(err, HvacError::ServerDown(_)), "{err}");

        let (rpcs, req, _rep, _bulk, failed) = fabric.stats().snapshot();
        assert_eq!(
            rpcs + failed,
            2,
            "every call lands in exactly one ledger column"
        );
        assert_eq!((rpcs, failed), (0, 2));
        assert_eq!(
            req, 5,
            "only the delivered request's bytes are counted, not the rejected one's"
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let fabric = Arc::new(Fabric::new());
        let _a = fabric.serve("x", 1, echo_handler()).unwrap();
        assert!(fabric.serve("x", 1, echo_handler()).is_err());
    }

    #[test]
    fn set_down_blocks_calls_and_recovers() {
        let fabric = Arc::new(Fabric::new());
        let ep = fabric.serve("s", 1, echo_handler()).unwrap();
        assert!(fabric.is_up("s"));
        ep.set_down(true);
        assert!(!fabric.is_up("s"));
        assert!(matches!(
            fabric.call("s", Bytes::new()).unwrap_err(),
            HvacError::ServerDown(_)
        ));
        ep.set_down(false);
        assert!(fabric.call("s", Bytes::new()).is_ok());
    }

    #[test]
    fn drop_unregisters_endpoint() {
        let fabric = Arc::new(Fabric::new());
        {
            let _ep = fabric.serve("gone", 1, echo_handler()).unwrap();
            assert!(fabric.is_up("gone"));
        }
        assert!(!fabric.is_up("gone"));
        assert!(fabric.endpoint_names().is_empty());
    }

    #[test]
    fn concurrent_clients_all_get_their_own_replies() {
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("srv", 4, echo_handler()).unwrap();
        let mut joins = Vec::new();
        for i in 0..16u32 {
            let f = fabric.clone();
            joins.push(std::thread::spawn(move || {
                for j in 0..50u32 {
                    let msg = Bytes::from(format!("{i}:{j}"));
                    let reply = f.call("srv", msg.clone()).unwrap();
                    assert_eq!(reply.header, msg);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(fabric.stats().snapshot().0, 16 * 50);
    }

    #[test]
    fn panicking_handler_does_not_block_the_client() {
        let fabric = Arc::new(Fabric::with_timeout(Duration::from_secs(10)));
        let handler: Arc<dyn RpcHandler> = Arc::new(|req: Bytes| -> Reply {
            if req.is_empty() {
                panic!("injected handler panic");
            }
            Reply {
                header: req,
                bulk: None,
            }
        });
        let _ep = fabric.serve("flaky", 1, handler).unwrap();
        // The panic kills the lone worker mid-request; the reply slot is
        // dropped during unwind, so the caller errors out well before the
        // 10 s call timeout instead of blocking on a reply that never comes.
        let start = std::time::Instant::now();
        assert!(fabric.call("flaky", Bytes::new()).is_err());
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "client blocked on a dead server"
        );
        // With every worker dead the request queue is receiver-less, so
        // later calls fail too (as ServerDown or a fast error) — they must
        // not hang either. Give the unwind a moment to drop the worker's
        // receiver so the send-side disconnect is observable.
        std::thread::sleep(Duration::from_millis(100));
        let start = std::time::Instant::now();
        assert!(fabric.call("flaky", Bytes::from_static(b"x")).is_err());
        assert!(start.elapsed() < Duration::from_secs(8));
    }

    #[test]
    fn timed_out_call_is_typed_rpc_timeout() {
        let fabric = Arc::new(Fabric::new());
        let handler: Arc<dyn RpcHandler> = Arc::new(|req: Bytes| {
            std::thread::sleep(Duration::from_millis(200));
            Reply {
                header: req,
                bulk: None,
            }
        });
        let _ep = fabric.serve("slow", 1, handler).unwrap();
        let err = fabric
            .call_with_deadline("slow", Bytes::from_static(b"x"), Duration::from_millis(20))
            .unwrap_err();
        match err {
            HvacError::RpcTimeout { addr, elapsed } => {
                assert_eq!(addr, "slow");
                assert!(elapsed >= Duration::from_millis(20));
            }
            other => panic!("expected RpcTimeout, got {other}"),
        }
        assert!(err_is_retriable_sanity());
    }

    fn err_is_retriable_sanity() -> bool {
        HvacError::RpcTimeout {
            addr: String::new(),
            elapsed: Duration::ZERO,
        }
        .is_retriable()
    }

    #[test]
    fn hung_endpoint_times_out_within_deadline() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("wedged", 1, echo_handler()).unwrap();
        fabric
            .fault_injector()
            .set("wedged", FaultSpec::always_hang(3));
        let start = std::time::Instant::now();
        let err = fabric
            .call_with_deadline(
                "wedged",
                Bytes::from_static(b"hi"),
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert!(matches!(err, HvacError::RpcTimeout { .. }), "{err}");
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(30));
        assert!(
            waited < Duration::from_secs(5),
            "hang must cost one deadline, not the legacy 30 s: {waited:?}"
        );
        // The handler DID run (hang drops the reply, not the request).
        assert_eq!(fabric.stats().snapshot().1, 2, "request bytes delivered");
        // Clearing the plan restores service.
        fabric.fault_injector().clear("wedged");
        assert!(fabric.call("wedged", Bytes::from_static(b"ok")).is_ok());
    }

    #[test]
    fn dropped_request_never_reaches_the_server() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("hole", 1, echo_handler()).unwrap();
        fabric
            .fault_injector()
            .set("hole", FaultSpec::always_drop(5));
        let err = fabric
            .call_with_deadline(
                "hole",
                Bytes::from_static(b"gone"),
                Duration::from_millis(10),
            )
            .unwrap_err();
        assert!(matches!(err, HvacError::RpcTimeout { .. }));
        assert_eq!(fabric.stats().snapshot().1, 0, "no request bytes moved");
        assert_eq!(fabric.fault_injector().injected(), 1);
    }

    #[test]
    fn injected_error_reply_is_fast_and_typed() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("flk", 1, echo_handler()).unwrap();
        fabric.fault_injector().set(
            "flk",
            FaultSpec {
                error_prob: 1.0,
                seed: 9,
                ..FaultSpec::default()
            },
        );
        let start = std::time::Instant::now();
        let err = fabric.call("flk", Bytes::from_static(b"x")).unwrap_err();
        assert!(matches!(err, HvacError::Rpc(_)), "{err}");
        assert!(err.is_retriable());
        assert!(start.elapsed() < Duration::from_secs(1), "errors fail fast");
    }

    #[test]
    fn injected_delay_slows_but_still_answers() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("lag", 1, echo_handler()).unwrap();
        fabric.fault_injector().set(
            "lag",
            FaultSpec {
                delay_prob: 1.0,
                delay: Duration::from_millis(15),
                seed: 4,
                ..FaultSpec::default()
            },
        );
        let start = std::time::Instant::now();
        let reply = fabric
            .call_with_deadline("lag", Bytes::from_static(b"x"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&reply.header[..], b"x");
        assert!(start.elapsed() >= Duration::from_millis(15));
        // A delay at or beyond the deadline is a timeout instead.
        fabric.fault_injector().set(
            "lag",
            FaultSpec {
                delay_prob: 1.0,
                delay: Duration::from_millis(50),
                seed: 4,
                ..FaultSpec::default()
            },
        );
        let err = fabric
            .call_with_deadline("lag", Bytes::from_static(b"x"), Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, HvacError::RpcTimeout { .. }));
    }

    #[test]
    fn set_down_wins_over_fault_plans() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let ep = fabric.serve("d", 1, echo_handler()).unwrap();
        fabric.fault_injector().set("d", FaultSpec::always_hang(1));
        ep.set_down(true);
        let start = std::time::Instant::now();
        let err = fabric.call("d", Bytes::new()).unwrap_err();
        assert!(matches!(err, HvacError::ServerDown(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "down endpoints fail fast even when a hang plan is installed"
        );
    }

    #[test]
    fn injected_crash_latches_the_endpoint_down() {
        use crate::fault::FaultSpec;
        let fabric = Arc::new(Fabric::new());
        let _ep = fabric.serve("doomed", 1, echo_handler()).unwrap();
        fabric
            .fault_injector()
            .set("doomed", FaultSpec::always_crash(11));
        let start = std::time::Instant::now();
        let err = fabric.call("doomed", Bytes::from_static(b"x")).unwrap_err();
        assert!(matches!(err, HvacError::ServerDown(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "crashes fail fast"
        );
        // The crash persists: later calls fail on the liveness check without
        // consuming further fault draws.
        assert!(!fabric.is_up("doomed"));
        assert!(fabric.call("doomed", Bytes::new()).is_err());
        assert_eq!(fabric.fault_injector().injected_for("doomed"), 1);
        // An explicit revive (restart) restores service once the plan is gone.
        fabric.fault_injector().clear("doomed");
        assert!(fabric.set_down("doomed", false));
        assert!(fabric.call("doomed", Bytes::from_static(b"ok")).is_ok());
    }

    #[test]
    fn bulk_bytes_are_accounted() {
        let fabric = Arc::new(Fabric::new());
        let handler: Arc<dyn RpcHandler> = Arc::new(|_req: Bytes| Reply {
            header: Bytes::from_static(b"ok"),
            bulk: Some(Bytes::from(vec![0u8; 1024])),
        });
        let _ep = fabric.serve("bulk", 1, handler).unwrap();
        let reply = fabric.call("bulk", Bytes::new()).unwrap();
        assert_eq!(reply.bulk.unwrap().len(), 1024);
        assert_eq!(fabric.stats().snapshot().3, 1024);
    }
}
