//! Mercury-style RPC substrate for HVAC.
//!
//! The paper uses the Mercury communication library for RPC and bulk data
//! transfer over Summit's InfiniBand (§III-C). This crate reproduces the
//! programming model — registered request handlers, request/response RPCs,
//! and separate *bulk* payloads for file data — over two interchangeable
//! backends: an in-process loopback fabric (the faithful substitution for a
//! single-machine reproduction, see DESIGN.md §1) and a real socket
//! transport (TCP or Unix-domain) for multi-process deployments:
//!
//! * [`wire`] — a small, explicit binary codec over [`bytes`],
//! * [`fabric`] — the [`Fabric`] registry of endpoints, server endpoints with
//!   worker threads, fault injection (mark a server down), and traffic
//!   accounting, over either backend,
//! * [`framing`] — length-prefixed socket frames with a bounded-allocation
//!   decoder (truncated/oversized/garbage input → typed `Protocol` errors),
//! * [`socket`] — the socket transport: endpoint resolution (config/env),
//!   per-destination connection pooling with request-id multiplexing, and
//!   the server accept/worker core,
//! * [`client`] — the blocking [`RpcClient`] used by HVAC clients,
//! * [`fault`] — the seeded [`FaultInjector`] (per-endpoint drop / delay /
//!   hang / error-reply schedules) driving the hung-server tests,
//! * [`bulk`] — chunked bulk-transfer framing mirroring Mercury's separation
//!   of RPC metadata from payload,
//! * [`pipeline`] — bounded-window pipelining of chunk fetches, so large
//!   reads overlap their chunk RPCs the way Mercury overlaps RDMA gets.
//!
//! The loopback fabric moves real bytes between real threads; latency and
//! bandwidth of the modeled interconnect are accounted (for reporting)
//! rather than slept. The socket transport moves the same frames through
//! the kernel, and the whole deadline/retry/breaker/hedge ladder above the
//! fabric works unchanged on both.

pub mod bulk;
pub mod client;
pub mod fabric;
pub mod fault;
pub mod framing;
pub mod pipeline;
pub mod socket;
pub mod wire;

pub use bulk::{chunk_bulk, reassemble_bulk, BULK_CHUNK_SIZE};
pub use client::RpcClient;
pub use fabric::{Fabric, FabricStats, Reply, RpcHandler, ServerEndpoint};
pub use fault::{FaultAction, FaultInjector, FaultSpec};
pub use pipeline::{pipelined_fetch, DEFAULT_PIPELINE_WINDOW};
pub use socket::{
    endpoints_from_env, parse_endpoint_list, EndpointUri, SocketConfig, SocketFamily,
};
