//! Mercury-style RPC substrate for HVAC.
//!
//! The paper uses the Mercury communication library for RPC and bulk data
//! transfer over Summit's InfiniBand (§III-C). This crate reproduces the
//! programming model — registered request handlers, request/response RPCs,
//! and separate *bulk* payloads for file data — over two interchangeable
//! backends: an in-process loopback fabric (the faithful substitution for a
//! single-machine reproduction, see DESIGN.md §1) and a real socket
//! transport (TCP or Unix-domain) for multi-process deployments:
//!
//! * [`wire`] — a small, explicit binary codec over [`bytes`],
//! * [`fabric`] — the [`Fabric`] registry of endpoints, server endpoints with
//!   worker threads, fault injection (mark a server down), and traffic
//!   accounting, over either backend,
//! * [`framing`] — length-prefixed socket frames with a bounded-allocation
//!   decoder (truncated/oversized/garbage input → typed `Protocol` errors),
//! * [`socket`] — the socket transport: endpoint resolution (config/env),
//!   per-destination connection pooling with request-id multiplexing, and
//!   the server accept/worker core,
//! * [`client`] — the blocking [`RpcClient`] used by HVAC clients,
//! * [`fault`] — the seeded [`FaultInjector`] (per-endpoint drop / delay /
//!   hang / error-reply schedules) driving the hung-server tests,
//! * [`bulk`] — chunked bulk-transfer framing mirroring Mercury's separation
//!   of RPC metadata from payload,
//! * [`pipeline`] — bounded-window pipelining of chunk fetches, so large
//!   reads overlap their chunk RPCs the way Mercury overlaps RDMA gets,
//! * [`pool`] — the reference-counted slab [`BufferPool`] behind the
//!   zero-copy data plane (return-to-pool on last `Bytes` drop),
//! * [`plan`] — the adjacent-segment coalescer and per-destination batch
//!   planner plus the batch payload codec,
//! * [`sq`] — an io_uring-shaped [`SubmissionQueue`] for issuing batched
//!   small RPCs per destination.
//!
//! The loopback fabric moves real bytes between real threads; latency and
//! bandwidth of the modeled interconnect are accounted (for reporting)
//! rather than slept. The socket transport moves the same frames through
//! the kernel, and the whole deadline/retry/breaker/hedge ladder above the
//! fabric works unchanged on both.

pub mod bulk;
pub mod client;
pub mod fabric;
pub mod fault;
pub mod framing;
pub mod pipeline;
pub mod plan;
pub mod pool;
pub mod socket;
pub mod sq;
pub mod wire;

pub use bulk::{chunk_bulk, reassemble_bulk, reassemble_bulk_pooled, BULK_CHUNK_SIZE};
pub use client::RpcClient;
pub use fabric::{Fabric, FabricStats, Reply, RpcHandler, ServerEndpoint};
pub use fault::{FaultAction, FaultInjector, FaultSpec};
pub use pipeline::{pipelined_fetch, pipelined_fetch_pooled, DEFAULT_PIPELINE_WINDOW};
pub use plan::{coalesce_plan, decode_batch_items, encode_batch_items, BatchItem, PlanEntry};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use socket::{
    endpoints_from_env, parse_endpoint_list, EndpointUri, SocketConfig, SocketFamily,
};
pub use sq::{Completion, SqEntry, SqPool, SubmissionQueue};
