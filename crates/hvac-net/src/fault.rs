//! Deterministic fabric fault injection.
//!
//! A [`FaultInjector`] sits inside the [`crate::fabric::Fabric`] call path
//! and perturbs RPCs to selected endpoints: crash the endpoint (it latches
//! down and every later call fails fast), drop the request before the
//! server sees it, delay its delivery, hang the reply (the server handles
//! the request but the caller never hears back), or answer with an injected
//! error reply. All randomness is a per-endpoint splitmix64 stream seeded
//! from the [`FaultSpec`], so a test that issues calls in a fixed order
//! observes the exact same fault sequence on every run.
//!
//! This is the "hung server" counterpart to `Fabric::set_down`: a *down*
//! endpoint fails fast with `ServerDown`, while a *hung* one consumes the
//! caller's full per-call deadline — the scenario the client's
//! deadline/retry/breaker machinery exists for.

use hvac_sync::{classes, OrderedRwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-endpoint fault probabilities. Independent draws are made in the
/// order `crash → drop → hang → error → delay`, one per incoming call; the
/// first that fires wins (delay composes with nothing because it fires
/// last and alone). A draw whose probability is zero advances nothing, so
/// arming a new fault kind never perturbs an existing seeded schedule.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Probability the endpoint crash-stops on this call: the fabric
    /// latches it down (as if by `set_down`) and the caller — and every
    /// caller after it, until the endpoint is explicitly revived — fails
    /// fast with `ServerDown`.
    pub crash_prob: f64,
    /// Probability the request is dropped before reaching the server.
    pub drop_prob: f64,
    /// Probability the request is served but the reply never returns.
    pub hang_prob: f64,
    /// Probability the call is answered with an injected transport error.
    pub error_prob: f64,
    /// Probability `delay` is added before the request is delivered.
    pub delay_prob: f64,
    /// The added delivery delay when the delay draw fires.
    pub delay: Duration,
    /// Seed of this endpoint's deterministic fault stream.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            crash_prob: 0.0,
            drop_prob: 0.0,
            hang_prob: 0.0,
            error_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            seed: 0x4856_4143, // "HVAC"
        }
    }
}

impl FaultSpec {
    /// A spec that hangs every call (deterministic wedged server).
    pub fn always_hang(seed: u64) -> Self {
        Self {
            hang_prob: 1.0,
            seed,
            ..Self::default()
        }
    }

    /// A spec that drops every request (deterministic packet blackhole).
    pub fn always_drop(seed: u64) -> Self {
        Self {
            drop_prob: 1.0,
            seed,
            ..Self::default()
        }
    }

    /// A spec that crash-stops the endpoint on the first call it sees.
    pub fn always_crash(seed: u64) -> Self {
        Self {
            crash_prob: 1.0,
            seed,
            ..Self::default()
        }
    }
}

/// What the injector decided for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the call untouched.
    None,
    /// The endpoint crash-stops: the fabric latches it down and the caller
    /// gets `ServerDown` immediately.
    Crash,
    /// The request never reaches the server; the caller times out.
    Drop,
    /// The server handles the request but the reply is discarded; the
    /// caller times out.
    Hang,
    /// The caller receives an injected transport error immediately.
    Error,
    /// The request is delivered after the given extra delay.
    Delay(Duration),
}

struct EndpointFaults {
    spec: FaultSpec,
    rng: AtomicU64,
    fired: AtomicU64,
}

/// Registry of per-endpoint [`FaultSpec`]s plus fired-fault accounting.
pub struct FaultInjector {
    plans: OrderedRwLock<HashMap<String, EndpointFaults>>,
    injected: AtomicU64,
}

/// One step of splitmix64 — small, seedable, and plenty random for fault
/// schedules (the same generator the eviction benchmarks use).
fn splitmix64(state: &AtomicU64) -> u64 {
    let mut z = state
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a u64 draw to `[0, 1)`.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    /// An injector with no faults installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the fault plan of `addr`. The endpoint's random
    /// stream restarts from `spec.seed`.
    pub fn set(&self, addr: &str, spec: FaultSpec) {
        let mut plans = self.plans.write();
        let rng = AtomicU64::new(spec.seed);
        let fired = AtomicU64::new(0);
        plans.insert(addr.to_string(), EndpointFaults { spec, rng, fired });
    }

    /// Remove the fault plan of `addr` (calls pass untouched again).
    pub fn clear(&self, addr: &str) {
        self.plans.write().remove(addr);
    }

    /// Remove every fault plan.
    pub fn clear_all(&self) {
        self.plans.write().clear();
    }

    /// Total faults fired (crashes + drops + hangs + errors + delays).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults fired against one endpoint since its plan was installed
    /// (`set` resets the count along with the stream). Zero for endpoints
    /// with no plan.
    pub fn injected_for(&self, addr: &str) -> u64 {
        self.plans
            .read()
            .get(addr)
            .map_or(0, |ep| ep.fired.load(Ordering::Relaxed))
    }

    /// Decide the fate of one call to `addr`, advancing the endpoint's
    /// deterministic fault stream.
    pub fn decide(&self, addr: &str) -> FaultAction {
        let plans = self.plans.read();
        let Some(ep) = plans.get(addr) else {
            return FaultAction::None;
        };
        let action = {
            let s = &ep.spec;
            if s.crash_prob > 0.0 && unit(splitmix64(&ep.rng)) < s.crash_prob {
                FaultAction::Crash
            } else if s.drop_prob > 0.0 && unit(splitmix64(&ep.rng)) < s.drop_prob {
                FaultAction::Drop
            } else if s.hang_prob > 0.0 && unit(splitmix64(&ep.rng)) < s.hang_prob {
                FaultAction::Hang
            } else if s.error_prob > 0.0 && unit(splitmix64(&ep.rng)) < s.error_prob {
                FaultAction::Error
            } else if s.delay_prob > 0.0 && unit(splitmix64(&ep.rng)) < s.delay_prob {
                FaultAction::Delay(s.delay)
            } else {
                FaultAction::None
            }
        };
        if action != FaultAction::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
            ep.fired.fetch_add(1, Ordering::Relaxed);
        }
        action
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("endpoints", &self.plans.read().len())
            .field("injected", &self.injected())
            .finish()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self {
            plans: OrderedRwLock::new(classes::FABRIC_FAULTS, HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_means_no_faults() {
        let inj = FaultInjector::new();
        for _ in 0..100 {
            assert_eq!(inj.decide("anywhere"), FaultAction::None);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn always_hang_is_total_and_counted() {
        let inj = FaultInjector::new();
        inj.set("s", FaultSpec::always_hang(7));
        for _ in 0..50 {
            assert_eq!(inj.decide("s"), FaultAction::Hang);
        }
        assert_eq!(inj.injected(), 50);
        inj.clear("s");
        assert_eq!(inj.decide("s"), FaultAction::None);
    }

    #[test]
    fn same_seed_same_schedule() {
        let schedule = |seed: u64| -> Vec<FaultAction> {
            let inj = FaultInjector::new();
            inj.set(
                "s",
                FaultSpec {
                    error_prob: 0.5,
                    seed,
                    ..FaultSpec::default()
                },
            );
            (0..64).map(|_| inj.decide("s")).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(
            schedule(42),
            schedule(43),
            "different seeds should (overwhelmingly) differ"
        );
        let mix = schedule(42);
        assert!(mix.contains(&FaultAction::Error));
        assert!(mix.contains(&FaultAction::None));
    }

    #[test]
    fn delay_carries_the_configured_duration() {
        let inj = FaultInjector::new();
        inj.set(
            "s",
            FaultSpec {
                delay_prob: 1.0,
                delay: Duration::from_millis(3),
                seed: 1,
                ..FaultSpec::default()
            },
        );
        assert_eq!(
            inj.decide("s"),
            FaultAction::Delay(Duration::from_millis(3))
        );
    }

    #[test]
    fn endpoints_have_independent_streams() {
        let inj = FaultInjector::new();
        inj.set("a", FaultSpec::always_hang(1));
        inj.set("b", FaultSpec::always_drop(2));
        assert_eq!(inj.decide("a"), FaultAction::Hang);
        assert_eq!(inj.decide("b"), FaultAction::Drop);
        assert_eq!(inj.decide("c"), FaultAction::None);
    }

    /// Same seed + same call sequence ⇒ identical outcomes with every
    /// fault kind armed at once, and every kind actually appears in the
    /// schedule (so the determinism claim covers all five draws).
    #[test]
    fn same_seed_same_schedule_across_all_kinds() {
        let spec = |seed: u64| FaultSpec {
            crash_prob: 0.1,
            drop_prob: 0.15,
            hang_prob: 0.15,
            error_prob: 0.2,
            delay_prob: 0.3,
            delay: Duration::from_millis(2),
            seed,
        };
        let schedule = |seed: u64| -> Vec<FaultAction> {
            let inj = FaultInjector::new();
            inj.set("s", spec(seed));
            (0..256).map(|_| inj.decide("s")).collect()
        };
        let a = schedule(0xFEED);
        assert_eq!(a, schedule(0xFEED));
        assert_ne!(a, schedule(0xFEED + 1));
        for want in [
            FaultAction::Crash,
            FaultAction::Drop,
            FaultAction::Hang,
            FaultAction::Error,
            FaultAction::Delay(Duration::from_millis(2)),
            FaultAction::None,
        ] {
            assert!(a.contains(&want), "schedule never produced {want:?}");
        }
    }

    /// Crash is drawn first: when both crash and drop are certain, crash
    /// wins every call.
    #[test]
    fn crash_wins_the_draw_order() {
        let inj = FaultInjector::new();
        inj.set(
            "s",
            FaultSpec {
                crash_prob: 1.0,
                drop_prob: 1.0,
                ..FaultSpec::default()
            },
        );
        for _ in 0..16 {
            assert_eq!(inj.decide("s"), FaultAction::Crash);
        }
    }

    /// Per-address fired counts ledger: each endpoint counts exactly its
    /// own faults, the global counter is their sum, unplanned addresses
    /// read zero, and re-installing a plan resets the count.
    #[test]
    fn injected_counts_match_per_address() {
        let inj = FaultInjector::new();
        inj.set("a", FaultSpec::always_crash(1));
        inj.set("b", FaultSpec::always_drop(2));
        inj.set(
            "c",
            FaultSpec {
                error_prob: 0.5,
                seed: 3,
                ..FaultSpec::default()
            },
        );
        for _ in 0..20 {
            inj.decide("a");
            inj.decide("b");
        }
        let mut c_fired = 0;
        for _ in 0..40 {
            if inj.decide("c") != FaultAction::None {
                c_fired += 1;
            }
        }
        assert!(c_fired > 0 && c_fired < 40, "p=0.5 plan fired {c_fired}/40");
        assert_eq!(inj.injected_for("a"), 20);
        assert_eq!(inj.injected_for("b"), 20);
        assert_eq!(inj.injected_for("c"), c_fired);
        assert_eq!(inj.injected_for("nobody"), 0);
        assert_eq!(inj.injected(), 40 + c_fired);
        // Re-installing restarts both the stream and the ledger.
        inj.set("a", FaultSpec::always_crash(1));
        assert_eq!(inj.injected_for("a"), 0);
    }
}
