//! Pipelined bulk fetch.
//!
//! Mercury overlaps bulk transfers by posting several RDMA chunk gets at
//! once. The loopback analogue: a large read is split into
//! [`chunk_bulk`](crate::bulk::chunk_bulk)-sized pieces and a bounded
//! *window* of chunk RPCs is kept in flight concurrently, each carrying the
//! caller's full deadline/retry/fault-injection semantics. Chunks are
//! reassembled in offset order, so the caller sees exactly the bytes a
//! single monolithic RPC would have returned.
//!
//! This module deliberately owns no locks: workers claim chunk indices from
//! an atomic cursor and each buffers its own results, merged after join, so
//! the pipeline adds nothing to the `hvac-sync` lock hierarchy.

use bytes::Bytes;
use hvac_types::{HvacError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::bulk::{reassemble_bulk, reassemble_bulk_pooled};
use crate::pool::BufferPool;

/// Default number of chunk RPCs kept in flight per bulk read.
pub const DEFAULT_PIPELINE_WINDOW: usize = 4;

/// Fetch `len` bytes starting at `offset` as a pipeline of chunked
/// sub-fetches of at most `chunk_size` bytes, with at most `window`
/// in flight at once.
///
/// `fetch(chunk_offset, chunk_len)` performs one chunk RPC and is invoked
/// concurrently from up to `window` threads; it must carry whatever
/// deadline/retry semantics the caller wants per chunk. Short chunks are
/// allowed (end-of-file): reassembly simply concatenates whatever came
/// back, in offset order, matching single-RPC short-read semantics. On the
/// first chunk error the pipeline stops claiming new chunks and returns the
/// error of the lowest-offset failed chunk (deterministic regardless of
/// completion order).
///
/// Reads that fit in one chunk (including `len == 0`) degenerate to a
/// single inline `fetch` call with no threads spawned.
pub fn pipelined_fetch<F>(
    offset: u64,
    len: usize,
    chunk_size: usize,
    window: usize,
    fetch: F,
) -> Result<Bytes>
where
    F: Fn(u64, usize) -> Result<Bytes> + Sync,
{
    pipelined_fetch_pooled(offset, len, chunk_size, window, fetch, None)
}

/// [`pipelined_fetch`] with an optional [`BufferPool`]: the reassembled
/// read lands in a pooled slab instead of a fresh per-read heap buffer, so
/// back-to-back bulk reads recycle one slab per size class rather than
/// paying an allocator (and, above the mmap threshold, a kernel
/// page-zeroing) round trip each. Everything else — chunking, windowing,
/// abort-on-first-error, offset-order reassembly — is identical.
pub fn pipelined_fetch_pooled<F>(
    offset: u64,
    len: usize,
    chunk_size: usize,
    window: usize,
    fetch: F,
    pool: Option<&BufferPool>,
) -> Result<Bytes>
where
    F: Fn(u64, usize) -> Result<Bytes> + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let n_chunks = len.div_ceil(chunk_size);
    if n_chunks <= 1 {
        return fetch(offset, len);
    }
    let workers = window.max(1).min(n_chunks);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    let per_worker: Vec<Vec<(usize, Result<Bytes>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_chunks {
                            break;
                        }
                        // Widen before multiplying: `idx * chunk_size` in
                        // usize can overflow on 32-bit targets even though
                        // the byte range itself is valid, and `offset` lives
                        // near u64::MAX for probing reads. Checked math turns
                        // both into a typed error instead of a wrong offset.
                        let chunk_off = (idx as u64)
                            .checked_mul(chunk_size as u64)
                            .and_then(|delta| offset.checked_add(delta))
                            .ok_or_else(|| {
                                HvacError::InvalidConfig(format!(
                                    "chunk offset overflows u64: base {offset} + \
                                     {idx} * {chunk_size}"
                                ))
                            });
                        let chunk_len = chunk_size.min(len - idx * chunk_size);
                        let result = chunk_off.and_then(|off| fetch(off, chunk_len));
                        if result.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        out.push((idx, result));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut chunks: Vec<Option<Bytes>> = vec![None; n_chunks];
    let mut first_err: Option<(usize, HvacError)> = None;
    for (idx, result) in per_worker.into_iter().flatten() {
        match result {
            Ok(data) => chunks[idx] = Some(data),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                    first_err = Some((idx, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let parts: Vec<Bytes> = chunks.into_iter().map(Option::unwrap_or_default).collect();
    Ok(match pool {
        Some(pool) => reassemble_bulk_pooled(&parts, pool),
        None => reassemble_bulk(&parts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn mem_fetch(data: &Bytes) -> impl Fn(u64, usize) -> Result<Bytes> + Sync + '_ {
        move |off, len| {
            let off = (off as usize).min(data.len());
            let end = (off + len).min(data.len());
            Ok(data.slice(off..end))
        }
    }

    #[test]
    fn round_trips_across_windows_and_chunk_sizes() {
        let data = Bytes::from(
            (0..4096u32)
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        for chunk in [1usize, 13, 1000, 1 << 14, usize::MAX / 2] {
            for window in [1usize, 2, 4, 16] {
                let out = pipelined_fetch(0, data.len(), chunk, window, mem_fetch(&data)).unwrap();
                assert_eq!(out, data, "chunk={chunk} window={window}");
            }
        }
    }

    #[test]
    fn pooled_pipeline_matches_unpooled_and_quiesces() {
        let pool = BufferPool::new();
        let data = Bytes::from((0..100_000u32).map(|x| x as u8).collect::<Vec<u8>>());
        for _ in 0..3 {
            let out = pipelined_fetch_pooled(0, data.len(), 4096, 4, mem_fetch(&data), Some(&pool))
                .unwrap();
            assert_eq!(out, data);
        }
        assert_eq!(pool.stats().in_flight(), 0);
        assert!(pool.stats().pool_hits >= 2, "reads recycled the slab");
    }

    #[test]
    fn honours_offset_and_short_reads_at_eof() {
        let data = Bytes::from(vec![9u8; 1000]);
        // Request runs 500 bytes past EOF; chunks there come back empty.
        let out = pipelined_fetch(200, 1300, 128, 4, mem_fetch(&data)).unwrap();
        assert_eq!(out, data.slice(200..1000));
    }

    #[test]
    fn empty_read_is_a_single_inline_fetch() {
        let calls = AtomicU64::new(0);
        let out = pipelined_fetch(0, 0, 64, 4, |_, len| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Bytes::from(vec![0u8; len]))
        })
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn first_failed_chunk_error_wins_deterministically() {
        let data = Bytes::from(vec![1u8; 4096]);
        let base = mem_fetch(&data);
        let err = pipelined_fetch(0, data.len(), 256, 8, |off, len| {
            if off >= 1024 {
                Err(HvacError::Rpc(format!("chunk at {off} failed")))
            } else {
                base(off, len)
            }
        })
        .unwrap_err();
        match err {
            HvacError::Rpc(msg) => assert_eq!(msg, "chunk at 1024 failed"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chunk_offset_overflow_is_a_typed_error_not_a_wrap() {
        // Base offset within one chunk of u64::MAX: the second chunk's
        // offset overflows u64 and must surface as a typed error — wrapping
        // would silently fetch from offset ~0 and return wrong bytes.
        let err = pipelined_fetch(u64::MAX - 10, 1024, 64, 4, |_, len| {
            Ok(Bytes::from(vec![0u8; len]))
        })
        .unwrap_err();
        assert!(matches!(err, HvacError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn error_stops_the_pipeline_early() {
        let calls = AtomicU64::new(0);
        let result = pipelined_fetch(0, 1 << 20, 1024, 1, |off, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            if off == 0 {
                Err(HvacError::Rpc("boom".into()))
            } else {
                Ok(Bytes::new())
            }
        });
        assert!(result.is_err());
        // Window of 1: the single worker aborts after the first failure
        // instead of issuing all 1024 chunk fetches.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
